//! Exports the synthesized hash functions for every key format of the
//! evaluation as C++ and Rust source files — the paper's actual artifact.
//!
//! ```text
//! cargo run --release --example codegen_export [OUT_DIR]
//! ```
//!
//! Writes `<format>_<family>.{hpp,rs}` under `OUT_DIR` (default
//! `target/sepe-codegen`).

use sepe::core::codegen::{emit, Language};
use sepe::core::regex::Regex;
use sepe::core::synth::{synthesize, Family};
use sepe::keygen::KeyFormat;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("target/sepe-codegen"), PathBuf::from);
    std::fs::create_dir_all(&out_dir)?;

    let mut files = 0usize;
    for format in KeyFormat::EVALUATED {
        let pattern = Regex::compile(&format.regex())?;
        for family in Family::ALL {
            let plan = synthesize(&pattern, family);
            let base = format!(
                "{}_{}",
                format.name().to_lowercase(),
                family.name().to_lowercase()
            );

            let cpp_name = format!("{}{}Hash", format.name(), family.name());
            let cpp = emit(&plan, family, Language::Cpp, &cpp_name);
            std::fs::write(out_dir.join(format!("{base}.hpp")), cpp)?;

            let rust_name = format!(
                "{}_{}_hash",
                format.name().to_lowercase(),
                family.name().to_lowercase()
            );
            let rust = emit(&plan, family, Language::Rust, &rust_name);
            std::fs::write(out_dir.join(format!("{base}.rs")), rust)?;
            files += 2;
        }
    }
    println!(
        "wrote {files} generated source files to {}",
        out_dir.display()
    );

    // Show one of them, the SSN Pext hash of Figure 12.
    let sample = std::fs::read_to_string(out_dir.join("ssn_pext.hpp"))?;
    println!("\n--- ssn_pext.hpp ---\n{sample}");
    Ok(())
}
