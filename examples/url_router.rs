//! A URL route table: keys share a long constant prefix (the site), so
//! the **OffXor** specialization skips straight to the variable suffix —
//! the paper's URL1/URL2 workload (Section 4, "Keys"), where SEPE reports
//! its largest B-Time win (9.5%).
//!
//! ```text
//! cargo run --release --example url_router
//! ```

use sepe::baselines::StlHash;
use sepe::containers::UnorderedMap;
use sepe::core::hash::{ByteHash, SynthesizedHash};
use sepe::core::synth::{Family, Plan};
use sepe::keygen::{Distribution, KeyFormat, KeySampler};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Synthesize from the format's regular expression.
    let regex = KeyFormat::Url1.regex();
    let hash = SynthesizedHash::from_regex(&regex, Family::OffXor)?;

    // The plan shows the point of the specialization: the 23-byte constant
    // prefix is never loaded.
    if let Plan::FixedWords { ops, .. } = hash.plan() {
        let offsets: Vec<u32> = ops.iter().map(|o| o.offset).collect();
        println!("OffXor loads at byte offsets {offsets:?} (prefix skipped)");
        assert!(offsets.iter().all(|&o| o >= 23));
    }

    // Route handlers keyed by URL.
    let mut sampler = KeySampler::new(KeyFormat::Url1, Distribution::Uniform, 99);
    let urls = sampler.distinct_pool(20_000);
    let mut routes = UnorderedMap::with_hasher(hash.clone());
    for (i, url) in urls.iter().enumerate() {
        routes.insert(url.clone(), format!("handler-{i}"));
    }
    println!(
        "route table holds {} URLs in {} buckets",
        routes.len(),
        routes.bucket_count()
    );

    // Route 200k requests with the specialized hash and with STL.
    let requests: Vec<&str> = urls
        .iter()
        .cycle()
        .take(200_000)
        .map(String::as_str)
        .collect();
    let t0 = Instant::now();
    let mut hits = 0usize;
    for r in &requests {
        if routes.get(*r).is_some() {
            hits += 1;
        }
    }
    let specialized = t0.elapsed();

    let mut stl_routes = UnorderedMap::with_hasher(StlHash::new());
    for (i, url) in urls.iter().enumerate() {
        stl_routes.insert(url.clone(), format!("handler-{i}"));
    }
    let t1 = Instant::now();
    let mut stl_hits = 0usize;
    for r in &requests {
        if stl_routes.get(*r).is_some() {
            stl_hits += 1;
        }
    }
    let general = t1.elapsed();

    assert_eq!(hits, stl_hits);
    println!("200k lookups: specialized {specialized:?}, STL {general:?}");

    // Pure hashing comparison on one URL.
    let url = &urls[0];
    let n = 1_000_000;
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..n {
        acc ^= hash.hash_bytes(std::hint::black_box(url.as_bytes()));
    }
    std::hint::black_box(acc);
    let syn = t.elapsed();
    let stl = StlHash::new();
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..n {
        acc ^= stl.hash_bytes(std::hint::black_box(url.as_bytes()));
    }
    std::hint::black_box(acc);
    let gen = t.elapsed();
    println!(
        "hashing the same {}-byte URL {n} times: OffXor {syn:?}, STL {gen:?}",
        url.len()
    );
    Ok(())
}
