//! A network flow-accounting table keyed by textual IPv4 addresses, using
//! the multimap container (one entry per observed packet) and comparing
//! the synthesized families — including the low-mixing pitfall of RQ7.
//!
//! ```text
//! cargo run --release --example ipv4_flow_table
//! ```

use sepe::containers::{BucketPolicy, UnorderedMultiMap};
use sepe::core::hash::SynthesizedHash;
use sepe::core::synth::Family;
use sepe::core::{ByteHash, Isa};
use sepe::keygen::{Distribution, KeyFormat, KeySampler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let regex = KeyFormat::Ipv4.regex();

    // A multimap of (source address -> packet size): duplicates expected.
    let hash = SynthesizedHash::from_regex(&regex, Family::OffXor)?;
    let mut flows = UnorderedMultiMap::with_hasher(hash);
    let mut sampler = KeySampler::new(KeyFormat::Ipv4, Distribution::Normal, 5);
    let sources = sampler.pool(2_000);
    for (i, src) in sources.iter().cycle().take(60_000).enumerate() {
        flows.insert(src.clone(), 64 + (i % 1400) as u64);
    }
    println!("flow table holds {} packets", flows.len());
    let busiest = sources
        .iter()
        .map(|s| (flows.count(s), s))
        .max()
        .expect("sources are non-empty");
    println!("busiest source {} with {} packets", busiest.1, busiest.0);

    // Per-family collision behaviour on 10,000 distinct addresses.
    println!("\n--- per-family true collisions on 10,000 distinct IPv4 keys ---");
    let mut sampler = KeySampler::new(KeyFormat::Ipv4, Distribution::Uniform, 11);
    let keys = sampler.distinct_pool(10_000);
    for family in Family::ALL {
        let h = SynthesizedHash::from_regex(&regex, family)?;
        let mut hashes: Vec<u64> = keys.iter().map(|k| h.hash_bytes(k.as_bytes())).collect();
        hashes.sort_unstable();
        let dups = hashes.windows(2).filter(|w| w[0] == w[1]).count();
        println!("{:<8} {dups} collisions", family.name());
    }

    // RQ7 in miniature: a low-mixing container (buckets from the top hash
    // bits) punishes OffXor but not Pext-with-shifts or a general hash.
    println!("\n--- bucket collisions under a low-mixing container (top 16 bits) ---");
    for family in [Family::OffXor, Family::Pext, Family::Aes] {
        let h = SynthesizedHash::from_regex(&regex, family)?.with_isa(Isa::Native);
        let mut m: UnorderedMultiMap<String, (), _> = UnorderedMultiMap::with_hasher_and_policy(
            h,
            BucketPolicy::HighBits { discard_low: 48 },
        );
        for k in &keys {
            m.insert(k.clone(), ());
        }
        println!(
            "{:<8} {} bucket collisions",
            family.name(),
            m.bucket_collisions()
        );
    }
    println!(
        "(the paper's advice: do not pair SEPE functions with containers that discard hash bits)"
    );
    Ok(())
}
