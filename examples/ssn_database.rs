//! An employee directory keyed by US Social Security numbers — the
//! motivating format of the paper's Figure 4/12.
//!
//! Demonstrates that the synthesized **Pext** function is a *bijection* on
//! SSNs (36 variable bits fit one machine word), compares collision
//! behaviour across all ten hash functions of the evaluation, and prints
//! the generated C++ the paper's tool would emit.
//!
//! ```text
//! cargo run --release --example ssn_database
//! ```

use sepe::containers::UnorderedMap;
use sepe::core::codegen::{emit, Language};
use sepe::core::hash::SynthesizedHash;
use sepe::core::regex::Regex;
use sepe::core::synth::{synthesize, Family};
use sepe::core::{ByteHash, Isa};
use sepe::driver::HashId;
use sepe::keygen::{Distribution, KeyFormat, KeySampler};

#[derive(Debug, Clone)]
struct Employee {
    name: String,
    department: &'static str,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ssn_regex = KeyFormat::Ssn.regex();
    let pattern = Regex::compile(&ssn_regex)?;

    // The generated artifact: C++ source for the Pext hash (Figure 12).
    let plan = synthesize(&pattern, Family::Pext);
    println!("--- generated C++ (Figure 12 analog) ---");
    println!(
        "{}",
        emit(&plan, Family::Pext, Language::Cpp, "SsnPextHash")
    );

    // Build the directory.
    let hash = SynthesizedHash::new(plan, Family::Pext, Isa::Native);
    let mut directory = UnorderedMap::with_hasher(hash.clone());
    let departments = ["Compilers", "Runtime", "Kernels", "Docs"];
    let mut sampler = KeySampler::new(KeyFormat::Ssn, Distribution::Uniform, 2024);
    for i in 0..50_000usize {
        let ssn = sampler.next_key();
        let employee = Employee {
            name: format!("employee-{i}"),
            department: departments[i % departments.len()],
        };
        directory.insert(ssn, employee);
    }
    println!("directory holds {} employees", directory.len());

    // Pext is a bijection on SSNs: distinct keys, distinct hashes.
    let mut hashes: Vec<u64> = directory
        .iter()
        .map(|(ssn, _)| hash.hash_bytes(ssn.as_bytes()))
        .collect();
    hashes.sort_unstable();
    let dups = hashes.windows(2).filter(|w| w[0] == w[1]).count();
    println!("true hash collisions with Pext: {dups} (bijection on 36 variable bits)");
    assert_eq!(dups, 0);

    // Point lookups.
    let (some_ssn, expected) = directory
        .iter()
        .next()
        .map(|(k, v)| (k.clone(), v.name.clone()))
        .expect("directory is non-empty");
    let found = directory
        .get(&some_ssn)
        .expect("inserted key must be found");
    assert_eq!(found.name, expected);
    println!("lookup {some_ssn} -> {} ({})", found.name, found.department);

    // Collision comparison across every function of the paper's Table 1.
    println!("\n--- true collisions over 10,000 distinct SSNs ---");
    let mut sampler = KeySampler::new(KeyFormat::Ssn, Distribution::Normal, 7);
    let keys = sampler.distinct_pool(10_000);
    for id in HashId::ALL {
        let h = id.build(KeyFormat::Ssn, Isa::Native);
        let (b_coll, t_coll) = sepe::driver::measure::collisions_of(
            h.as_ref(),
            &keys,
            sepe::containers::BucketPolicy::Modulo,
        );
        println!("{:<8} bucket {:>6}  true {:>6}", id.name(), b_coll, t_coll);
    }
    Ok(())
}
