//! The tutorial scenario end to end, in code: a custom order-identifier
//! format (`ORD-yyyymmdd-hhhhhh`) goes from examples, through quality
//! checking and synthesis, into a measured comparison — everything
//! `docs/TUTORIAL.md` does on the command line.
//!
//! ```text
//! cargo run --release --example order_ids
//! ```

use sepe::baselines::StlHash;
use sepe::containers::UnorderedMap;
use sepe::core::hash::{ByteHash, SynthesizedHash};
use sepe::core::infer::{example_quality, infer_regex};
use sepe::core::regex::Regex;
use sepe::core::synth::Family;
use std::time::Instant;

fn order_id(i: u64) -> String {
    format!(
        "ORD-{:04}{:02}{:02}-{:06x}",
        2000 + i % 100,
        1 + (i / 7) % 12,
        1 + (i / 11) % 28,
        i * 0x9E37 % 0x100_0000
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Good examples: every digit and hex quad exercised.
    let examples: Vec<String> = vec![
        "ORD-20000101-000000".into(),
        "ORD-25551231-555555".into(),
        "ORD-29731118-aaaaaa".into(),
        "ORD-21640925-ffffff".into(),
    ];
    let refs: Vec<&[u8]> = examples.iter().map(|s| s.as_bytes()).collect();
    println!("inferred: {}", infer_regex(refs.iter().copied())?);

    let flagged = example_quality(refs.iter().copied())?
        .into_iter()
        .filter(|r| r.suspicious)
        .count();
    println!("quality report: {flagged} position(s) flagged");

    // 2. Synthesize from the intended format (more general than any finite
    //    example set).
    let regex = r"ORD-[0-9]{8}-[0-9a-f]{6}";
    let pattern = Regex::compile(regex)?;
    println!(
        "format: {} bytes, {} variable bits",
        pattern.max_len(),
        pattern.variable_bits()
    );
    let hash = SynthesizedHash::from_regex(regex, Family::OffXor)?;

    // 3. Measure on realistic keys.
    let keys: Vec<String> = (0..50_000).map(order_id).collect();
    let t = Instant::now();
    let mut acc = 0u64;
    for k in &keys {
        acc ^= hash.hash_bytes(k.as_bytes());
    }
    std::hint::black_box(acc);
    let specialized = t.elapsed();
    let stl = StlHash::new();
    let t = Instant::now();
    let mut acc = 0u64;
    for k in &keys {
        acc ^= stl.hash_bytes(k.as_bytes());
    }
    std::hint::black_box(acc);
    let general = t.elapsed();
    println!("hashing 50k order ids: OffXor {specialized:?} vs STL {general:?}");

    // 4. Deploy in a container.
    let mut index = UnorderedMap::with_hasher(hash);
    index.reserve(keys.len());
    for (i, k) in keys.iter().enumerate() {
        index.insert(k.clone(), i);
    }
    println!(
        "order index: {} entries, {} buckets, {} bucket collisions",
        index.len(),
        index.bucket_count(),
        index.bucket_collisions()
    );
    let probe = order_id(31_415);
    assert_eq!(index.get(probe.as_str()), Some(&31_415));
    println!("lookup {probe} -> found");
    Ok(())
}
