//! Mixed-length keys: IATA (3-letter) and ICAO (4-letter) airport codes —
//! the motivating case of the paper's Example 3.4 — handled two ways:
//!
//! 1. the paper's join (missing bytes become `⊤`, one variable-length
//!    plan), and
//! 2. this repo's length-dispatch extension (one fully unrolled plan per
//!    length, dispatched on `key.len()`).
//!
//! ```text
//! cargo run --release --example airport_codes
//! ```

use sepe::containers::UnorderedMap;
use sepe::core::hash::SynthesizedHash;
use sepe::core::infer::{infer_pattern, infer_regex};
use sepe::core::multi::LengthDispatchHash;
use sepe::core::synth::Family;

const IATA: [&str; 8] = ["JFK", "LAX", "GRU", "EGK", "DEN", "SEA", "BOS", "MIA"];
const ICAO: [&str; 8] = [
    "KJFK", "KLAX", "SBGR", "EGLL", "KDEN", "KSEA", "KBOS", "KMIA",
];

/// Keys as they appear in the application: a constant route prefix plus
/// the code. (Bare 3-byte codes would fall below SEPE's 8-byte minimum and
/// take the STL fallback — footnote 5 of the paper.)
fn route(code: &str) -> String {
    format!("/airport/{code}")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let routes: Vec<String> = IATA.iter().chain(ICAO.iter()).map(|c| route(c)).collect();
    let examples: Vec<&[u8]> = routes.iter().map(|s| s.as_bytes()).collect();

    // The paper's treatment: one joined pattern; byte 3 becomes ⊤ because
    // it is missing from every IATA key.
    let joined = infer_pattern(examples.iter().copied())?;
    println!("joined format: {}", infer_regex(examples.iter().copied())?);
    println!(
        "joined pattern spans {}..={} bytes; plan: {:?}",
        joined.min_len(),
        joined.max_len(),
        SynthesizedHash::from_pattern(&joined, Family::OffXor).plan()
    );

    // The extension: stratify by length, one fixed-length plan each.
    let dispatch = LengthDispatchHash::from_examples(examples.iter().copied(), Family::OffXor)?;
    for (len, hash) in dispatch.strata() {
        println!("stratum len {len}: {:?}", hash.plan());
    }

    // Use it as a route table over both code families at once.
    let mut airports = UnorderedMap::with_hasher(dispatch);
    for (i, r) in routes.iter().enumerate() {
        airports.insert(r.clone(), i);
    }
    println!("stored {} airports", airports.len());
    assert_eq!(airports.len(), IATA.len() + ICAO.len());
    assert!(airports.contains_key(route("EGLL").as_str()));
    assert!(airports.contains_key(route("JFK").as_str()));
    assert!(!airports.contains_key(route("XXXXX").as_str()));
    println!(
        "lookups across both strata work: JFK={:?}, EGLL={:?}",
        airports.get(route("JFK").as_str()),
        airports.get(route("EGLL").as_str())
    );
    Ok(())
}
