//! Quickstart: synthesize a specialized hash from example keys and use it
//! in a hash map — the workflow of Figure 5 of the paper.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sepe::baselines::StlHash;
use sepe::containers::UnorderedMap;
use sepe::core::hash::{ByteHash, SynthesizedHash};
use sepe::core::infer::infer_regex;
use sepe::core::synth::Family;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Infer the key format from examples (what `keybuilder` does).
    //    Good examples exercise every bit pair that can vary (the paper's
    //    Example 3.6): all-0s and all-5s cover every digit quad.
    let examples: [&[u8]; 2] = [b"000.000.000.000", b"555.555.555.555"];
    let regex = infer_regex(examples)?;
    println!("inferred key format: {regex}");

    // 2. Synthesize a specialized hash function (what `keysynth` does).
    let hash = SynthesizedHash::from_regex(&regex, Family::Pext)?;
    println!("synthesized plan: {:?}", hash.plan());

    // 3. Use it with a container, like the std::unordered_map of Fig 5d.
    let mut map = UnorderedMap::with_hasher(hash.clone());
    for i in 0..10_000u32 {
        let key = format!(
            "{:03}.{:03}.{:03}.{:03}",
            i % 256,
            (i / 7) % 256,
            (i / 3) % 256,
            i % 250
        );
        map.insert(key, i);
    }
    println!("inserted {} distinct IPv4 keys", map.len());
    println!(
        "bucket count {}, bucket collisions {}",
        map.bucket_count(),
        map.bucket_collisions()
    );

    // 4. Compare hashing speed against the general-purpose STL hash.
    let stl = StlHash::new();
    let keys: Vec<String> = (0..10_000u32)
        .map(|i| {
            format!(
                "{:03}.{:03}.{:03}.{:03}",
                i % 256,
                i % 199,
                i % 251,
                i % 250
            )
        })
        .collect();
    let t_syn = time(|| {
        let mut acc = 0u64;
        for k in &keys {
            acc ^= hash.hash_bytes(k.as_bytes());
        }
        acc
    });
    let t_stl = time(|| {
        let mut acc = 0u64;
        for k in &keys {
            acc ^= stl.hash_bytes(k.as_bytes());
        }
        acc
    });
    println!("hashing 10k keys: synthesized {t_syn:?}, STL {t_stl:?}");
    Ok(())
}

fn time<R>(f: impl FnOnce() -> R) -> std::time::Duration {
    let start = std::time::Instant::now();
    std::hint::black_box(f());
    start.elapsed()
}
