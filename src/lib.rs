//! # sepe
//!
//! Facade crate for **sepe-rs**, a Rust reproduction of *Automatic Synthesis
//! of Specialized Hash Functions* (CGO 2025). Re-exports every sub-crate:
//!
//! * [`core`] — pattern inference and hash synthesis;
//! * [`baselines`] — the general-purpose hash functions the paper compares
//!   against;
//! * [`containers`] — bucketed unordered containers with bucket
//!   introspection;
//! * [`keygen`] — the eight key formats and three distributions of the
//!   evaluation;
//! * [`stats`] — the statistics behind the paper's tables;
//! * [`driver`] — the experiment driver reproducing the evaluation grid;
//! * [`verify`] — the differential-correctness and chaos harness,
//!   including the scripted HashDoS attackers of
//!   [`verify::attacker`](sepe_verify::attacker).
//!
//! ## Quick start
//!
//! ```
//! use sepe::core::hash::{ByteHash, SynthesizedHash};
//! use sepe::core::synth::Family;
//!
//! let hash = SynthesizedHash::from_regex(r"\d{3}-\d{2}-\d{4}", Family::Pext)?;
//! assert_ne!(hash.hash_bytes(b"123-45-6789"), hash.hash_bytes(b"123-45-6780"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use sepe_baselines as baselines;
pub use sepe_containers as containers;
pub use sepe_core as core;
pub use sepe_driver as driver;
pub use sepe_keygen as keygen;
pub use sepe_stats as stats;
pub use sepe_verify as verify;
