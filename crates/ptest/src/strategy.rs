//! Value-generation strategies for the offline proptest subset.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest, a strategy here is just a seeded generator:
/// no value trees, no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing a predicate (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning many magnitudes (no NaN/inf: the real
        // crate generates them rarely and no test here relies on them).
        let mantissa = rng.next_f64() * 2.0 - 1.0;
        let exp = (rng.below(605) as i32 - 302) as f64;
        mantissa * 10f64.powf(exp)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}')
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-range strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64; // never called on full u64 ranges
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Character range strategy (`prop::char::range`).
#[must_use]
pub fn char_range(lo: char, hi: char) -> CharRange {
    CharRange {
        lo: lo as u32,
        hi: hi as u32,
    }
}

/// Inclusive character range.
#[derive(Debug, Clone, Copy)]
pub struct CharRange {
    lo: u32,
    hi: u32,
}

impl Strategy for CharRange {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        let span = u64::from(self.hi - self.lo + 1);
        char::from_u32(self.lo + rng.below(span) as u32).unwrap_or('\u{FFFD}')
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 S0, 1 S1);
    (0 S0, 1 S1, 2 S2);
    (0 S0, 1 S1, 2 S2, 3 S3);
}

/// Size bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// `Vec` strategy (`prop::collection::vec`).
#[must_use]
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Generates vectors with lengths drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo + 1) as u64;
        let n = self.size.lo + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Object-safe strategy, used by [`Union`] arms.
pub trait DynStrategy<T> {
    /// Produces one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Boxes a strategy for use in a [`Union`] (the `prop_oneof!` macro calls
/// this).
#[must_use]
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn DynStrategy<S::Value>> {
    Box::new(s)
}

/// Weighted choice between strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn DynStrategy<T>>)>,
}

impl<T> Union<T> {
    /// Builds a union from weighted arms.
    #[must_use]
    pub fn new(arms: Vec<(u32, Box<dyn DynStrategy<T>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.generate_dyn(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick within total")
    }
}

/// String literals act as simplified regex strategies: sequences of
/// literal characters or `[...]` classes, each optionally repeated by
/// `{n}`, `{n,m}`, `?` or `*`. This covers patterns like `"[ -~]{0,40}"`;
/// anything fancier should build an explicit strategy instead.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_simple_regex(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy literal {self:?}"));
        let mut out = String::new();
        for atom in &atoms {
            let span = (atom.max_reps - atom.min_reps + 1) as u64;
            let reps = atom.min_reps + rng.below(span) as usize;
            for _ in 0..reps {
                let c = atom.chars[rng.below(atom.chars.len() as u64) as usize];
                out.push(c);
            }
        }
        out
    }
}

struct RegexAtom {
    chars: Vec<char>,
    min_reps: usize,
    max_reps: usize,
}

fn parse_simple_regex(src: &str) -> Option<Vec<RegexAtom>> {
    let mut atoms = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..].iter().position(|&c| c == ']')? + i;
                let inner = &chars[i + 1..close];
                i = close + 1;
                expand_class(inner)?
            }
            '\\' => {
                let c = *chars.get(i + 1)?;
                i += 2;
                match c {
                    'd' => ('0'..='9').collect(),
                    _ => vec![c],
                }
            }
            c if !"(){}?*+|".contains(c) => {
                i += 1;
                vec![c]
            }
            _ => return None,
        };
        // Optional repetition suffix.
        let (min_reps, max_reps) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}')? + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
                None => {
                    let n = body.parse().ok()?;
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else {
            (1, 1)
        };
        atoms.push(RegexAtom {
            chars: set,
            min_reps,
            max_reps,
        });
    }
    Some(atoms)
}

fn expand_class(inner: &[char]) -> Option<Vec<char>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < inner.len() {
        if i + 2 < inner.len() && inner[i + 1] == '-' {
            let (lo, hi) = (inner[i] as u32, inner[i + 2] as u32);
            if lo > hi {
                return None;
            }
            out.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            out.push(inner[i]);
            i += 1;
        }
    }
    if out.is_empty() {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (5usize..=5).generate(&mut rng);
            assert_eq!(w, 5);
            let f = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let v = vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn regex_literal_strategy_generates_matching_strings() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let s = "[ -~]{0,40}".generate(&mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let u = crate::prop_oneof![1 => Just(0u8), 1 => Just(1u8)];
        let mut rng = TestRng::from_seed(4);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
