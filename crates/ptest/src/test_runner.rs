//! Deterministic case generation for the offline proptest subset.

/// Error type property bodies may return early with (`prop_assume!` uses
/// it); assertion macros panic instead, so this mostly stays `Ok`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Seeded-random cases evaluated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the case count.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 128 keeps the tier-1 suite
        // fast while still sweeping a meaningful sample.
        ProptestConfig { cases: 128 }
    }
}

/// SplitMix64: tiny, fast, full-period; deterministic per test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test's name so every run of the suite
    /// explores the same cases (reproducible failures).
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Seeds from an explicit value.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (zero when `n` is zero).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
