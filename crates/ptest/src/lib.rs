//! A self-contained, offline drop-in for the subset of the
//! [proptest](https://crates.io/crates/proptest) API this workspace uses.
//!
//! The real proptest cannot be resolved in the offline build environment,
//! so this crate provides the same surface — `proptest!`, strategies,
//! `prop_oneof!`, `prop_assert*!`, `prop_assume!` — backed by a
//! deterministic SplitMix64 generator. Every test runs a fixed number of
//! seeded-random cases; failures panic with the offending case visible in
//! the assertion message. Shrinking is intentionally not implemented.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::vec;
}

/// The `prop` namespace of the real crate (`prop::collection::vec`,
/// `prop::char::range`, …).
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
    pub mod char {
        pub use crate::strategy::char_range as range;
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, char_range, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(binding in strategy, …) { … }`
/// becomes a `#[test]` that evaluates its strategies for
/// `ProptestConfig::cases` deterministic seeds.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..cfg.cases {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $pat =
                                    $crate::strategy::Strategy::generate(&$strat, &mut rng);
                            )+
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(e) = outcome {
                        panic!("property {} failed at case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Weighted or unweighted union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $w:literal => $s:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( ($w as u32, $crate::strategy::boxed($s)) ),+
        ])
    };
    ( $( $s:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::boxed($s)) ),+
        ])
    };
}

/// Asserts a condition inside a property, with optional format arguments.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}
