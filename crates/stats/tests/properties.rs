//! Property tests for the statistics crate: structural invariants that
//! must hold for arbitrary inputs.

use proptest::collection::vec;
use proptest::prelude::*;
use sepe_stats::{
    chi_square_gof, geometric_mean, hash_histogram, hash_histogram_range, mann_whitney_u, mean,
    pearson_correlation, BoxplotSummary,
};

fn finite_positive() -> impl Strategy<Value = f64> {
    (1e-6f64..1e12).prop_filter("finite", |x| x.is_finite())
}

proptest! {
    #[test]
    fn boxplot_is_ordered(xs in vec(-1e9f64..1e9, 1..200)) {
        let s = BoxplotSummary::of(&xs).expect("non-empty");
        prop_assert!(s.min <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.iqr() >= -1e-9);
    }

    #[test]
    fn am_gm_inequality(xs in vec(finite_positive(), 1..100)) {
        let gm = geometric_mean(&xs).expect("positive inputs");
        let am = mean(&xs).expect("non-empty");
        prop_assert!(gm <= am * (1.0 + 1e-9), "gm {gm} > am {am}");
    }

    #[test]
    fn chi2_statistic_nonnegative_and_p_in_unit(counts in vec(0u64..10_000, 2..200)) {
        prop_assume!(counts.iter().sum::<u64>() > 0);
        let r = chi_square_gof(&counts);
        prop_assert!(r.statistic >= 0.0);
        prop_assert!((0.0..=1.0).contains(&r.p_value), "p {}", r.p_value);
        prop_assert_eq!(r.degrees_of_freedom, counts.len() - 1);
    }

    #[test]
    fn chi2_is_zero_iff_perfectly_uniform(count in 1u64..1000, bins in 2usize..50) {
        let r = chi_square_gof(&vec![count; bins]);
        prop_assert_eq!(r.statistic, 0.0);
        prop_assert!(r.p_value > 0.999);
    }

    #[test]
    fn mann_whitney_p_is_symmetric_and_bounded(
        a in vec(-1e6f64..1e6, 1..60),
        b in vec(-1e6f64..1e6, 1..60)
    ) {
        let r1 = mann_whitney_u(&a, &b);
        let r2 = mann_whitney_u(&b, &a);
        prop_assert!((0.0..=1.0).contains(&r1.p_value));
        prop_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
        // U1 + U2 = n1 * n2.
        prop_assert!((r1.u + r2.u - (a.len() * b.len()) as f64).abs() < 1e-6);
    }

    #[test]
    fn pearson_is_bounded_and_scale_invariant(
        pairs in vec((-1e6f64..1e6, -1e6f64..1e6), 3..100),
        scale in 0.001f64..1000.0
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson_correlation(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r {r}");
            let y_scaled: Vec<f64> = y.iter().map(|v| v * scale).collect();
            if let Some(r2) = pearson_correlation(&x, &y_scaled) {
                prop_assert!((r - r2).abs() < 1e-6, "scaling changed r: {r} vs {r2}");
            }
        }
    }

    #[test]
    fn histograms_conserve_mass(hashes in vec(any::<u64>(), 1..500), bins in 1usize..128) {
        let h = hash_histogram(&hashes, bins);
        prop_assert_eq!(h.iter().sum::<u64>(), hashes.len() as u64);
        let hr = hash_histogram_range(&hashes, bins);
        prop_assert_eq!(hr.iter().sum::<u64>(), hashes.len() as u64);
    }

    #[test]
    fn range_histogram_is_shift_invariant(
        hashes in vec(0u64..1_000_000, 2..200),
        shift in 0u64..1_000_000_000,
        bins in 2usize..64
    ) {
        let shifted: Vec<u64> = hashes.iter().map(|&h| h + shift).collect();
        prop_assert_eq!(
            hash_histogram_range(&hashes, bins),
            hash_histogram_range(&shifted, bins)
        );
    }
}
