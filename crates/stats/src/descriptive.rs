//! Descriptive statistics: means, geometric means and boxplot summaries.

/// Arithmetic mean. Returns `None` for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Geometric mean — the aggregation the paper uses for every table
/// ("Throughout this Section, we use geometric means"). Returns `None` for
/// an empty slice or any non-positive value.
///
/// # Examples
///
/// ```
/// use sepe_stats::geometric_mean;
///
/// assert_eq!(geometric_mean(&[2.0, 8.0]), Some(4.0));
/// assert_eq!(geometric_mean(&[]), None);
/// assert_eq!(geometric_mean(&[1.0, 0.0]), None);
/// ```
#[must_use]
pub fn geometric_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// Sample standard deviation (n − 1 denominator). `None` below two samples.
#[must_use]
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// The five-number summary plus the mean — the data behind each box of
/// Figures 13, 15 and 20 (green triangles are means; middle lines are
/// medians).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxplotSummary {
    /// Smallest observation.
    pub min: f64,
    /// First quartile (linear interpolation).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (linear interpolation).
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl BoxplotSummary {
    /// Summarizes a sample. Returns `None` for an empty slice.
    ///
    /// # Examples
    ///
    /// ```
    /// use sepe_stats::BoxplotSummary;
    ///
    /// let s = BoxplotSummary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
    /// assert_eq!(s.median, 3.0);
    /// assert_eq!(s.q1, 2.0);
    /// assert_eq!(s.q3, 4.0);
    /// ```
    #[must_use]
    pub fn of(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        Some(BoxplotSummary {
            min: sorted[0],
            q1: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q3: quantile(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
            mean: mean(xs).expect("non-empty"),
        })
    }

    /// The interquartile range.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Linear-interpolation quantile of an already sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty() && (0.0..=1.0).contains(&q));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_geomean_basics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
        let g = geometric_mean(&[1.0, 10.0, 100.0]).unwrap();
        assert!((g - 10.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[-1.0, 2.0]), None);
    }

    #[test]
    fn geomean_is_below_mean_for_spread_data() {
        let xs = [1.0, 100.0];
        assert!(geometric_mean(&xs).unwrap() < mean(&xs).unwrap());
    }

    #[test]
    fn std_dev_known_value() {
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s - 2.138_089_935).abs() < 1e-6);
        assert_eq!(std_dev(&[1.0]), None);
    }

    #[test]
    fn boxplot_of_even_sample() {
        let s = BoxplotSummary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.median, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.q1 - 1.75).abs() < 1e-12);
        assert!((s.q3 - 3.25).abs() < 1e-12);
        assert!((s.iqr() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn boxplot_is_order_independent() {
        let a = BoxplotSummary::of(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        let b = BoxplotSummary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn singleton_boxplot_collapses() {
        let s = BoxplotSummary::of(&[7.0]).unwrap();
        assert_eq!(
            (s.min, s.q1, s.median, s.q3, s.max, s.mean),
            (7.0, 7.0, 7.0, 7.0, 7.0, 7.0)
        );
    }
}
