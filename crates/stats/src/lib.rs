//! # sepe-stats
//!
//! The statistics behind the SEPE evaluation, implemented from scratch:
//!
//! * [`descriptive`] — means, geometric means (the paper aggregates every
//!   table with geometric means), and the five-number boxplot summaries of
//!   Figures 13/15/20;
//! * [`mann_whitney`] — the Mann–Whitney U test the paper uses to decide
//!   whether two hash functions differ significantly (RQ1, RQ4);
//! * [`chi2`] — the χ² goodness-of-fit test of the uniformity analysis
//!   (Table 2), with its own regularized incomplete gamma;
//! * [`pearson`] — the linear-correlation coefficient of the complexity
//!   analyses (RQ6, RQ8);
//! * [`histogram`] — fixed-bin histograms over the 64-bit hash range.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod avalanche;
pub mod chi2;
pub mod descriptive;
pub mod histogram;
pub mod mann_whitney;
pub mod pearson;
pub mod special;

pub use avalanche::{avalanche, AvalancheSummary};
pub use chi2::{chi_square_gof, Chi2Result};
pub use descriptive::{geometric_mean, mean, BoxplotSummary};
pub use histogram::{hash_histogram, hash_histogram_range};
pub use mann_whitney::{mann_whitney_u, MannWhitneyResult};
pub use pearson::pearson_correlation;
