//! Avalanche analysis.
//!
//! Section 2 of the paper lists the avalanche effect — "a slight input
//! change results in a significantly different output" — among the
//! properties *cryptographic* hashes have and SEPE's synthesized functions
//! deliberately trade away. This module quantifies that trade: for each
//! input bit, flip it and record which output bits change; a well-mixing
//! hash flips every output bit with probability ½.

/// Summary of an avalanche experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct AvalancheSummary {
    /// Mean, over (input bit, output bit) pairs, of |P(flip) − ½| · 2 —
    /// 0 for ideal mixing, 1 for a function that ignores or passes
    /// through its input.
    pub bias: f64,
    /// Fraction of output bits that *never* flip for any input-bit flip —
    /// dead output positions (the constant quads SEPE discards produce
    /// these in Naive/OffXor).
    pub dead_output_fraction: f64,
    /// Mean fraction of output bits flipped per single input-bit flip
    /// (½ for ideal mixing).
    pub mean_flip_rate: f64,
}

/// Runs an avalanche experiment: for every key and every input bit,
/// compare `hash(key)` against `hash(key with bit flipped)`.
///
/// `hash` is any function of byte strings; `keys` should be sampled from
/// the format of interest. Flipped keys generally fall *outside* the
/// format — which is exactly how avalanche is defined, and safe for every
/// hash in this repository.
///
/// # Panics
///
/// Panics if `keys` is empty or contains an empty key.
#[must_use]
pub fn avalanche<F: Fn(&[u8]) -> u64>(hash: F, keys: &[Vec<u8>]) -> AvalancheSummary {
    assert!(!keys.is_empty(), "need at least one key");
    let mut flip_counts = vec![0u64; 64]; // per output bit
    let mut pair_flips: Vec<Vec<u64>> = Vec::new(); // [input bit][output bit]
    let mut trials_per_input_bit: Vec<u64> = Vec::new();
    let mut total_flips = 0u64;
    let mut total_trials = 0u64;

    for key in keys {
        assert!(!key.is_empty(), "keys must be non-empty");
        let base = hash(key);
        let mut flipped = key.clone();
        for bit in 0..key.len() * 8 {
            if pair_flips.len() <= bit {
                pair_flips.resize_with(bit + 1, || vec![0u64; 64]);
                trials_per_input_bit.resize(bit + 1, 0);
            }
            flipped[bit / 8] ^= 1 << (bit % 8);
            let delta = base ^ hash(&flipped);
            flipped[bit / 8] ^= 1 << (bit % 8); // restore
            trials_per_input_bit[bit] += 1;
            total_trials += 1;
            for (out_bit, slot) in flip_counts.iter_mut().enumerate() {
                if (delta >> out_bit) & 1 == 1 {
                    *slot += 1;
                    pair_flips[bit][out_bit] += 1;
                }
            }
            total_flips += u64::from(delta.count_ones());
        }
    }

    let mut bias_sum = 0.0;
    let mut bias_pairs = 0usize;
    for (bit, outs) in pair_flips.iter().enumerate() {
        let trials = trials_per_input_bit[bit];
        if trials == 0 {
            continue;
        }
        for &c in outs {
            let p = c as f64 / trials as f64;
            bias_sum += (p - 0.5).abs() * 2.0;
            bias_pairs += 1;
        }
    }

    let dead = flip_counts.iter().filter(|&&c| c == 0).count();
    AvalancheSummary {
        bias: bias_sum / bias_pairs as f64,
        dead_output_fraction: dead as f64 / 64.0,
        mean_flip_rate: total_flips as f64 / (total_trials as f64 * 64.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_like_function_has_full_bias() {
        // hash = first 8 bytes: each input bit flips exactly one output
        // bit with probability 1 -> bias 1 for in-range bits.
        let f = |k: &[u8]| {
            let mut b = [0u8; 8];
            b[..k.len().min(8)].copy_from_slice(&k[..k.len().min(8)]);
            u64::from_le_bytes(b)
        };
        let keys = vec![vec![0x55u8; 8], vec![0xAAu8; 8]];
        let s = avalanche(f, &keys);
        assert!(s.bias > 0.95, "bias {}", s.bias);
        assert!(s.mean_flip_rate < 0.05, "flip rate {}", s.mean_flip_rate);
        assert_eq!(s.dead_output_fraction, 0.0);
    }

    #[test]
    fn constant_function_is_all_dead() {
        let s = avalanche(|_| 42, &[vec![1u8; 4], vec![2u8; 4]]);
        assert_eq!(s.dead_output_fraction, 1.0);
        assert_eq!(s.mean_flip_rate, 0.0);
        assert!(s.bias > 0.999);
    }

    #[test]
    fn good_mixer_has_low_bias() {
        // A multiply-xorshift mixer approximates ideal avalanche.
        let f = |k: &[u8]| {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in k {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h ^= h >> 33;
            h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
            h ^ (h >> 33)
        };
        // Enough keys that the binomial noise of the per-bit flip
        // probability (E|p̂ − ½| ≈ 0.4/√n) stays well under the threshold.
        let keys: Vec<Vec<u8>> = (0..200u8)
            .map(|i| vec![i, i ^ 0x5A, 3, i, 9, i, 1, i, i, 2, i])
            .collect();
        let s = avalanche(f, &keys);
        assert!(s.bias < 0.12, "bias {}", s.bias);
        assert!(
            (s.mean_flip_rate - 0.5).abs() < 0.05,
            "flip rate {}",
            s.mean_flip_rate
        );
        assert_eq!(s.dead_output_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "need at least one key")]
    fn empty_key_set_panics() {
        let _ = avalanche(|_| 0, &[]);
    }
}
