//! The χ² goodness-of-fit test of the uniformity analysis (RQ3, Table 2):
//! "Use the Chi-Square Goodness-of-Fit test to compare h to a perfect
//! distribution".

use crate::special::gamma_q;

/// Outcome of a χ² goodness-of-fit test against the uniform distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Result {
    /// The χ² statistic, `Σ (observed − expected)² / expected`.
    pub statistic: f64,
    /// Degrees of freedom (`bins − 1`).
    pub degrees_of_freedom: usize,
    /// Upper-tail p-value (`Q(df/2, χ²/2)`); values above 0.05 mean the
    /// sample is statistically indistinguishable from uniform.
    pub p_value: f64,
}

impl Chi2Result {
    /// Whether the sample passes a uniformity test at the given
    /// significance level (the paper uses `p > 0.05`).
    #[must_use]
    pub fn is_uniform_at(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// χ² goodness-of-fit of observed bin counts against equal expected counts.
///
/// # Panics
///
/// Panics if fewer than two bins are given or the total count is zero.
///
/// # Examples
///
/// ```
/// use sepe_stats::chi_square_gof;
///
/// let perfectly_uniform = vec![100u64; 10];
/// let r = chi_square_gof(&perfectly_uniform);
/// assert_eq!(r.statistic, 0.0);
/// assert!(r.is_uniform_at(0.05));
/// ```
#[must_use]
pub fn chi_square_gof(observed: &[u64]) -> Chi2Result {
    assert!(observed.len() >= 2, "need at least two bins");
    let n: u64 = observed.iter().sum();
    assert!(n > 0, "need at least one observation");
    let expected = n as f64 / observed.len() as f64;
    let statistic: f64 = observed
        .iter()
        .map(|&o| {
            let d = o as f64 - expected;
            d * d / expected
        })
        .sum();
    let df = observed.len() - 1;
    let p_value = gamma_q(df as f64 / 2.0, statistic / 2.0);
    Chi2Result {
        statistic,
        degrees_of_freedom: df,
        p_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_example() {
        // Classic die example: observed [5,8,9,8,10,20] over 60 rolls.
        let r = chi_square_gof(&[5, 8, 9, 8, 10, 20]);
        assert_eq!(r.degrees_of_freedom, 5);
        assert!((r.statistic - 13.4).abs() < 1e-9);
        // p ≈ 0.0199: not uniform at 5%.
        assert!((r.p_value - 0.0199).abs() < 5e-4, "p={}", r.p_value);
        assert!(!r.is_uniform_at(0.05));
        assert!(r.is_uniform_at(0.01));
    }

    #[test]
    fn uniform_sample_has_high_p() {
        let r = chi_square_gof(&[99, 101, 100, 98, 102, 100]);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn skewed_sample_has_tiny_p() {
        let mut bins = vec![0u64; 100];
        bins[0] = 10_000;
        let r = chi_square_gof(&bins);
        assert!(r.p_value < 1e-12);
        assert!(r.statistic > 100_000.0);
    }

    #[test]
    fn statistic_scales_with_deviation() {
        let a = chi_square_gof(&[90, 110]).statistic;
        let b = chi_square_gof(&[80, 120]).statistic;
        assert!(b > a);
    }
}
