//! The Mann–Whitney U test (rank-sum), the significance test of RQ1/RQ4:
//! e.g. "OffXor and Naive are statistically equivalent (p-value 0.51)".

use crate::special::normal_cdf;

/// Outcome of a two-sided Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitneyResult {
    /// The U statistic of the first sample.
    pub u: f64,
    /// The standardized statistic under the normal approximation (with tie
    /// correction and continuity correction).
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl MannWhitneyResult {
    /// Whether the two samples differ significantly at level `alpha`.
    #[must_use]
    pub fn is_significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sided Mann–Whitney U test with average ranks for ties and the
/// normal approximation (adequate for the paper's sample sizes of ten and
/// above).
///
/// # Panics
///
/// Panics if either sample is empty.
///
/// # Examples
///
/// ```
/// use sepe_stats::mann_whitney_u;
///
/// let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
/// let b = [101.0, 102.0, 103.0, 104.0, 105.0, 106.0, 107.0, 108.0];
/// let r = mann_whitney_u(&a, &b);
/// assert!(r.is_significant_at(0.05));
/// ```
#[must_use]
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> MannWhitneyResult {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be non-empty");
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;

    // Rank the pooled sample, averaging tied ranks.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&x| (x, 0usize))
        .chain(b.iter().map(|&x| (x, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("no NaN in samples"));

    let mut ranks = vec![0.0f64; pooled.len()];
    let mut tie_term = 0.0f64; // Σ (t³ − t) over tie groups
    let mut i = 0;
    while i < pooled.len() {
        let mut j = i + 1;
        while j < pooled.len() && pooled[j].0 == pooled[i].0 {
            j += 1;
        }
        let avg_rank = (i + 1 + j) as f64 / 2.0; // ranks are 1-based
        for r in ranks.iter_mut().take(j).skip(i) {
            *r = avg_rank;
        }
        let t = (j - i) as f64;
        tie_term += t * t * t - t;
        i = j;
    }

    let r1: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, g), _)| *g == 0)
        .map(|(_, &r)| r)
        .sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;

    let mu = n1 * n2 / 2.0;
    let n = n1 + n2;
    let sigma2 = n1 * n2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    let sigma = sigma2.max(0.0).sqrt();

    let (z, p_value) = if sigma == 0.0 {
        // All observations identical: no evidence of difference.
        (0.0, 1.0)
    } else {
        // Continuity correction toward the mean.
        let diff = u1 - mu;
        let corrected = diff - 0.5 * diff.signum();
        let z = corrected / sigma;
        (z, 2.0 * (1.0 - normal_cdf(z.abs())).clamp(0.0, 0.5))
    };

    MannWhitneyResult { u: u1, z, p_value }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_are_not_significant() {
        let a = [3.0, 3.0, 3.0, 3.0];
        let r = mann_whitney_u(&a, &a);
        assert_eq!(r.p_value, 1.0);
        assert!(!r.is_significant_at(0.05));
    }

    #[test]
    fn disjoint_samples_are_significant() {
        let a: Vec<f64> = (0..20).map(f64::from).collect();
        let b: Vec<f64> = (100..120).map(f64::from).collect();
        let r = mann_whitney_u(&a, &b);
        assert!(r.p_value < 1e-6);
        assert_eq!(r.u, 0.0);
    }

    #[test]
    fn symmetric_in_its_arguments() {
        let a = [1.0, 5.0, 9.0, 13.0, 2.0, 8.0];
        let b = [3.0, 4.0, 10.0, 11.0, 6.0, 7.0];
        let ra = mann_whitney_u(&a, &b);
        let rb = mann_whitney_u(&b, &a);
        assert!((ra.p_value - rb.p_value).abs() < 1e-12);
        // U1 + U2 = n1 * n2.
        assert!((ra.u + rb.u - 36.0).abs() < 1e-12);
    }

    #[test]
    fn overlapping_samples_have_moderate_p() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        let b = [1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5, 9.5, 10.5];
        let r = mann_whitney_u(&a, &b);
        assert!(r.p_value > 0.4, "p={}", r.p_value);
    }

    #[test]
    fn known_u_statistic() {
        // Classic example: a = {7,3}, b = {5,1,9}: ranks 1..5, U1 via rank
        // sum of a = rank(7)=4, rank(3)=2 => R1=6, U1 = 6 - 3 = 3.
        let r = mann_whitney_u(&[7.0, 3.0], &[5.0, 1.0, 9.0]);
        assert_eq!(r.u, 3.0);
    }

    #[test]
    fn heavy_ties_do_not_crash() {
        let a = [1.0, 1.0, 1.0, 2.0, 2.0];
        let b = [1.0, 2.0, 2.0, 2.0, 1.0];
        let r = mann_whitney_u(&a, &b);
        assert!((0.0..=1.0).contains(&r.p_value));
    }
}
