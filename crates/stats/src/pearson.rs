//! Pearson correlation, used to establish the linear asymptotics of
//! synthesis time (RQ6, "the smallest Pearson correlation … is 0.993") and
//! hashing time (RQ8, "0.9979").

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `None` when the samples differ in length, hold fewer than two
/// points, or either sample has zero variance.
///
/// # Examples
///
/// ```
/// use sepe_stats::pearson_correlation;
///
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [10.0, 20.0, 30.0, 40.0];
/// assert!((pearson_correlation(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn pearson_correlation(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0];
        assert!((pearson_correlation(&x, &[2.0, 4.0, 6.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson_correlation(&x, &[6.0, 4.0, 2.0]).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_symmetric_data() {
        let x = [-2.0, -1.0, 0.0, 1.0, 2.0];
        let y = [4.0, 1.0, 0.0, 1.0, 4.0]; // y = x², symmetric: r = 0
        assert!(pearson_correlation(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert_eq!(pearson_correlation(&[1.0], &[2.0]), None);
        assert_eq!(pearson_correlation(&[1.0, 2.0], &[3.0]), None);
        assert_eq!(pearson_correlation(&[1.0, 1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn linear_with_noise_is_near_one() {
        let x: Vec<f64> = (0..100).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + ((v * 7.0).sin())).collect();
        assert!(pearson_correlation(&x, &y).unwrap() > 0.999);
    }
}
