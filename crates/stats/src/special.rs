//! Special functions: log-gamma, regularized incomplete gamma, and the
//! complementary error function (Numerical Recipes-style implementations,
//! accurate to well below any threshold the tests use).

/// Natural log of the gamma function (Lanczos approximation).
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0);
    const COF: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_9e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Regularized lower incomplete gamma `P(a, x)`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = f64::MIN_POSITIVE / f64::EPSILON;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -f64::from(i) * (f64::from(i) - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Complementary error function (fractional error below 1.2e-7).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= f64::from(n - 1);
            }
            assert!((ln_gamma(f64::from(n)) - fact.ln()).abs() < 1e-10, "n={n}");
        }
        // Γ(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_q_are_complementary() {
        for a in [0.5, 1.0, 2.5, 10.0, 50.0] {
            for x in [0.1, 1.0, 5.0, 20.0, 80.0] {
                let p = gamma_p(a, x);
                let q = gamma_q(a, x);
                assert!((p + q - 1.0).abs() < 1e-12, "a={a} x={x}");
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^-x.
        for x in [0.5f64, 1.0, 2.0, 5.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
        // Chi-square with k=2: P(chi2 <= 2) = 1 - e^-1 ≈ 0.6321.
        assert!((gamma_p(1.0, 1.0) - 0.632_120_558_828_557_7).abs() < 1e-12);
    }

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 2e-7);
        assert!((erfc(1.0) - 0.157_299_207).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_79).abs() < 1e-6);
        assert!(erfc(5.0) < 1e-10);
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 2e-7);
        for z in [0.5, 1.0, 1.96, 3.0] {
            assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 5e-7);
        }
        assert!((normal_cdf(1.96) - 0.975).abs() < 2e-4);
    }
}
