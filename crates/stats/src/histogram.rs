//! Fixed-bin histograms over the 64-bit hash range (RQ3 step 3: "build a
//! histogram h with the values stored in v").

/// Bins 64-bit hash values into `bins` equal-width buckets spanning the
/// whole `u64` range.
///
/// # Panics
///
/// Panics if `bins` is zero.
///
/// # Examples
///
/// ```
/// use sepe_stats::hash_histogram;
///
/// let h = hash_histogram(&[0, 1, u64::MAX], 2);
/// assert_eq!(h, vec![2, 1]);
/// ```
#[must_use]
pub fn hash_histogram(hashes: &[u64], bins: usize) -> Vec<u64> {
    assert!(bins > 0, "bins must be positive");
    let mut counts = vec![0u64; bins];
    // Bin width as u128 so the last bin closes exactly at 2^64.
    let width = (1u128 << 64).div_ceil(bins as u128);
    for &h in hashes {
        let bin = (u128::from(h) / width) as usize;
        counts[bin.min(bins - 1)] += 1;
    }
    counts
}

/// Bins hash values into `bins` equal-width buckets spanning the *observed*
/// range `[min, max]` — the RQ3 methodology ("save all the hashes in a
/// sorted vector v; build a histogram h with the values stored in v").
///
/// Range-relative binning is what lets the paper's Pext score *well* on
/// incremental keys: consecutive integers are perfectly uniform over their
/// own span even though they sit in a sliver of the 64-bit range.
///
/// # Panics
///
/// Panics if `bins` is zero or `hashes` is empty.
#[must_use]
pub fn hash_histogram_range(hashes: &[u64], bins: usize) -> Vec<u64> {
    assert!(bins > 0, "bins must be positive");
    assert!(!hashes.is_empty(), "need at least one hash");
    let min = *hashes.iter().min().expect("non-empty");
    let max = *hashes.iter().max().expect("non-empty");
    let span = u128::from(max - min) + 1;
    let width = span.div_ceil(bins as u128);
    let mut counts = vec![0u64; bins];
    for &h in hashes {
        let bin = (u128::from(h - min) / width) as usize;
        counts[bin.min(bins - 1)] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_input_len() {
        let hashes: Vec<u64> = (0..1000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        for bins in [1usize, 2, 7, 64, 1024] {
            let h = hash_histogram(&hashes, bins);
            assert_eq!(h.len(), bins);
            assert_eq!(h.iter().sum::<u64>(), 1000);
        }
    }

    #[test]
    fn extremes_land_in_first_and_last_bins() {
        let h = hash_histogram(&[0, u64::MAX], 16);
        assert_eq!(h[0], 1);
        assert_eq!(h[15], 1);
    }

    #[test]
    fn uniform_multiplier_spreads_evenly() {
        let hashes: Vec<u64> = (0..64_000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let h = hash_histogram(&hashes, 64);
        let expected = 1000.0;
        for (i, &c) in h.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "bin {i} count {c}");
        }
    }

    #[test]
    fn clustered_values_land_in_one_bin() {
        let hashes: Vec<u64> = (0..100).collect();
        let h = hash_histogram(&hashes, 4);
        assert_eq!(h, vec![100, 0, 0, 0]);
    }

    #[test]
    fn range_histogram_sees_consecutive_values_as_uniform() {
        // The paper's incremental-Pext effect: consecutive integers are
        // uniform over their own range.
        let hashes: Vec<u64> = (1000..2000).collect();
        let h = hash_histogram_range(&hashes, 10);
        assert_eq!(h, vec![100; 10]);
    }

    #[test]
    fn range_histogram_counts_sum() {
        let hashes: Vec<u64> = (0..997u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        for bins in [1usize, 3, 64] {
            let h = hash_histogram_range(&hashes, bins);
            assert_eq!(h.iter().sum::<u64>(), 997);
        }
    }

    #[test]
    fn range_histogram_handles_identical_values() {
        let h = hash_histogram_range(&[42, 42, 42], 4);
        assert_eq!(h.iter().sum::<u64>(), 3);
        assert_eq!(h[0], 3);
    }

    #[test]
    fn range_histogram_exposes_gappy_values() {
        // Values with forced zero nibbles are non-uniform over their range.
        let hashes: Vec<u64> = (0..4096u64).map(|i| (i & 0xF) | ((i >> 4) << 8)).collect();
        // Bins finer than the cluster spacing reveal the forced-zero gaps.
        let h = hash_histogram_range(&hashes, 4096);
        let max = h.iter().max().copied().unwrap_or(0);
        let min = h.iter().min().copied().unwrap_or(0);
        assert!(max > min, "gaps must skew the histogram: {h:?}");
    }
}
