//! Seeded random key-format generation.
//!
//! Hand-picked formats (SSN, IPv4, ...) only exercise the plan shapes
//! someone thought of. [`RandomFormat`] builds arbitrary formats out of
//! literal runs and character-class runs — optionally with an optional
//! suffix, yielding variable-length patterns — and can sample keys that
//! match them, all deterministically from a seed.

use sepe_core::pattern::{BytePattern, KeyPattern};
use sepe_keygen::SplitMix64;

/// One run of a random format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// Exact constant bytes.
    Literal(Vec<u8>),
    /// `len` positions, each drawn uniformly from `alphabet`.
    Class {
        /// The bytes a position may take.
        alphabet: Vec<u8>,
        /// How many positions the run spans.
        len: usize,
    },
}

impl Segment {
    fn len(&self) -> usize {
        match self {
            Segment::Literal(bytes) => bytes.len(),
            Segment::Class { len, .. } => *len,
        }
    }

    fn push_pattern(&self, out: &mut Vec<BytePattern>) {
        match self {
            Segment::Literal(bytes) => {
                out.extend(bytes.iter().map(|&b| BytePattern::literal(b)));
            }
            Segment::Class { alphabet, len } => {
                let joined = BytePattern::from_bytes(alphabet.iter().copied())
                    .expect("class alphabets are non-empty");
                out.extend(std::iter::repeat_n(joined, *len));
            }
        }
    }

    fn sample_into(&self, rng: &mut SplitMix64, out: &mut Vec<u8>) {
        match self {
            Segment::Literal(bytes) => out.extend_from_slice(bytes),
            Segment::Class { alphabet, len } => {
                for _ in 0..*len {
                    let i = rng.below_u128(alphabet.len() as u128) as usize;
                    out.push(alphabet[i]);
                }
            }
        }
    }
}

/// A randomly generated key format: a mandatory run of segments plus an
/// optional suffix (making the format variable-length when present).
#[derive(Debug, Clone)]
pub struct RandomFormat {
    mandatory: Vec<Segment>,
    suffix: Vec<Segment>,
}

const ALPHABETS: &[&[u8]] = &[
    b"0123456789",
    b"0123456789abcdef",
    b"abcdefghijklmnopqrstuvwxyz",
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZ",
    b"ACGT",
    b"01",
    b"0123456789ABCDEF",
];

const LITERAL_BYTES: &[u8] = b"-.:/_=#@ ";

impl RandomFormat {
    /// Generates a random format. Mandatory part: 1–6 segments; total
    /// mandatory length is padded to at least eight bytes so synthesis does
    /// not fall back to the STL hash. With probability ~1/3 the format gets
    /// a 1–2 segment optional suffix (variable length).
    #[must_use]
    pub fn generate(rng: &mut SplitMix64) -> RandomFormat {
        let n_segments = 1 + (rng.next_u64() % 6) as usize;
        let mut mandatory: Vec<Segment> = (0..n_segments).map(|_| random_segment(rng)).collect();
        let mandatory_len: usize = mandatory.iter().map(Segment::len).sum();
        if mandatory_len < 8 {
            mandatory.push(Segment::Class {
                alphabet: b"0123456789".to_vec(),
                len: 8 - mandatory_len,
            });
        }
        let suffix = if rng.next_u64().is_multiple_of(3) {
            let n = 1 + (rng.next_u64() % 2) as usize;
            (0..n).map(|_| random_segment(rng)).collect()
        } else {
            Vec::new()
        };
        RandomFormat { mandatory, suffix }
    }

    /// Whether every key of this format has the same length.
    #[must_use]
    pub fn is_fixed_len(&self) -> bool {
        self.suffix.is_empty()
    }

    /// The length of the mandatory part.
    #[must_use]
    pub fn min_len(&self) -> usize {
        self.mandatory.iter().map(Segment::len).sum()
    }

    /// The [`KeyPattern`] every sampled key matches.
    #[must_use]
    pub fn pattern(&self) -> KeyPattern {
        let mut bytes = Vec::new();
        for seg in self.mandatory.iter().chain(&self.suffix) {
            seg.push_pattern(&mut bytes);
        }
        if self.is_fixed_len() {
            KeyPattern::fixed(bytes)
        } else {
            KeyPattern::with_min_len(bytes, self.min_len())
        }
    }

    /// Samples one key matching the format. Variable-length formats include
    /// the suffix in half of the samples.
    #[must_use]
    pub fn sample_key(&self, rng: &mut SplitMix64) -> Vec<u8> {
        let mut key = Vec::new();
        for seg in &self.mandatory {
            seg.sample_into(rng, &mut key);
        }
        if !self.suffix.is_empty() && rng.next_u64().is_multiple_of(2) {
            for seg in &self.suffix {
                seg.sample_into(rng, &mut key);
            }
        }
        key
    }

    /// Samples `n` keys matching the format.
    #[must_use]
    pub fn sample_keys(&self, rng: &mut SplitMix64, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| self.sample_key(rng)).collect()
    }
}

fn random_segment(rng: &mut SplitMix64) -> Segment {
    if rng.next_u64().is_multiple_of(4) {
        let n = 1 + (rng.next_u64() % 4) as usize;
        let bytes = (0..n)
            .map(|_| LITERAL_BYTES[(rng.next_u64() % LITERAL_BYTES.len() as u64) as usize])
            .collect();
        Segment::Literal(bytes)
    } else {
        let alphabet = ALPHABETS[(rng.next_u64() % ALPHABETS.len() as u64) as usize].to_vec();
        let len = 1 + (rng.next_u64() % 8) as usize;
        Segment::Class { alphabet, len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_keys_match_the_pattern() {
        let mut rng = SplitMix64::new(0xF0F0);
        for _ in 0..200 {
            let format = RandomFormat::generate(&mut rng);
            let pattern = format.pattern();
            assert!(pattern.max_len() >= 8);
            for key in format.sample_keys(&mut rng, 20) {
                assert!(pattern.matches(&key), "{format:?} key {key:?}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = RandomFormat::generate(&mut SplitMix64::new(7)).pattern();
        let b = RandomFormat::generate(&mut SplitMix64::new(7)).pattern();
        assert_eq!(a, b);
    }
}
