//! Container model checking: `UnorderedMap` vs. `std::collections::HashMap`.
//!
//! A seeded random operation sequence — inserts, lookups, erases, clears,
//! explicit rehashes and reservations — is replayed simultaneously against
//! the repository's [`UnorderedMap`] and against `std::collections::HashMap`
//! as the model. After every operation the return values must agree and the
//! sizes must match; at checkpoints the full contents are compared. Keys are
//! drawn from a small pool so the sequence revisits, overwrites and
//! re-inserts the same keys many times.

use sepe_containers::UnorderedMap;
use sepe_core::hash::ByteHash;
use sepe_keygen::{Distribution, KeyFormat, KeySampler, SplitMix64};
use std::collections::HashMap;

/// Statistics of one model-checking run (all operations agreed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelStats {
    /// Insert operations replayed.
    pub inserts: usize,
    /// Lookup operations replayed.
    pub lookups: usize,
    /// Erase operations replayed.
    pub erases: usize,
    /// Rehash / reserve / clear operations replayed.
    pub structural: usize,
    /// Full-content checkpoints passed.
    pub checkpoints: usize,
}

/// Replays `n_ops` random operations against both containers.
///
/// # Errors
///
/// Returns a description of the first divergence between the map under
/// test and the `HashMap` model, including the operation index.
pub fn check_container<H: ByteHash>(
    hasher: H,
    format: KeyFormat,
    n_ops: usize,
    seed: u64,
) -> Result<ModelStats, String> {
    let pool = KeySampler::new(format, Distribution::Uniform, seed ^ 0x5EED).distinct_pool(64);
    let mut rng = SplitMix64::new(seed);
    let mut sut: UnorderedMap<String, u64, H> = UnorderedMap::with_hasher(hasher);
    let mut model: HashMap<String, u64> = HashMap::new();
    let mut stats = ModelStats::default();
    let mut next_value = 0u64;

    for step in 0..n_ops {
        let key = &pool[(rng.next_u64() % pool.len() as u64) as usize];
        match rng.next_u64() % 100 {
            0..=39 => {
                next_value += 1;
                let a = sut.insert(key.clone(), next_value);
                let b = model.insert(key.clone(), next_value);
                if a != b {
                    return Err(format!(
                        "step {step}: insert({key:?}) -> {a:?}, model {b:?}"
                    ));
                }
                stats.inserts += 1;
            }
            40..=64 => {
                let a = sut.get(key.as_str()).copied();
                let b = model.get(key).copied();
                if a != b {
                    return Err(format!("step {step}: get({key:?}) -> {a:?}, model {b:?}"));
                }
                stats.lookups += 1;
            }
            65..=74 => {
                let a = sut.contains_key(key.as_str());
                let b = model.contains_key(key);
                if a != b {
                    return Err(format!("step {step}: contains({key:?}) -> {a}, model {b}"));
                }
                stats.lookups += 1;
            }
            75..=89 => {
                let a = sut.remove(key.as_str());
                let b = model.remove(key);
                if a != b {
                    return Err(format!(
                        "step {step}: remove({key:?}) -> {a:?}, model {b:?}"
                    ));
                }
                stats.erases += 1;
            }
            90..=93 => {
                let buckets = 1 + (rng.next_u64() % 512) as usize;
                sut.rehash(buckets);
                stats.structural += 1;
            }
            94..=96 => {
                sut.reserve((rng.next_u64() % 256) as usize);
                stats.structural += 1;
            }
            97 => {
                sut.clear();
                model.clear();
                stats.structural += 1;
            }
            _ => {
                check_contents(step, &sut, &model)?;
                stats.checkpoints += 1;
            }
        }
        if sut.len() != model.len() {
            return Err(format!(
                "step {step}: len {} != model {}",
                sut.len(),
                model.len()
            ));
        }
    }
    check_contents(n_ops, &sut, &model)?;
    stats.checkpoints += 1;
    Ok(stats)
}

fn check_contents<H: ByteHash>(
    step: usize,
    sut: &UnorderedMap<String, u64, H>,
    model: &HashMap<String, u64>,
) -> Result<(), String> {
    let mut seen = 0usize;
    for (k, v) in sut.iter() {
        match model.get(k) {
            Some(mv) if mv == v => seen += 1,
            Some(mv) => {
                return Err(format!("step {step}: {k:?} holds {v}, model holds {mv}"));
            }
            None => return Err(format!("step {step}: {k:?} present but absent from model")),
        }
    }
    if seen != model.len() {
        return Err(format!(
            "step {step}: iterated {seen} pairs, model holds {}",
            model.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_core::hash::SynthesizedHash;
    use sepe_core::regex::Regex;
    use sepe_core::synth::Family;
    use sepe_core::Isa;

    #[test]
    fn synthesized_hashers_pass_the_model() {
        let pattern = Regex::compile(&KeyFormat::Ssn.regex()).expect("compiles");
        for family in Family::ALL {
            let hasher = SynthesizedHash::from_pattern(&pattern, family).with_isa(Isa::Portable);
            let stats = check_container(hasher, KeyFormat::Ssn, 2_000, 0xA11C_E5ED)
                .unwrap_or_else(|e| panic!("{family}: {e}"));
            assert!(stats.inserts > 0 && stats.erases > 0 && stats.checkpoints > 0);
        }
    }

    #[test]
    fn a_degenerate_hash_still_behaves_correctly() {
        // Correctness must not depend on hash quality: a constant hash
        // degrades every operation to a linear scan but changes no answers.
        struct Constant;
        impl ByteHash for Constant {
            fn hash_bytes(&self, _key: &[u8]) -> u64 {
                42
            }
        }
        check_container(Constant, KeyFormat::FourDigits, 1_500, 7).expect("model holds");
    }
}
