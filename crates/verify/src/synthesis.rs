//! Search-equivalence checks for the parallel synthesis search.
//!
//! The tentpole claim of the parallel search is *determinism*: because the
//! winning candidate is selected under the `(cost, index)` total order,
//! the plan is a pure function of the pattern and family — never of the
//! thread count or the schedule. This module checks that claim the blunt
//! way: run the sequential search, run the parallel search at several
//! thread counts, and require byte-identical serialized plans plus
//! identical deterministic search statistics. It also checks that a
//! search cancelled mid-flight leaves no poisoned state (the next search
//! over the same pattern still wins with the exact sequential plan), and
//! that a [`PlanCache`] hit is indistinguishable from a fresh search.

use sepe_core::cache::PlanCache;
use sepe_core::pattern::KeyPattern;
use sepe_core::plan_io::plan_to_string;
use sepe_core::supervisor::CancelToken;
use sepe_core::synth::{
    synthesize, synthesize_parallel_with_cancel, synthesize_parallel_with_stats,
    synthesize_with_stats, Family,
};
use sepe_core::SynthError;

/// Thread counts the equivalence sweep runs at when the caller does not
/// pin one with `--jobs`.
pub const DEFAULT_JOBS: &[usize] = &[1, 2, 4, 8];

/// Runs the sequential search once and the parallel search at every
/// thread count in `jobs_list`, for every family, over one pattern.
/// Returns the number of (family × jobs) plan comparisons performed.
///
/// # Errors
///
/// Describes the first divergence: a plan whose serialized bytes differ
/// from the sequential search's, or a deterministic statistic
/// (`candidates_considered`, `nodes_expanded`, `candidates_rejected`,
/// `work_units`) that depends on the schedule.
pub fn check_search_equivalence(
    name: &str,
    pattern: &KeyPattern,
    jobs_list: &[usize],
) -> Result<usize, String> {
    let mut compared = 0usize;
    for family in Family::ALL {
        let (seq_plan, seq_stats) = synthesize_with_stats(pattern, family);
        let seq_bytes = plan_to_string(&seq_plan);
        for &jobs in jobs_list {
            let (par_plan, par_stats) = synthesize_parallel_with_stats(pattern, family, jobs);
            let par_bytes = plan_to_string(&par_plan);
            if par_bytes != seq_bytes {
                return Err(format!(
                    "{name} {family} jobs={jobs}: parallel plan diverged from sequential\n\
                     sequential: {seq_bytes}\n\
                     parallel:   {par_bytes}"
                ));
            }
            for (stat, seq, par) in [
                (
                    "candidates_considered",
                    seq_stats.candidates_considered,
                    par_stats.candidates_considered,
                ),
                (
                    "nodes_expanded",
                    seq_stats.nodes_expanded,
                    par_stats.nodes_expanded,
                ),
                (
                    "candidates_rejected",
                    seq_stats.candidates_rejected,
                    par_stats.candidates_rejected,
                ),
                ("work_units", seq_stats.work_units, par_stats.work_units),
            ] {
                if seq != par {
                    return Err(format!(
                        "{name} {family} jobs={jobs}: {stat} diverged \
                         (sequential {seq}, parallel {par})"
                    ));
                }
            }
            compared += 1;
        }
    }
    Ok(compared)
}

/// Cancels parallel searches both before entry and from a racing thread
/// mid-flight, then requires a fresh search over the same pattern to
/// still produce the exact sequential plan — an aborted search must
/// leave no poisoned state behind. Returns the number of cancelled (or
/// raced) runs.
///
/// # Errors
///
/// Reports a pre-cancelled search that did not return
/// [`SynthError::Cancelled`], a raced search that returned any error
/// other than `Cancelled`, or a post-abort search whose plan diverged.
pub fn check_cancel_no_poison(
    name: &str,
    pattern: &KeyPattern,
    jobs: usize,
) -> Result<usize, String> {
    let mut aborted = 0usize;
    for family in Family::ALL {
        let expected = plan_to_string(&synthesize(pattern, family));

        // Cancellation observed at entry: typed error, nothing else.
        let token = CancelToken::unbounded();
        token.cancel();
        match synthesize_parallel_with_cancel(pattern, family, jobs, &token) {
            Err(SynthError::Cancelled) => aborted += 1,
            Ok(_) => {
                return Err(format!(
                    "{name} {family}: pre-cancelled search returned a plan"
                ))
            }
            Err(e) => {
                return Err(format!(
                    "{name} {family}: pre-cancelled search returned {e} instead of Cancelled"
                ))
            }
        }

        // A racing cancel: the search either finishes first (and must
        // match the sequential plan) or observes the cancel (and must
        // report it as the typed error). Either way the *next* search
        // must be pristine.
        let token = CancelToken::unbounded();
        let racer = {
            let token = token.clone();
            std::thread::spawn(move || token.cancel())
        };
        let raced = synthesize_parallel_with_cancel(pattern, family, jobs, &token);
        racer.join().map_err(|_| "cancel racer panicked")?;
        match raced {
            Ok(plan) => {
                if plan_to_string(&plan) != expected {
                    return Err(format!(
                        "{name} {family}: race-completed plan diverged from sequential"
                    ));
                }
            }
            Err(SynthError::Cancelled) => aborted += 1,
            Err(e) => {
                return Err(format!(
                    "{name} {family}: raced search failed with {e} instead of Cancelled"
                ))
            }
        }

        // No poisoned state: a fresh search still wins with the exact
        // sequential plan and a fresh token.
        let token = CancelToken::unbounded();
        let fresh = synthesize_parallel_with_cancel(pattern, family, jobs, &token)
            .map_err(|e| format!("{name} {family}: post-abort search failed: {e}"))?;
        if plan_to_string(&fresh) != expected {
            return Err(format!(
                "{name} {family}: post-abort search diverged from sequential"
            ));
        }
    }
    Ok(aborted)
}

/// Feeds a pattern through a [`PlanCache`] and requires the memoized
/// plan to serialize identically to a fresh sequential search, with the
/// hit/miss counters advancing exactly as the probe sequence dictates.
/// Returns the number of verified cache hits.
///
/// # Errors
///
/// Reports an unexpected cold-cache hit, a memoized plan that diverged
/// from a fresh search, or counters that disagree with the probe
/// sequence.
pub fn check_cache_equivalence(
    name: &str,
    pattern: &KeyPattern,
    cache: &PlanCache,
) -> Result<usize, String> {
    let mut hits = 0usize;
    for family in Family::ALL {
        let fresh = synthesize(pattern, family);
        if let Some(stale) = cache.lookup(pattern, family) {
            // A prior pattern with the same fingerprint would be a
            // fingerprint collision — surface it instead of masking it.
            if plan_to_string(&stale) != plan_to_string(&fresh) {
                return Err(format!(
                    "{name} {family}: cold lookup returned a different pattern's plan \
                     (fingerprint collision?)"
                ));
            }
            continue;
        }
        cache.insert(pattern, family, fresh.clone());
        let Some(memoized) = cache.lookup(pattern, family) else {
            return Err(format!("{name} {family}: plan vanished after insert"));
        };
        if plan_to_string(&memoized) != plan_to_string(&fresh) {
            return Err(format!(
                "{name} {family}: memoized plan diverged from a fresh search\n\
                 fresh:    {}\n\
                 memoized: {}",
                plan_to_string(&fresh),
                plan_to_string(&memoized)
            ));
        }
        hits += 1;
    }
    Ok(hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_core::regex::Regex;

    fn pattern(re: &str) -> KeyPattern {
        Regex::compile(re).expect("test regex compiles")
    }

    #[test]
    fn equivalence_holds_for_the_ssn_pattern() {
        let p = pattern(r"[0-9]{3}-[0-9]{2}-[0-9]{4}");
        let compared =
            check_search_equivalence("ssn", &p, DEFAULT_JOBS).expect("equivalence holds");
        assert_eq!(compared, Family::ALL.len() * DEFAULT_JOBS.len());
    }

    #[test]
    fn cancel_checks_pass_for_a_deep_pattern() {
        let p = pattern(r"[0-9]{100}");
        let aborted = check_cancel_no_poison("ints", &p, 4).expect("no poisoned state");
        // The pre-cancelled run always aborts; the raced one may or may
        // not, so the floor is one abort per family.
        assert!(aborted >= Family::ALL.len());
    }

    #[test]
    fn cache_round_trip_matches_fresh_search() {
        let cache = PlanCache::new(16);
        let p = pattern(r"[0-9]{20}");
        let hits = check_cache_equivalence("ints20", &p, &cache).expect("cache agrees");
        assert_eq!(hits, Family::ALL.len());
        // A second pass over the same pattern hits the memoized entries.
        let rehits = check_cache_equivalence("ints20", &p, &cache).expect("cache still agrees");
        assert_eq!(rehits, 0, "already memoized");
        assert!(cache.hits() >= Family::ALL.len() as u64);
    }
}
