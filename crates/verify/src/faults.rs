//! Fault injection: mutate keys off-format and verify guarded containers
//! survive.
//!
//! The guard layer promises two things: a [`GuardedHash`]-backed container
//! stays semantically a map no matter how many keys fall outside the
//! trained format, and the degradation threshold really flips the table to
//! its fallback hasher. This module checks both the hard way — it
//! *manufactures* drift. [`mutate_off_format`] edits a valid key so it
//! provably leaves the format (length edits past the bounds, byte flips out
//! of the allowed ranges); [`mutate_in_format`] resamples a byte inside its
//! range as a control. [`check_guarded_container`] replays random operation
//! sequences with a configurable fraction of injected faults against
//! `std::collections::HashMap`, and [`check_degradation`] drives a guarded
//! map over the drift threshold and asserts the state transition.

use crate::interp::spec_matches;
use sepe_containers::{DriftPolicy, UnorderedMap};
use sepe_core::guard::{FormatGuard, GuardMode, GuardedHash};
use sepe_core::hash::ByteHash;
use sepe_core::pattern::KeyPattern;
use sepe_core::synth::Family;
use sepe_core::SynthesizedHash;
use sepe_keygen::SplitMix64;
use std::collections::HashMap;

/// Mutates `key` so that it no longer matches `pattern`.
///
/// Three fault classes, chosen by the rng: grow past `max_len`, truncate
/// below `min_len` (when the format has a nonempty minimum), or flip one
/// constrained byte to a value outside its allowed range. The result is
/// checked against the pattern before being returned, so callers may rely
/// on it being off-format.
#[must_use]
pub fn mutate_off_format(pattern: &KeyPattern, key: &[u8], rng: &mut SplitMix64) -> Vec<u8> {
    let constrained: Vec<usize> = key
        .iter()
        .zip(pattern.bytes())
        .enumerate()
        .filter(|(_, (_, p))| p.const_mask() != 0)
        .map(|(i, _)| i)
        .collect();
    let mut choices = vec![FaultKind::Lengthen];
    if pattern.min_len() > 0 {
        choices.push(FaultKind::Truncate);
    }
    if !constrained.is_empty() {
        choices.push(FaultKind::ByteFlip);
    }
    let fault = choices[(rng.next_u64() % choices.len() as u64) as usize];
    let mutated = match fault {
        FaultKind::Lengthen => {
            let mut k = key.to_vec();
            let extra = 1 + (rng.next_u64() % 4) as usize;
            k.resize(pattern.max_len() + extra, b'!');
            k
        }
        FaultKind::Truncate => key[..(rng.next_u64() % pattern.min_len() as u64) as usize].to_vec(),
        FaultKind::ByteFlip => {
            let i = constrained[(rng.next_u64() % constrained.len() as u64) as usize];
            let p = pattern.bytes()[i];
            let mut k = key.to_vec();
            // Invert one constant bit: the byte now disagrees with the
            // pattern at exactly that position.
            let bit = p.const_mask().trailing_zeros();
            k[i] ^= 1 << bit;
            k
        }
    };
    debug_assert!(
        !pattern.matches(&mutated),
        "{fault:?} left {mutated:?} in-format"
    );
    mutated
}

#[derive(Debug, Clone, Copy)]
enum FaultKind {
    Lengthen,
    Truncate,
    ByteFlip,
}

/// Resamples one byte of `key` to a different value still inside its
/// allowed range, when the position admits one — an in-format mutation that
/// must *not* trip the guard.
#[must_use]
pub fn mutate_in_format(pattern: &KeyPattern, key: &[u8], rng: &mut SplitMix64) -> Vec<u8> {
    let mut k = key.to_vec();
    if k.is_empty() {
        return k;
    }
    let i = (rng.next_u64() % k.len() as u64) as usize;
    let choices: Vec<u8> = pattern.bytes()[i]
        .possible_bytes()
        .filter(|&b| b != k[i])
        .collect();
    if let Some(&b) = choices.get((rng.next_u64() % choices.len().max(1) as u64) as usize) {
        k[i] = b;
    }
    k
}

/// Checks that [`FormatGuard`] decides membership exactly like the
/// independent quad-level specification ([`spec_matches`]) on `keys`,
/// their single-byte out-of-range mutations, and their in-format
/// mutations. Returns the number of membership decisions compared.
///
/// # Errors
///
/// Describes the first key the guard and the specification disagree on.
pub fn check_guard_agreement(
    pattern: &KeyPattern,
    keys: &[Vec<u8>],
    rng: &mut SplitMix64,
) -> Result<usize, String> {
    let guard = FormatGuard::compile(pattern);
    let mut checked = 0usize;
    let verdict = |key: &[u8], expect: Option<bool>| -> Result<(), String> {
        let spec = spec_matches(pattern, key);
        if let Some(e) = expect {
            if spec != e {
                return Err(format!("spec_matches({key:?}) = {spec}, expected {e}"));
            }
        }
        if guard.matches(key) != spec {
            return Err(format!(
                "guard.matches({key:?}) = {}, spec says {spec}",
                guard.matches(key)
            ));
        }
        Ok(())
    };
    for key in keys {
        verdict(key, Some(true))?;
        verdict(&mutate_off_format(pattern, key, rng), Some(false))?;
        verdict(&mutate_in_format(pattern, key, rng), Some(true))?;
        checked += 3;
    }
    Ok(checked)
}

/// Checks that the *batched* guard path treats injected faults exactly
/// like the scalar one.
///
/// Builds mixed batches (clean keys interleaved with [`mutate_off_format`]
/// mutations) and asserts, across batch widths 1/3/4/7/8:
///
/// * [`FormatGuard::check_batch`] flags exactly the indices that
///   `guard.matches` and [`spec_matches`] flag;
/// * driving a [`GuardedHash`] through `hash_batch` yields the same hash
///   values as a scalar twin, and leaves the drift counters (`in_format`,
///   `off_format`) with the same increments.
///
/// Returns the number of membership decisions compared.
///
/// # Errors
///
/// Describes the first batch index where the batched and scalar guards
/// diverge.
pub fn check_batch_guard_agreement(
    pattern: &KeyPattern,
    keys: &[Vec<u8>],
    rng: &mut SplitMix64,
) -> Result<usize, String> {
    use sepe_baselines::CityHash;
    use sepe_core::hash::HashBatch;

    let guard = FormatGuard::compile(pattern);
    // Mixed pool: every third key mutated off-format, the rest clean.
    let pool: Vec<Vec<u8>> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| {
            if i % 3 == 2 {
                mutate_off_format(pattern, k, rng)
            } else {
                k.clone()
            }
        })
        .collect();
    let refs: Vec<&[u8]> = pool.iter().map(Vec::as_slice).collect();

    let mut checked = 0usize;
    for width in [1usize, 3, 4, 7, 8] {
        for chunk in refs.chunks(width) {
            let mut verdicts = vec![false; chunk.len()];
            guard.check_batch(chunk, &mut verdicts);
            for (i, (&key, &batched)) in chunk.iter().zip(&verdicts).enumerate() {
                let scalar = guard.matches(key);
                let spec = spec_matches(pattern, key);
                if batched != scalar || batched != spec {
                    return Err(format!(
                        "width {width} lane {i}: check_batch says {batched}, \
                         guard.matches says {scalar}, spec says {spec} on {key:?}"
                    ));
                }
                checked += 1;
            }
        }
    }

    // Same drift accounting: a batched GuardedHash vs. a scalar twin.
    for family in Family::ALL {
        let batched = GuardedHash::from_pattern(pattern, family, CityHash::new());
        let scalar = GuardedHash::from_pattern(pattern, family, CityHash::new());
        for width in [3usize, 8] {
            for chunk in refs.chunks(width) {
                let mut out = vec![0u64; chunk.len()];
                batched.hash_batch(chunk, &mut out);
                for (i, (&key, &got)) in chunk.iter().zip(&out).enumerate() {
                    let want = scalar.hash_bytes(key);
                    if got != want {
                        return Err(format!(
                            "{family} width {width} lane {i}: batched guarded hash \
                             {got:#x} != scalar {want:#x} on {key:?}"
                        ));
                    }
                }
            }
        }
        let (b, s) = (batched.stats(), scalar.stats());
        if b.in_format() != s.in_format() || b.off_format() != s.off_format() {
            return Err(format!(
                "{family}: batched drift counters ({} in, {} off) != scalar \
                 ({} in, {} off)",
                b.in_format(),
                b.off_format(),
                s.in_format(),
                s.off_format()
            ));
        }
    }
    Ok(checked)
}

/// Checks that a [`GuardedHash`] equals its specialized hash on every
/// in-format key (the guard reroutes, it must never *change* an in-format
/// hash).
///
/// # Errors
///
/// Describes the first in-format key the two hashes disagree on.
pub fn check_in_format_identity<G: ByteHash>(
    guarded: &GuardedHash<SynthesizedHash, G>,
    keys: &[Vec<u8>],
) -> Result<(), String> {
    for key in keys {
        let g = guarded.hash_bytes(key);
        let s = guarded.specialized().hash_bytes(key);
        if g != s {
            return Err(format!(
                "guarded hash {g:#x} != specialized hash {s:#x} on in-format key {key:?}"
            ));
        }
    }
    Ok(())
}

/// Statistics of one fault-injected model-checking run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultStats {
    /// Operations replayed.
    pub ops: usize,
    /// Off-format keys injected into the pool.
    pub injected: usize,
    /// Degradation transitions observed.
    pub transitions: usize,
    /// Full-content checkpoints passed.
    pub checkpoints: usize,
}

/// Builds a key pool with `fault_fraction` of the entries mutated
/// off-format.
#[must_use]
pub fn faulted_pool(
    pattern: &KeyPattern,
    clean: &[Vec<u8>],
    fault_fraction: f64,
    rng: &mut SplitMix64,
) -> (Vec<Vec<u8>>, usize) {
    let mut pool = Vec::with_capacity(clean.len());
    let mut injected = 0usize;
    for key in clean {
        // Threshold comparison on the raw 64-bit draw keeps the fraction
        // exact in expectation without floats in the loop.
        if (rng.next_u64() as f64 / u64::MAX as f64) < fault_fraction {
            pool.push(mutate_off_format(pattern, key, rng));
            injected += 1;
        } else {
            pool.push(key.clone());
        }
    }
    (pool, injected)
}

/// Replays `n_ops` random operations against a [`GuardedHash`]-backed
/// [`UnorderedMap`] and `std::collections::HashMap` simultaneously, drawing
/// keys from `pool` (which may contain off-format, non-UTF-8 keys — the
/// model uses `Vec<u8>` keys for exactly that reason). Every 512 steps the
/// drift policy is consulted, so a pool over the threshold exercises the
/// degradation transition mid-sequence.
///
/// # Errors
///
/// Returns a description of the first divergence from the model.
pub fn check_guarded_container<G: ByteHash + Clone>(
    hasher: GuardedHash<SynthesizedHash, G>,
    pool: &[Vec<u8>],
    policy: &DriftPolicy,
    n_ops: usize,
    seed: u64,
) -> Result<FaultStats, String> {
    let mut rng = SplitMix64::new(seed);
    let mut sut: UnorderedMap<Vec<u8>, u64, _> = UnorderedMap::with_hasher(hasher);
    let mut model: HashMap<Vec<u8>, u64> = HashMap::new();
    let mut stats = FaultStats::default();
    let mut next_value = 0u64;

    for step in 0..n_ops {
        let key = &pool[(rng.next_u64() % pool.len() as u64) as usize];
        match rng.next_u64() % 100 {
            0..=39 => {
                next_value += 1;
                let a = sut.insert(key.clone(), next_value);
                let b = model.insert(key.clone(), next_value);
                if a != b {
                    return Err(format!(
                        "step {step}: insert({key:?}) -> {a:?}, model {b:?}"
                    ));
                }
            }
            40..=64 => {
                let a = sut.get(key.as_slice()).copied();
                let b = model.get(key).copied();
                if a != b {
                    return Err(format!("step {step}: get({key:?}) -> {a:?}, model {b:?}"));
                }
            }
            65..=74 => {
                if sut.contains_key(key.as_slice()) != model.contains_key(key) {
                    return Err(format!("step {step}: contains({key:?}) diverged"));
                }
            }
            75..=89 => {
                let a = sut.remove(key.as_slice());
                let b = model.remove(key);
                if a != b {
                    return Err(format!(
                        "step {step}: remove({key:?}) -> {a:?}, model {b:?}"
                    ));
                }
            }
            90..=93 => {
                sut.rehash(1 + (rng.next_u64() % 512) as usize);
            }
            94..=96 => {
                sut.reserve((rng.next_u64() % 256) as usize);
            }
            97 => {
                sut.clear();
                model.clear();
            }
            _ => {
                check_contents(step, &sut, &model)?;
                stats.checkpoints += 1;
            }
        }
        if sut.len() != model.len() {
            return Err(format!(
                "step {step}: len {} != model {}",
                sut.len(),
                model.len()
            ));
        }
        if step % 512 == 511 && sut.maybe_degrade(policy) {
            stats.transitions += 1;
            check_contents(step, &sut, &model).map_err(|e| format!("after degradation: {e}"))?;
        }
        stats.ops += 1;
    }
    check_contents(n_ops, &sut, &model)?;
    stats.checkpoints += 1;
    Ok(stats)
}

fn check_contents<H: ByteHash>(
    step: usize,
    sut: &UnorderedMap<Vec<u8>, u64, H>,
    model: &HashMap<Vec<u8>, u64>,
) -> Result<(), String> {
    let mut seen = 0usize;
    for (k, v) in sut.iter() {
        match model.get(k) {
            Some(mv) if mv == v => seen += 1,
            Some(mv) => return Err(format!("step {step}: {k:?} holds {v}, model holds {mv}")),
            None => return Err(format!("step {step}: {k:?} present but absent from model")),
        }
    }
    if seen != model.len() {
        return Err(format!(
            "step {step}: iterated {seen} pairs, model holds {}",
            model.len()
        ));
    }
    Ok(())
}

/// Drives a guarded map over the drift threshold with ≥10% injected
/// off-format keys and asserts the full degradation state machine:
/// `Guarded` before the threshold, exactly one transition to `Degraded`,
/// and no key lost while the epoch migration is in flight.
///
/// # Errors
///
/// Describes the first violated transition or lost key.
pub fn check_degradation<G: ByteHash + Clone>(
    pattern: &KeyPattern,
    family: Family,
    fallback: G,
    clean: &[Vec<u8>],
    seed: u64,
) -> Result<(), String> {
    let mut rng = SplitMix64::new(seed);
    let policy = DriftPolicy {
        threshold: 0.10,
        min_samples: 32,
        ..DriftPolicy::default()
    };
    let hasher = GuardedHash::from_pattern(pattern, family, fallback);
    let mut map: UnorderedMap<Vec<u8>, u64, _> = UnorderedMap::with_hasher(hasher);
    if map.guard_mode() != GuardMode::Guarded {
        return Err("fresh guarded map is not in Guarded mode".to_owned());
    }
    for (i, key) in clean.iter().enumerate() {
        map.insert(key.clone(), i as u64);
    }
    if map.maybe_degrade(&policy) {
        return Err("map degraded on purely in-format traffic".to_owned());
    }
    // 25% injected faults pushes drift well past the 10% threshold.
    let (pool, injected) = faulted_pool(pattern, clean, 0.25, &mut rng);
    if (injected as f64) < 0.10 * pool.len() as f64 {
        return Err(format!(
            "injection produced only {injected}/{} off-format keys",
            pool.len()
        ));
    }
    for (i, key) in pool.iter().enumerate() {
        map.insert(key.clone(), (clean.len() + i) as u64);
    }
    if !map.maybe_degrade(&policy) {
        return Err(format!(
            "drift {:.1}% did not flip the table (threshold {:.1}%)",
            map.drift_stats().off_rate() * 100.0,
            policy.threshold * 100.0
        ));
    }
    if map.guard_mode() != GuardMode::Degraded {
        return Err("transition reported but mode is not Degraded".to_owned());
    }
    if map.maybe_degrade(&policy) {
        return Err("degradation transition was not idempotent".to_owned());
    }
    // Every key must survive the flip, both mid-migration and after an
    // explicit drain.
    for key in clean.iter().chain(&pool) {
        if !map.contains_key(key.as_slice()) {
            return Err(format!("key {key:?} lost mid-migration"));
        }
    }
    map.finish_migration();
    if map.migration_in_flight() {
        return Err("finish_migration left the epoch in flight".to_owned());
    }
    for key in clean.iter().chain(&pool) {
        if !map.contains_key(key.as_slice()) {
            return Err(format!("key {key:?} lost across the degradation drain"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::RandomFormat;
    use sepe_core::hash::stl_hash_bytes;

    #[derive(Clone)]
    struct Stl;
    impl ByteHash for Stl {
        fn hash_bytes(&self, key: &[u8]) -> u64 {
            stl_hash_bytes(key, 0)
        }
    }

    #[test]
    fn mutations_leave_and_keep_the_format() {
        let mut rng = SplitMix64::new(0xFA_017);
        for _ in 0..100 {
            let format = RandomFormat::generate(&mut rng);
            let pattern = format.pattern();
            for key in format.sample_keys(&mut rng, 10) {
                let off = mutate_off_format(&pattern, &key, &mut rng);
                assert!(!pattern.matches(&off), "{pattern} accepted {off:?}");
                let on = mutate_in_format(&pattern, &key, &mut rng);
                assert!(pattern.matches(&on), "{pattern} rejected {on:?}");
            }
        }
    }

    #[test]
    fn guarded_container_model_holds_under_faults() {
        let mut rng = SplitMix64::new(0xBAD_C0DE);
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        let clean = format.sample_keys(&mut rng, 48);
        let (pool, injected) = faulted_pool(&pattern, &clean, 0.25, &mut rng);
        assert!(injected > 0);
        for family in Family::ALL {
            let hasher = GuardedHash::from_pattern(&pattern, family, Stl);
            let stats =
                check_guarded_container(hasher, &pool, &DriftPolicy::default(), 3_000, 0x5EED)
                    .unwrap_or_else(|e| panic!("{family}: {e}"));
            assert!(stats.checkpoints > 0);
        }
    }

    #[test]
    fn degradation_state_machine_is_exercised() {
        let mut rng = SplitMix64::new(0xD1F7);
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        let clean = format.sample_keys(&mut rng, 200);
        check_degradation(&pattern, Family::Pext, Stl, &clean, 0x0FF).expect("state machine");
    }
}
