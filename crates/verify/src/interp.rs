//! An independent plan interpreter — the executable specification.
//!
//! [`interpret`] evaluates a [`Plan`] the way the paper describes it, not
//! the way `sepe-core` optimizes it: word loads are assembled byte by byte,
//! bit extraction runs the one-bit-at-a-time reference loop of Figure 11
//! ([`pext_reference`]), and the AES round is composed from the table-driven
//! `SubBytes`/`ShiftRows`/`MixColumns` primitives. Every constant the hash
//! depends on (the length multiplier, the round key, the seed block) is
//! re-declared here from its published source so that a transcription error
//! in `sepe-core` shows up as a differential mismatch instead of being
//! copied into the checker.

use sepe_core::aes::{mix_columns, shift_rows, sub_bytes, Block};
use sepe_core::bits::pext_reference;
use sepe_core::hash::stl_hash_bytes;
use sepe_core::synth::{Family, Plan, WordOp};

/// The length multiplier of variable-length plans: the 64-bit MurmurHash2
/// constant, as used by `initialize_hash(len, seed)` in Figure 8.
pub const SPEC_MUL: u64 = 0xc6a4_a793_5bd1_e995;

/// The fixed AES round key: the first 16 bytes of the FIPS-197 appendix key
/// schedule example (hex digits of e).
pub const SPEC_AES_ROUND_KEY: Block = [
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
];

/// Low half of the AES seed block: the first 16 hex digits of pi.
pub const SPEC_SEED_LO: u64 = 0x2438_6A88_85A3_08D3;

/// High half of the AES seed block: the next 16 hex digits of pi.
pub const SPEC_SEED_HI: u64 = 0x1319_8A2E_0370_7344;

/// Loads eight key bytes little-endian, reading past the end as zero —
/// assembled one byte at a time, independently of `bits::load_u64_le`.
#[must_use]
pub fn spec_load_word(key: &[u8], offset: usize) -> u64 {
    let mut w = 0u64;
    for i in 0..8 {
        if let Some(&b) = key.get(offset + i) {
            w |= u64::from(b) << (8 * i);
        }
    }
    w
}

/// Loads a 16-byte block, reading past the end as zero.
#[must_use]
pub fn spec_load_block(key: &[u8], offset: usize) -> Block {
    let mut b = [0u8; 16];
    for (i, slot) in b.iter_mut().enumerate() {
        if let Some(&byte) = key.get(offset + i) {
            *slot = byte;
        }
    }
    b
}

/// One AES encode round composed from its FIPS-197 steps:
/// `MixColumns(ShiftRows(SubBytes(state ^ block))) ^ round_key`.
#[must_use]
pub fn spec_aes_mix(state: Block, block: Block) -> Block {
    let mut x = state;
    for (s, b) in x.iter_mut().zip(block.iter()) {
        *s ^= b;
    }
    let mut out = mix_columns(shift_rows(sub_bytes(x)));
    for (o, k) in out.iter_mut().zip(SPEC_AES_ROUND_KEY.iter()) {
        *o ^= k;
    }
    out
}

/// The seed block of the Aes family: pi digits perturbed by the seed.
#[must_use]
pub fn spec_seed_block(seed: u64) -> Block {
    let lo = SPEC_SEED_LO ^ seed;
    let hi = SPEC_SEED_HI ^ seed.rotate_left(32);
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&lo.to_le_bytes());
    b[8..].copy_from_slice(&hi.to_le_bytes());
    b
}

/// Folds an AES state to 64 bits: low half xor high half.
#[must_use]
pub fn spec_fold(state: Block) -> u64 {
    let lo = u64::from_le_bytes(state[..8].try_into().expect("8 bytes"));
    let hi = u64::from_le_bytes(state[8..].try_into().expect("8 bytes"));
    lo ^ hi
}

/// Combines the word loads of a plan, seedless.
///
/// For Pext, each load is extracted through the reference loop and packed
/// by its shift; for Naive/OffXor, each load is rotated left by its shift
/// (the clamped-load anti-cancellation rotation) and xored in.
#[must_use]
pub fn spec_combine_words(family: Family, key: &[u8], ops: &[WordOp]) -> u64 {
    let mut h = 0u64;
    for op in ops {
        let w = spec_load_word(key, op.offset as usize);
        if family == Family::Pext {
            h ^= pext_reference(w, op.mask) << op.shift;
        } else {
            h ^= w.rotate_left(u32::from(op.shift));
        }
    }
    h
}

fn spec_words_tail(key: &[u8], tail_start: usize) -> u64 {
    let mut h = 0u64;
    let mut o = tail_start;
    while o + 8 <= key.len() {
        h ^= spec_load_word(key, o).rotate_left((o % 64) as u32);
        o += 8;
    }
    if o < key.len() {
        h ^= spec_load_word(key, o).rotate_left((o % 64) as u32);
    }
    h
}

fn spec_replicate_block(key: &[u8]) -> Block {
    let mut b = [0u8; 16];
    if key.is_empty() {
        return b;
    }
    for (i, slot) in b.iter_mut().enumerate() {
        *slot = key[i % key.len()];
    }
    b
}

fn spec_blocks(key: &[u8], seed: u64, offsets: &[u32], tail_start: Option<usize>) -> u64 {
    let mut state = spec_seed_block(seed);
    if offsets.is_empty() && tail_start.is_none() {
        state = spec_aes_mix(state, spec_replicate_block(key));
    } else {
        for &off in offsets {
            state = spec_aes_mix(state, spec_load_block(key, off as usize));
        }
    }
    if let Some(tail) = tail_start {
        let mut o = tail;
        while o < key.len() {
            state = spec_aes_mix(state, spec_load_block(key, o));
            o += 16;
        }
        let mut len_block = [0u8; 16];
        len_block[..8].copy_from_slice(&(key.len() as u64).to_le_bytes());
        state = spec_aes_mix(state, len_block);
    }
    spec_fold(state)
}

/// Evaluates `plan` on `key` with `seed`, per the specification.
///
/// This must agree bit for bit with
/// `SynthesizedHash::new(plan, family, isa).with_seed(seed).hash_bytes(key)`
/// for **both** ISA paths — that agreement is what [`crate::differential`]
/// checks.
///
/// The [`Plan::StlFallback`] case is not synthesized code (the paper
/// "defaults to the standard function" below eight bytes), so it is the one
/// case delegated to `sepe-core` rather than re-derived.
#[must_use]
pub fn interpret(plan: &Plan, family: Family, seed: u64, key: &[u8]) -> u64 {
    match plan {
        Plan::StlFallback => stl_hash_bytes(key, seed),
        Plan::FixedWords { ops, .. } => seed ^ spec_combine_words(family, key, ops),
        Plan::VarWords {
            ops, tail_start, ..
        } => {
            seed ^ (key.len() as u64).wrapping_mul(SPEC_MUL)
                ^ spec_combine_words(family, key, ops)
                ^ spec_words_tail(key, *tail_start)
        }
        Plan::FixedBlocks { offsets, .. } => spec_blocks(key, seed, offsets, None),
        Plan::VarBlocks {
            offsets,
            tail_start,
            ..
        } => spec_blocks(key, seed, offsets, Some(*tail_start)),
    }
}

/// Independent format-membership specification: whether `key` belongs to
/// the language of `pattern`.
///
/// Re-derived from the lattice quads, two bits at a time, rather than from
/// the `const_mask`/`const_bits` byte test — so `FormatGuard::matches` (the
/// word-at-a-time fast path) and `KeyPattern::matches` (the byte loop) are
/// both checked against a third route through the definition.
#[must_use]
pub fn spec_matches(pattern: &sepe_core::KeyPattern, key: &[u8]) -> bool {
    if key.len() < pattern.min_len() || key.len() > pattern.max_len() {
        return false;
    }
    for (&byte, p) in key.iter().zip(pattern.bytes()) {
        for (i, q) in p.quads().into_iter().enumerate() {
            let shift = 6 - 2 * i as u8;
            if let sepe_core::lattice::Quad::Const(v) = q {
                if (byte >> shift) & 0b11 != v {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_core::aes::aesenc;
    use sepe_core::Isa;

    #[test]
    fn spec_load_word_zero_pads() {
        assert_eq!(
            spec_load_word(b"ab", 0),
            u64::from(b'a') | u64::from(b'b') << 8
        );
        assert_eq!(spec_load_word(b"ab", 5), 0);
        assert_eq!(
            spec_load_word(b"abcdefgh", 0),
            u64::from_le_bytes(*b"abcdefgh")
        );
    }

    #[test]
    fn spec_aes_mix_matches_the_intrinsic_semantics() {
        // The composed round equals aesenc(state ^ block, RK).
        let state: Block = *b"0123456789abcdef";
        let block: Block = *b"fedcba9876543210";
        let mut x = state;
        for (s, b) in x.iter_mut().zip(block.iter()) {
            *s ^= b;
        }
        let expected = aesenc(x, SPEC_AES_ROUND_KEY, Isa::Portable);
        assert_eq!(spec_aes_mix(state, block), expected);
    }

    #[test]
    fn interpret_ssn_pext_extracts_nibbles() {
        use sepe_core::regex::Regex;
        use sepe_core::synth::synthesize;
        let p = Regex::compile(r"\d{3}\.\d{2}\.\d{4}").unwrap();
        let plan = synthesize(&p, Family::Pext);
        // All-zero digits extract to 0; the seed passes through.
        assert_eq!(interpret(&plan, Family::Pext, 0, b"000.00.0000"), 0);
        assert_eq!(interpret(&plan, Family::Pext, 7, b"000.00.0000"), 7);
        // Distinct SSNs get distinct codes (Pext is a bijection here).
        assert_ne!(
            interpret(&plan, Family::Pext, 0, b"123.45.6789"),
            interpret(&plan, Family::Pext, 0, b"123.45.6788"),
        );
    }
}
