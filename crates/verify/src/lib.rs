//! # sepe-verify
//!
//! Differential-correctness harness for the SEPE reproduction.
//!
//! The fast hash implementations in `sepe-core` are tuned code: fully
//! unrolled fast paths, hardware `pext`/AES-NI dispatch, clamped overlapping
//! loads. This crate re-derives what each synthesized [`Plan`] *means* from
//! first principles and checks the tuned code against that meaning:
//!
//! * [`interp`] — an independent, deliberately slow plan interpreter built
//!   on the bit-level reference loops (`pext_reference`, `pdep_reference`)
//!   and the table-driven AES round primitives, with every spec constant
//!   re-declared locally so a typo in `sepe-core` cannot silently agree
//!   with itself;
//! * [`invariants`] — paper-derived structural checks on plans: load
//!   coverage, mask/shift disjointness, the Pext bijection of Section 4.2
//!   (verified constructively, by inverting hashes back into keys), and
//!   soundness of the inference lattice;
//! * [`formats`] — a seeded random key-format generator, so the checks run
//!   over hundreds of formats nobody hand-picked;
//! * [`differential`] — the cross-check driver: tuned hash vs. interpreter,
//!   over both ISA paths and multiple seeds;
//! * [`batch`] — the batched twin of `differential`: `hash_batch` vs. the
//!   scalar path vs. the interpreter at widths 1/3/4/7/8 (ragged tails
//!   included), with hardware `pext` dispatch forced both on and off;
//! * [`model`] — a model checker replaying random operation sequences
//!   against `std::collections::HashMap` to validate the container layer;
//! * [`faults`] — a fault injector that mutates pool keys off-format
//!   (length edits, byte flips out of the allowed ranges) and model-checks
//!   `GuardedHash`-backed containers, including the drift-triggered
//!   degradation transition, under injected faults;
//! * [`migration`] — a chaos harness for the incremental migration state
//!   machine: interrupted epochs with drift bursts model-checked against an
//!   eagerly drained twin and `std::collections::HashMap` (contents *and*
//!   drift counters must agree exactly), batched operations across epoch
//!   boundaries, and typed rejection of corrupted plan bundles;
//! * [`concurrent`] — a multi-threaded model checker for the lock-striped
//!   `ShardedMap`: real OS threads over disjoint key partitions against a
//!   `Mutex<HashMap>` twin, with chaos-mode drift bursts that degrade one
//!   shard while its siblings keep serving reads;
//! * [`attacker`] — scripted HashDoS attackers: the linear OffXor
//!   forgeries promoted from the repository's adversarial tests, plus a
//!   brute-force bucket-flood generator that works against any
//!   adversary-computable hash;
//! * [`adversarial`] — the HashDoS chaos harness: crafted collision
//!   storms (including a simulated seed leak) against single maps, the
//!   batched paths, and a concurrently hammered `ShardedMap`, asserting
//!   bounded chains after escalation, twin agreement throughout, exact
//!   escalation-counter transcripts, and that benign churn never trips
//!   the detector;
//! * [`supervisor`] — chaos and replay checks for the background
//!   resynthesis supervisor: scripted synthesis faults (hang, panic,
//!   typed error, invalid plan) against concurrent container traffic,
//!   breaker discipline audits, and mock-clock transcript replay
//!   equality;
//! * [`synthesis`] — the search-equivalence suite: the parallel
//!   candidate search must produce byte-identical plans (and identical
//!   deterministic search statistics) to the sequential search at every
//!   thread count, a cancelled mid-flight search must leave no poisoned
//!   state, and a `PlanCache` hit must equal a fresh search.
//!
//! [`Plan`]: sepe_core::synth::Plan

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod adversarial;
pub mod attacker;
pub mod batch;
pub mod concurrent;
pub mod differential;
pub mod faults;
pub mod formats;
pub mod interp;
pub mod invariants;
pub mod migration;
pub mod model;
pub mod supervisor;
pub mod synthesis;
