//! Scripted HashDoS attackers: deterministic collision forgeries.
//!
//! Two attacker models, both implementable by anyone holding the binary:
//!
//! * **Linear forgery** ([`forged_ipv4_pair`], [`offxor_flood_keys`]) —
//!   the xor-combining families are linear over GF(2), so flipping
//!   rotation-compensated bit pairs cancels exactly. No search needed;
//!   the collisions are constructed. Promoted here from the repository's
//!   `tests/adversarial.rs` so the chaos suites and property tests can
//!   reuse them.
//! * **Brute-force bucket flood** ([`bucket_flood`]) — family-agnostic:
//!   evaluate the container's (unkeyed, hence adversary-computable) hash
//!   offline and keep the keys that land in one chosen bucket. ~one
//!   bucket-count of trials per colliding key, entirely practical. This
//!   is the attacker the escalation ladder must defeat: it works against
//!   the guarded fallback too, which is why `Degraded` is not a safe
//!   terminal state and the ladder continues to `Keyed(seed)`.

/// A pair of distinct 15-byte keys that collide under the IPv4 OffXor
/// plan (loads at offsets 0 and 7, the second rotated left by 4 for being
/// clamped): the rotation stops *in-format* differences from cancelling,
/// but the combination stays linear over GF(2), so an adversary free to
/// flip arbitrary bits simply pre-rotates the second flip — bit 4 of
/// byte 1 (lane 1 of load 0) cancels against bit 0 of byte 8 (lane 1 of
/// load 1, rotated onto the same position).
#[must_use]
pub fn forged_ipv4_pair() -> (Vec<u8>, Vec<u8>) {
    let base = b"000.000.000.000".to_vec();
    let mut forged = base.clone();
    forged[1] ^= 0x10; // '0' -> ' ' — bit 12 of load 0
    forged[8] ^= 0x01; // '0' -> '1' — bit 8 of load 1, bit 12 after rotation
    (base, forged)
}

/// 64 distinct 15-byte keys that all hash identically under the IPv4
/// OffXor plan: every combination of flipping the rotation-compensated
/// bit pairs across bytes `1..=6` (bit 4 of byte `p` cancels bit 0 of
/// byte `p + 7`; byte 7 sits in both overlapping loads, so byte 0's pair
/// is unusable). Inserting them into a container floods one bucket —
/// `bucket_collisions()` reports 63.
#[must_use]
pub fn offxor_flood_keys() -> Vec<Vec<u8>> {
    let base = b"000.000.000.000".to_vec();
    let mut keys: Vec<Vec<u8>> = (0..64u32)
        .map(|mask| {
            let mut k = base.clone();
            for bit in 0..6 {
                if (mask >> bit) & 1 == 1 {
                    let p = bit + 1;
                    k[p] ^= 0x10;
                    k[p + 7] ^= 0x01;
                }
            }
            k
        })
        .collect();
    keys.sort();
    keys.dedup();
    keys
}

/// Brute-forces `count` distinct keys that `hash_of` sends to a single
/// bucket of a `bucket_count`-bucket table — the generic HashDoS stream.
///
/// `hash_of` stands for whatever the adversary can compute offline: a
/// synthesized plan, the unkeyed fallback, or (after a seed leak) the
/// keyed hash under the stolen seed. `tag` varies the key namespace so
/// independent streams don't collide with each other. The target bucket
/// is whichever bucket the first candidate lands in.
///
/// Cost is ~`bucket_count` hash evaluations per key; callers should
/// pre-reserve their table so `bucket_count` stays stable while the
/// stream is inserted.
///
/// # Panics
///
/// Panics if `bucket_count` is zero.
#[must_use]
pub fn bucket_flood<H>(hash_of: H, bucket_count: u64, count: usize, tag: u64) -> Vec<Vec<u8>>
where
    H: Fn(&[u8]) -> u64,
{
    assert!(bucket_count > 0, "bucket_count must be non-zero");
    let mut keys = Vec::with_capacity(count);
    let mut target = None;
    let mut i = 0u64;
    while keys.len() < count {
        let key = format!("atk-{tag:08x}-{i:016x}").into_bytes();
        i += 1;
        let bucket = hash_of(&key) % bucket_count;
        let target = *target.get_or_insert(bucket);
        if bucket == target {
            keys.push(key);
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_baselines::CityHash;
    use sepe_core::hash::{ByteHash, SynthesizedHash};
    use sepe_core::synth::Family;
    use sepe_keygen::KeyFormat;

    #[test]
    fn the_forged_pair_collides_under_offxor() {
        let hash = SynthesizedHash::from_regex(&KeyFormat::Ipv4.regex(), Family::OffXor)
            .expect("ipv4 regex compiles");
        let (a, b) = forged_ipv4_pair();
        assert_ne!(a, b);
        assert_eq!(hash.hash_bytes(&a), hash.hash_bytes(&b));
    }

    #[test]
    fn the_flood_keys_are_64_distinct_one_hash() {
        let hash = SynthesizedHash::from_regex(&KeyFormat::Ipv4.regex(), Family::OffXor)
            .expect("ipv4 regex compiles");
        let keys = offxor_flood_keys();
        assert_eq!(keys.len(), 64);
        let h0 = hash.hash_bytes(&keys[0]);
        assert!(keys.iter().all(|k| hash.hash_bytes(k) == h0));
    }

    #[test]
    fn bucket_flood_defeats_an_unkeyed_hash() {
        let city = CityHash::new();
        let keys = bucket_flood(|k| city.hash_bytes(k), 1543, 32, 7);
        assert_eq!(keys.len(), 32);
        let target = city.hash_bytes(&keys[0]) % 1543;
        assert!(keys.iter().all(|k| city.hash_bytes(k) % 1543 == target));
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 32, "keys are distinct");
    }
}
