//! Chaos and replay harness for the background resynthesis supervisor.
//!
//! The supervisor's contract has two halves, and this module attacks both:
//!
//! * **Liveness of the serving path.** Synthesis that hangs, panics,
//!   errors, or produces invalid plans must never stall a container
//!   operation: degradation enqueues a job and returns, attempts run on
//!   detached worker threads, and a completed plan lands through the same
//!   migration-epoch swap an inline resynthesis would use. The chaos
//!   check ([`check_supervised_chaos`]) runs real worker threads over a
//!   [`ShardedMap`] (the [`crate::concurrent`] idiom: disjoint key
//!   partitions against a `Mutex<HashMap>` twin) while a scripted fault
//!   runner mistreats the supervisor — one shard's synthesis hangs for
//!   the whole run, one panics before succeeding, one fails with typed
//!   errors until its circuit breaker opens, one returns a plan that
//!   validation rejects before recovering. Worker ops must all complete
//!   while the hang is still in flight, with the worst mutating-op stall
//!   orders of magnitude under the hang's deadline — the structural
//!   witness that no operation ever waits on synthesis.
//! * **Determinism of the state machine.** Every transition — backoff
//!   schedule, deadline expiry, breaker open/half-open/close — is driven
//!   by an injected clock and a seeded jitter, so the whole transcript
//!   must replay identically from the same seed and the same mock clock.
//!   [`check_replay_transcripts`] runs a seeded fault script twice in
//!   [`ExecMode::Inline`] and demands event-for-event equality, and
//!   audits the breaker discipline inside the transcript: a breaker may
//!   only open after *exactly* the configured number of consecutive
//!   failures.

use sepe_containers::sharded::ShardedMap;
use sepe_containers::ResynthPolicy;
use sepe_core::guard::{GuardMode, GuardedHash};
use sepe_core::hash::ByteHash;
use sepe_core::pattern::KeyPattern;
use sepe_core::plan_io::validate_plan;
use sepe_core::regex::Regex;
use sepe_core::supervisor::{
    ExecMode, MockClock, ResynthSupervisor, SupervisorConfig, SynthRequest, SynthRunner,
    SystemClock, Transition,
};
use sepe_core::synth::{synthesize, Family, Plan};
use sepe_core::{Isa, SynthError, SynthesizedHash};
use sepe_keygen::SplitMix64;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Aggregate statistics of the supervisor checks.
#[derive(Debug, Default, Clone, Copy)]
pub struct SupervisorStats {
    /// Map operations executed across all worker threads.
    pub ops: usize,
    /// Worker threads that ran.
    pub threads: usize,
    /// Shards degraded at the start of chaos runs.
    pub degradations: usize,
    /// Background plans applied through the migration-epoch machinery.
    pub applied: usize,
    /// Injected synthesis faults the supervisor absorbed (panics, typed
    /// errors, invalid plans, hangs).
    pub faults: usize,
    /// Supervisor transcript events recorded.
    pub events: usize,
    /// Quiescent full-content checkpoints passed.
    pub checkpoints: usize,
    /// Worst single mutating-op latency observed, in nanoseconds.
    pub max_mutating_ns: u64,
}

impl SupervisorStats {
    /// Accumulates another run's counters into this one.
    pub fn absorb(&mut self, other: SupervisorStats) {
        self.ops += other.ops;
        self.threads += other.threads;
        self.degradations += other.degradations;
        self.applied += other.applied;
        self.faults += other.faults;
        self.events += other.events;
        self.checkpoints += other.checkpoints;
        self.max_mutating_ns = self.max_mutating_ns.max(other.max_mutating_ns);
    }
}

/// Shape of one supervised chaos run.
#[derive(Debug, Clone, Copy)]
pub struct SupervisedRun {
    /// Worker threads to spawn (clamped to at least 1).
    pub threads: usize,
    /// Map operations each thread executes over its key partition.
    pub ops_per_thread: usize,
    /// Seed for the per-thread operation streams.
    pub seed: u64,
    /// Arm the scripted fault runner (hang/panic/error/invalid-plan). When
    /// off, the production runner resynthesizes every degraded shard for
    /// real and all of them must re-arm.
    pub faults: bool,
}

/// One scripted misbehaviour of the synthesis runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// Spin (cooperatively, watching the token) until released — models
    /// synthesis that never terminates.
    Hang,
    /// Panic mid-synthesis; the supervisor must catch and count it.
    Panic,
    /// Fail with a typed error.
    Error,
    /// Produce a plan that [`validate_plan`] rejects — the typed failure
    /// an invalid plan must become, never an installed hash.
    InvalidPlan,
    /// Run real synthesis and succeed.
    Success,
}

/// Runs `f` with the default panic hook silenced, so the injected panics
/// the supervisor is *supposed* to absorb do not spray backtraces over the
/// harness output. The hook is restored before returning.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// The typed error a corrupted plan must turn into: synthesize a real plan
/// for the request, break one load offset, and push it through the same
/// [`validate_plan`] gate the production runner uses.
fn invalid_plan_error(req: &SynthRequest) -> SynthError {
    let mut plan = synthesize(&req.widened, req.family);
    match &mut plan {
        Plan::FixedWords { ops, .. } | Plan::VarWords { ops, .. } => {
            if let Some(op) = ops.first_mut() {
                op.offset = u32::MAX / 2;
            }
        }
        Plan::FixedBlocks { offsets, .. } | Plan::VarBlocks { offsets, .. } => {
            if let Some(o) = offsets.first_mut() {
                *o = u32::MAX / 2;
            }
        }
        Plan::StlFallback => {}
    }
    match validate_plan(&plan) {
        Err(e) => e,
        // A fallback plan has no load to break; reject it by hand so the
        // fault still yields a typed failure.
        Ok(()) => SynthError::PlanPatternMismatch {
            detail: "injected invalid plan".to_owned(),
        },
    }
}

/// Builds a runner that executes the per-tag fault script, one entry per
/// attempt; attempts past the end of a script (and tags without one) run
/// real synthesis. `release` lets the harness end a [`Fault::Hang`] after
/// its assertions — the hang is cooperative, so no thread leaks past the
/// check.
fn scripted_runner(scripts: HashMap<u64, Vec<Fault>>, release: Arc<AtomicBool>) -> SynthRunner {
    let attempts: Mutex<HashMap<u64, usize>> = Mutex::new(HashMap::new());
    Arc::new(move |req, token| {
        let attempt = {
            let mut seen = attempts
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let slot = seen.entry(req.tag).or_insert(0);
            let current = *slot;
            *slot += 1;
            current
        };
        let fault = scripts
            .get(&req.tag)
            .and_then(|script| script.get(attempt).copied())
            .unwrap_or(Fault::Success);
        match fault {
            Fault::Hang => {
                while !token.is_cancelled() && !release.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(SynthError::Cancelled)
            }
            Fault::Panic => panic!("injected synthesis panic (tag {})", req.tag),
            Fault::Error => Err(SynthError::PlanMaskConstBits),
            Fault::InvalidPlan => Err(invalid_plan_error(req)),
            Fault::Success => {
                let plan =
                    sepe_core::synth::synthesize_with_cancel(&req.widened, req.family, token)?;
                validate_plan(&plan)?;
                Ok(SynthesizedHash::new(plan, req.family, req.isa).with_seed(req.seed))
            }
        }
    })
}

/// Key partition owned by thread `t` (the [`crate::concurrent`] idiom).
fn partition(pool: &[Vec<u8>], t: usize, threads: usize) -> Vec<Vec<u8>> {
    pool.iter()
        .enumerate()
        .filter(|(i, _)| i % threads == t)
        .map(|(_, k)| k.clone())
        .collect()
}

/// How long the hanging synthesis attempt is allowed to run: long past the
/// whole chaos run, so the attempt is still in flight when the workers
/// finish — which is the point of the check.
const HANG_DEADLINE_MS: u64 = 120_000;

/// Upper bound asserted on any single mutating op. Generous against
/// scheduler noise, yet 60× under [`HANG_DEADLINE_MS`]: an op that waited
/// on the hung synthesis (or on any synthesis attempt at all) would blow
/// through it immediately.
const STALL_BOUND_NS: u64 = 2_000_000_000;

/// Runs worker threads over one shared [`ShardedMap`] and a
/// `Mutex<HashMap>` twin while the resynthesis supervisor — fed by a
/// scripted fault runner when [`SupervisedRun::faults`] is set — recovers
/// the degraded lower-half shards in the background.
///
/// With faults armed, the lower four shards get one misbehaviour each:
/// shard 0 panics once then succeeds, shard 1 fails until its breaker
/// opens (and must settle permanently on the guarded fallback), shard 2
/// returns an invalid plan once then succeeds, and shard 3 hangs for the
/// entire run. The run asserts: every worker op completes while the hang
/// is still in flight; the worst mutating-op stall stays bounded; the
/// breaker opens after *exactly* the configured failure count; recovered
/// shards re-arm to [`GuardMode::Guarded`]; untouched upper-half shards
/// never degrade; and the final contents equal the twin exactly.
///
/// # Errors
///
/// Returns the first violated assertion as a human-readable message.
pub fn check_supervised_chaos<G>(
    pattern: &KeyPattern,
    family: Family,
    fallback: G,
    pool: &[Vec<u8>],
    run: SupervisedRun,
) -> Result<SupervisorStats, String>
where
    G: ByteHash + Clone + Send + Sync,
{
    with_quiet_panics(|| check_supervised_chaos_inner(pattern, family, fallback, pool, run))
}

fn check_supervised_chaos_inner<G>(
    pattern: &KeyPattern,
    family: Family,
    fallback: G,
    pool: &[Vec<u8>],
    run: SupervisedRun,
) -> Result<SupervisorStats, String>
where
    G: ByteHash + Clone + Send + Sync,
{
    let SupervisedRun {
        threads,
        ops_per_thread,
        seed,
        faults,
    } = run;
    let threads = threads.max(1);
    let hasher: GuardedHash<SynthesizedHash, G> =
        GuardedHash::from_pattern(pattern, family, fallback);
    let map: ShardedMap<Vec<u8>, u64, SynthesizedHash, G> = ShardedMap::with_hasher(hasher, 8);
    let twin: Mutex<HashMap<Vec<u8>, u64>> = Mutex::new(HashMap::new());
    let half = map.shard_count() / 2;

    // Seed the clean pool, then plant off-format keys into each lower-half
    // shard so its reservoir samples real drift, and degrade those shards.
    // The upper half never sees an off-format key: any degradation there
    // is a blast-radius leak.
    for (i, key) in pool.iter().enumerate() {
        map.insert(key.clone(), i as u64);
        twin.lock()
            .map_err(|_| "twin mutex poisoned".to_owned())?
            .insert(key.clone(), i as u64);
    }
    for shard in 0..half {
        let mut planted = 0usize;
        let mut j = 0u64;
        while planted < 8 {
            if j >= 100_000 {
                return Err(format!("could not route off-format keys to shard {shard}"));
            }
            let mut k = pool[(j as usize) % pool.len()].clone();
            k.push(b'~');
            k.extend_from_slice(j.to_string().as_bytes());
            if map.shard_of(&k) == shard {
                map.insert(k.clone(), j);
                twin.lock()
                    .map_err(|_| "twin mutex poisoned".to_owned())?
                    .insert(k, j);
                planted += 1;
            }
            j += 1;
        }
        map.degrade_shard(shard);
    }

    // The fault script: one misbehaviour per lower-half shard.
    let breaker_failures = 3u32;
    let (panic_tag, breaker_tag, invalid_tag, hang_tag) = (0u64, 1u64, 2u64, 3u64);
    let release = Arc::new(AtomicBool::new(false));
    let mut scripts: HashMap<u64, Vec<Fault>> = HashMap::new();
    if faults {
        scripts.insert(panic_tag, vec![Fault::Panic, Fault::Success]);
        scripts.insert(breaker_tag, vec![Fault::Error; breaker_failures as usize]);
        scripts.insert(invalid_tag, vec![Fault::InvalidPlan, Fault::Success]);
        scripts.insert(hang_tag, vec![Fault::Hang]);
    }
    let config = SupervisorConfig {
        deadline_ms: HANG_DEADLINE_MS,
        backoff: sepe_core::supervisor::BackoffPolicy {
            base_ms: 1,
            cap_ms: 8,
        },
        breaker_failures,
        // Permanent: once the breaker opens, the shard settles on the
        // guarded fallback for good.
        breaker_cooldown_ms: None,
        seed,
    };
    let mut supervisor = ResynthSupervisor::with_runner(
        config,
        Arc::new(SystemClock::new()),
        scripted_runner(scripts, release.clone()),
        ExecMode::Thread,
    );

    let finished = AtomicUsize::new(0);
    let worker = |t: usize| -> Result<(usize, u64), String> {
        let mine = partition(pool, t, threads);
        let out = (|| -> Result<(usize, u64), String> {
            if mine.is_empty() {
                return Ok((0, 0));
            }
            let mut rng = SplitMix64::new(seed ^ (t as u64) << 16);
            let mut ops = 0usize;
            let mut max_mutating_ns = 0u64;
            for _ in 0..ops_per_thread {
                let r = rng.next_u64();
                let key = &mine[((r >> 8) % mine.len() as u64) as usize];
                match r % 10 {
                    0..=4 => {
                        let got = map.get(key.as_slice());
                        let expected = twin
                            .lock()
                            .map_err(|_| "twin mutex poisoned".to_owned())?
                            .get(key)
                            .copied();
                        if got != expected {
                            return Err(format!(
                                "get disagreed on {:?}: {got:?} vs {expected:?}",
                                String::from_utf8_lossy(key)
                            ));
                        }
                    }
                    5..=7 => {
                        let t0 = Instant::now();
                        let prev = map.insert(key.clone(), r);
                        max_mutating_ns = max_mutating_ns.max(t0.elapsed().as_nanos() as u64);
                        let expected = twin
                            .lock()
                            .map_err(|_| "twin mutex poisoned".to_owned())?
                            .insert(key.clone(), r);
                        if prev != expected {
                            return Err(format!(
                                "insert disagreed on {:?}: {prev:?} vs {expected:?}",
                                String::from_utf8_lossy(key)
                            ));
                        }
                    }
                    _ => {
                        let t0 = Instant::now();
                        let removed = map.remove(key.as_slice());
                        max_mutating_ns = max_mutating_ns.max(t0.elapsed().as_nanos() as u64);
                        let expected = twin
                            .lock()
                            .map_err(|_| "twin mutex poisoned".to_owned())?
                            .remove(key);
                        if removed != expected {
                            return Err(format!(
                                "remove disagreed on {:?}: {removed:?} vs {expected:?}",
                                String::from_utf8_lossy(key)
                            ));
                        }
                    }
                }
                ops += 1;
            }
            Ok((ops, max_mutating_ns))
        })();
        finished.fetch_add(1, Ordering::Relaxed);
        out
    };

    let mut stats = SupervisorStats {
        threads,
        degradations: half,
        ..SupervisorStats::default()
    };
    let workers_done_with_hang_in_flight = AtomicBool::new(false);
    let results: Vec<Result<(usize, u64), String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads).map(|t| s.spawn(move || worker(t))).collect();
        // The driver: poll degraded shards into the supervisor, pump it,
        // and apply whatever completed — all while the workers hammer the
        // map. This loop holds no shard lock across a pump, so a hung or
        // slow synthesis can only ever delay *itself*.
        let mut settle_spins = 0u32;
        loop {
            let workers_done = finished.load(Ordering::Relaxed) >= threads;
            for shard in 0..half {
                if map.shard_mode(shard) == GuardMode::Degraded
                    && !supervisor.breaker_open(shard as u64)
                {
                    if let Some(req) = map.resynth_request(shard) {
                        supervisor.enqueue(req);
                    }
                }
            }
            supervisor.pump();
            for ready in supervisor.take_ready() {
                if map.apply_ready(&ready) {
                    stats.applied += 1;
                }
            }
            if workers_done {
                if !workers_done_with_hang_in_flight.load(Ordering::Relaxed) {
                    // Sampled exactly when the last worker finished: the
                    // hanging attempt must still be running.
                    workers_done_with_hang_in_flight
                        .store(supervisor.active_jobs() > 0, Ordering::Relaxed);
                }
                let settled = if faults {
                    supervisor.breaker_open(breaker_tag)
                        && map.shard_mode(panic_tag as usize) == GuardMode::Guarded
                        && map.shard_mode(invalid_tag as usize) == GuardMode::Guarded
                } else {
                    (0..half).all(|i| map.shard_mode(i) == GuardMode::Guarded)
                };
                settle_spins += 1;
                if settled || settle_spins > 8_000 {
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        release.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("worker thread panicked".to_owned()))
            })
            .collect()
    });
    for r in results {
        let (ops, max_mutating_ns) = r?;
        stats.ops += ops;
        stats.max_mutating_ns = stats.max_mutating_ns.max(max_mutating_ns);
    }

    // Liveness: every planned op ran, and none of them stalled anywhere
    // near a synthesis deadline.
    let planned: usize = (0..threads)
        .map(|t| {
            if partition(pool, t, threads).is_empty() {
                0
            } else {
                ops_per_thread
            }
        })
        .sum();
    if stats.ops != planned {
        return Err(format!(
            "workers completed {} of {planned} planned ops",
            stats.ops
        ));
    }
    if stats.max_mutating_ns >= STALL_BOUND_NS {
        return Err(format!(
            "worst mutating op stalled {} ms — an op waited on synthesis",
            stats.max_mutating_ns / 1_000_000
        ));
    }

    let transcript = supervisor.transcript();
    stats.events = transcript.len();
    stats.faults = transcript
        .iter()
        .filter(|e| {
            matches!(
                e.transition,
                Transition::Failed(..) | Transition::Panicked(_) | Transition::TimedOut(_)
            )
        })
        .count();

    if faults {
        if !workers_done_with_hang_in_flight.load(Ordering::Relaxed) {
            return Err(
                "the hanging synthesis was not in flight when the workers finished — \
                 the liveness check proved nothing"
                    .to_owned(),
            );
        }
        // The breaker opened after exactly `breaker_failures` consecutive
        // failures, and its shard settled permanently on the fallback.
        if !supervisor.breaker_open(breaker_tag) {
            return Err("the failing tag's breaker never opened".to_owned());
        }
        let failures_before_open = transcript
            .iter()
            .filter(|e| e.tag == breaker_tag)
            .take_while(|e| !matches!(e.transition, Transition::BreakerOpened(_)))
            .filter(|e| matches!(e.transition, Transition::Failed(..)))
            .count();
        if failures_before_open != breaker_failures as usize {
            return Err(format!(
                "breaker opened after {failures_before_open} failures, configured for \
                 {breaker_failures}"
            ));
        }
        if map.shard_mode(breaker_tag as usize) != GuardMode::Degraded {
            return Err("the breaker-open shard left the guarded fallback".to_owned());
        }
        // The panic and the invalid plan were absorbed as typed failures,
        // then their shards recovered.
        if !transcript
            .iter()
            .any(|e| e.tag == panic_tag && matches!(e.transition, Transition::Panicked(_)))
        {
            return Err("the injected panic left no Panicked transition".to_owned());
        }
        if !transcript
            .iter()
            .any(|e| e.tag == invalid_tag && matches!(e.transition, Transition::Failed(..)))
        {
            return Err("the invalid plan left no typed failure".to_owned());
        }
        for tag in [panic_tag, invalid_tag] {
            if map.shard_mode(tag as usize) != GuardMode::Guarded {
                return Err(format!("shard {tag} did not recover after its fault"));
            }
        }
        if stats.applied != 2 {
            return Err(format!(
                "expected exactly the panic and invalid-plan shards to apply plans, got {}",
                stats.applied
            ));
        }
        // The hang never completed: no terminal transition for its tag.
        if transcript.iter().any(|e| {
            e.tag == hang_tag
                && matches!(
                    e.transition,
                    Transition::Succeeded(_) | Transition::TimedOut(_)
                )
        }) {
            return Err("the hanging synthesis terminated during the run".to_owned());
        }
    } else {
        for shard in 0..half {
            if map.shard_mode(shard) != GuardMode::Guarded {
                return Err(format!("shard {shard} was not resynthesized in time"));
            }
        }
        if stats.applied != half {
            return Err(format!(
                "expected {half} background plans applied, got {}",
                stats.applied
            ));
        }
    }

    // Blast radius: the upper half saw no off-format key and must still be
    // fully armed.
    for shard in half..map.shard_count() {
        if map.shard_mode(shard) != GuardMode::Guarded {
            return Err(format!(
                "shard {shard} degraded without ever seeing off-format traffic"
            ));
        }
    }

    // Quiescent checkpoint: identical contents, entry for entry.
    map.finish_migrations();
    let twin = twin
        .into_inner()
        .map_err(|_| "twin mutex poisoned at checkpoint".to_owned())?;
    if map.len() != twin.len() {
        return Err(format!(
            "length diverged at checkpoint: sharded {} vs twin {}",
            map.len(),
            twin.len()
        ));
    }
    let mut mismatch = None;
    map.for_each(|k, v| {
        if mismatch.is_none() && twin.get(k) != Some(v) {
            mismatch = Some(format!(
                "content diverged on {:?}: sharded {v} vs twin {:?}",
                String::from_utf8_lossy(k),
                twin.get(k)
            ));
        }
    });
    if let Some(m) = mismatch {
        return Err(m);
    }

    // Metrics cross-check: the per-kind transition counters exported via
    // the registry must agree, kind for kind, with the transcript all of
    // the structural checks above were made against — and the ring
    // accounting must add up. A no-op in `obs`-off builds.
    if sepe_obs::enabled() {
        let registry = sepe_obs::Registry::new();
        supervisor
            .export_metrics(&registry)
            .map_err(|e| format!("metrics export failed: {e}"))?;
        let snap = registry.snapshot();
        for kind in sepe_obs::TransitionKind::ALL {
            let derived = transcript
                .iter()
                .filter(|e| e.transition.kind() == kind)
                .count() as u64;
            let id = sepe_obs::metric_id("supervisor_transitions", &[("kind", kind.name())])
                .map_err(|e| format!("metric id: {e}"))?;
            if snap.counter(&id) != Some(derived) {
                return Err(format!(
                    "metrics drift: {id} reads {:?}, transcript holds {derived}",
                    snap.counter(&id)
                ));
            }
        }
        let pushed = transcript.len() as u64 + supervisor.transcript_dropped();
        if snap.counter("supervisor_transcript_events") != Some(pushed) {
            return Err(format!(
                "metrics drift: supervisor_transcript_events reads {:?}, \
                 ring accounting says {pushed}",
                snap.counter("supervisor_transcript_events")
            ));
        }
    }
    stats.checkpoints = 1;
    Ok(stats)
}

/// Replays a seeded fault script through an [`ExecMode::Inline`]
/// supervisor twice, on two independently constructed instances sharing
/// only the seed and the mock clock schedule, and demands event-for-event
/// transcript equality — the determinism claim behind "every transition
/// replays from seed + clock". Along the way it audits the transcript:
/// every `BreakerOpened(n)` must carry exactly the configured failure
/// count, preceded by that many consecutive failures for its tag.
///
/// Returns the transcript length.
///
/// # Errors
///
/// Returns the first divergence or discipline violation as a message.
pub fn check_replay_transcripts(seed: u64) -> Result<usize, String> {
    with_quiet_panics(|| {
        let first = replay_once(seed)?;
        let second = replay_once(seed)?;
        if first != second {
            let at = first
                .iter()
                .zip(second.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| first.len().min(second.len()));
            return Err(format!(
                "transcripts diverged at event {at}: {:?} vs {:?} \
                 (lengths {} and {})",
                first.get(at),
                second.get(at),
                first.len(),
                second.len()
            ));
        }
        Ok(first.len())
    })
}

const REPLAY_TAGS: u64 = 6;
const REPLAY_BREAKER_FAILURES: u32 = 2;

fn replay_once(seed: u64) -> Result<Vec<sepe_core::supervisor::Event>, String> {
    let widened = Regex::compile(r"[0-9]{8}").map_err(|e| e.to_string())?;
    let config = SupervisorConfig {
        deadline_ms: 50,
        backoff: sepe_core::supervisor::BackoffPolicy {
            base_ms: 2,
            cap_ms: 16,
        },
        breaker_failures: REPLAY_BREAKER_FAILURES,
        breaker_cooldown_ms: Some(100),
        seed,
    };
    // The fault script is a pure function of (seed, tag): 0–3 leading
    // faults drawn from {Error, Panic, InvalidPlan}, then success. Tags
    // with two or more faults trip the breaker, cool down, and win on the
    // half-open probe.
    let mut scripts: HashMap<u64, Vec<Fault>> = HashMap::new();
    let mut rng = SplitMix64::new(seed ^ 0x5C71);
    for tag in 0..REPLAY_TAGS {
        let n = (rng.next_u64() % 4) as usize;
        let script = (0..n)
            .map(|_| match rng.next_u64() % 3 {
                0 => Fault::Error,
                1 => Fault::Panic,
                _ => Fault::InvalidPlan,
            })
            .collect();
        scripts.insert(tag, script);
    }
    let clock = Arc::new(MockClock::new());
    let mut supervisor = ResynthSupervisor::with_runner(
        config,
        clock.clone(),
        scripted_runner(scripts, Arc::new(AtomicBool::new(false))),
        ExecMode::Inline,
    );
    let request = |tag: u64| SynthRequest {
        tag,
        widened: widened.clone(),
        family: Family::ALL[(tag % Family::ALL.len() as u64) as usize],
        isa: Isa::Native,
        seed: tag,
        snapshot_generation: 0,
    };
    for tag in 0..REPLAY_TAGS {
        supervisor.enqueue(request(tag));
    }
    for step in 0u64..600 {
        supervisor.pump();
        // Periodic re-offers exercise coalescing, rejection while open,
        // and the half-open probe after the cooldown — deterministically,
        // since the clock only moves when we move it.
        if step % 50 == 49 {
            for tag in 0..REPLAY_TAGS {
                supervisor.enqueue(request(tag));
            }
        }
        clock.advance(1);
    }
    let transcript = supervisor.transcript().to_vec();

    // Breaker discipline: exactly the configured number of consecutive
    // failures before every open.
    for (i, event) in transcript.iter().enumerate() {
        if let Transition::BreakerOpened(n) = event.transition {
            if n != REPLAY_BREAKER_FAILURES {
                return Err(format!(
                    "BreakerOpened carried {n}, configured for {REPLAY_BREAKER_FAILURES}"
                ));
            }
            // Walk back to the last success or breaker-state boundary for
            // this tag, counting failures in between. A breaker opening
            // from the closed state needs exactly the configured count; a
            // failed half-open probe legitimately re-opens after one.
            let mut consecutive = 0usize;
            let mut after_half_open = false;
            for prior in transcript[..i].iter().rev().filter(|e| e.tag == event.tag) {
                match prior.transition {
                    Transition::Failed(..) | Transition::Panicked(_) | Transition::TimedOut(_) => {
                        consecutive += 1
                    }
                    Transition::BreakerHalfOpen => {
                        after_half_open = true;
                        break;
                    }
                    Transition::Succeeded(_) | Transition::BreakerClosed => break,
                    _ => {}
                }
            }
            let expected = if after_half_open {
                1
            } else {
                REPLAY_BREAKER_FAILURES as usize
            };
            if consecutive != expected {
                return Err(format!(
                    "tag {} breaker opened after {consecutive} consecutive failures, \
                     expected {expected}",
                    event.tag
                ));
            }
        }
    }
    Ok(transcript)
}

/// Smoke-checks that [`ResynthPolicy`] really parameterizes a supervisor:
/// a policy with a tiny failure budget must open the breaker at that
/// budget, not at the default.
///
/// # Errors
///
/// Returns a message when the policy-configured breaker misbehaves.
pub fn check_policy_breaker(seed: u64) -> Result<(), String> {
    with_quiet_panics(|| {
        let widened = Regex::compile(r"[0-9]{8}").map_err(|e| e.to_string())?;
        let policy = ResynthPolicy {
            deadline_ms: 50,
            backoff_base_ms: 1,
            backoff_cap_ms: 4,
            breaker_failures: 1,
            breaker_cooldown_ms: None,
            seed,
        };
        let clock = Arc::new(MockClock::new());
        let mut scripts = HashMap::new();
        scripts.insert(0u64, vec![Fault::Error; 8]);
        let mut supervisor = ResynthSupervisor::with_runner(
            policy.config(),
            clock.clone(),
            scripted_runner(scripts, Arc::new(AtomicBool::new(false))),
            ExecMode::Inline,
        );
        supervisor.enqueue(SynthRequest {
            tag: 0,
            widened,
            family: Family::OffXor,
            isa: Isa::Native,
            seed,
            snapshot_generation: 0,
        });
        for _ in 0..20 {
            supervisor.pump();
            clock.advance(1);
        }
        if !supervisor.breaker_open(0) {
            return Err("a breaker_failures=1 policy did not open after one failure".to_owned());
        }
        let failures = supervisor
            .transcript()
            .iter()
            .filter(|e| matches!(e.transition, Transition::Failed(..)))
            .count();
        if failures != 1 {
            return Err(format!(
                "breaker_failures=1 policy allowed {failures} attempts"
            ));
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_baselines::CityHash;

    fn ssn_pool(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i % 10_000).into_bytes())
            .collect()
    }

    #[test]
    fn fault_injected_supervised_run_settles() {
        let pattern = Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("pattern");
        let pool = ssn_pool(240);
        let stats = check_supervised_chaos(
            &pattern,
            Family::Pext,
            CityHash::new(),
            &pool,
            SupervisedRun {
                threads: 3,
                ops_per_thread: 1_500,
                seed: 0x5E9E,
                faults: true,
            },
        )
        .expect("chaos run settles");
        assert_eq!(stats.ops, 4_500);
        assert_eq!(stats.applied, 2);
        assert!(stats.faults >= 5, "{stats:?}");
        assert_eq!(stats.checkpoints, 1);
    }

    #[test]
    fn clean_supervised_run_rearms_every_shard() {
        let pattern = Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("pattern");
        let pool = ssn_pool(200);
        let stats = check_supervised_chaos(
            &pattern,
            Family::OffXor,
            CityHash::new(),
            &pool,
            SupervisedRun {
                threads: 2,
                ops_per_thread: 1_000,
                seed: 0xC4A05,
                faults: false,
            },
        )
        .expect("clean run re-arms");
        assert_eq!(stats.applied, 4);
        assert_eq!(stats.faults, 0);
    }

    #[test]
    fn replay_transcripts_are_deterministic() {
        for seed in [0x5E9E, 0xD1F7, 0xC4A05u64] {
            let events = check_replay_transcripts(seed).expect("replay agrees");
            assert!(events > REPLAY_TAGS as usize, "seed {seed:#x}: {events}");
        }
    }

    #[test]
    fn policy_breaker_budget_is_respected() {
        check_policy_breaker(0x5E9E).expect("policy breaker");
    }
}
