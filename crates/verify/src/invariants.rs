//! Paper-derived structural invariants on synthesized plans.
//!
//! These checks do not compare two implementations — they compare a plan
//! against properties the paper promises:
//!
//! * **coverage** (Sections 3.2.1–3.2.2): Naive loads every byte, OffXor and
//!   Pext load every byte with a variable bit, the AES family covers every
//!   variable byte with a block; variable-length plans may defer bytes to
//!   the tail loop instead;
//! * **extraction discipline** (Section 3.2.3, Figure 12): Pext masks select
//!   exactly the variable bits, each exactly once across loads;
//! * **bijectivity** (Section 4.2: "Pext always generates a bijection for
//!   key types that have equal or less than 64 relevant bits") — checked
//!   *constructively* by [`invert_pext`]: the hash code is inverted back
//!   into the key through the reference `pdep` loop;
//! * **lattice soundness**: the pattern inferred from a key set matches
//!   every key that produced it.

use crate::interp;
use sepe_core::bits::pdep_reference;
use sepe_core::infer::infer_pattern;
use sepe_core::pattern::KeyPattern;
use sepe_core::synth::{Family, Plan, WordOp, OVERLAP_ROTATION};

/// Checks the structural invariants of `plan` against the pattern it was
/// synthesized from, returning one message per violation (empty = sound).
#[must_use]
pub fn plan_violations(pattern: &KeyPattern, family: Family, plan: &Plan) -> Vec<String> {
    let mut out = Vec::new();
    match plan {
        Plan::StlFallback => {
            if pattern.max_len() >= 8 {
                out.push(format!(
                    "fallback plan for a {}-byte format (synthesis refused a synthesizable format)",
                    pattern.max_len()
                ));
            }
        }
        Plan::FixedWords { len, ops } => {
            if *len != pattern.max_len() {
                out.push(format!(
                    "plan len {len} != pattern len {}",
                    pattern.max_len()
                ));
            }
            check_word_ops(pattern, family, ops, *len, None, &mut out);
        }
        Plan::VarWords {
            min_len,
            ops,
            tail_start,
        } => {
            if *min_len != pattern.min_len() {
                out.push(format!(
                    "plan min_len {min_len} != pattern min_len {}",
                    pattern.min_len()
                ));
            }
            check_word_ops(pattern, family, ops, *min_len, Some(*tail_start), &mut out);
        }
        Plan::FixedBlocks { len, offsets } => {
            check_block_offsets(pattern, offsets, *len, None, &mut out);
        }
        Plan::VarBlocks {
            min_len,
            offsets,
            tail_start,
        } => {
            check_block_offsets(pattern, offsets, *min_len, Some(*tail_start), &mut out);
        }
    }
    out
}

fn check_word_ops(
    pattern: &KeyPattern,
    family: Family,
    ops: &[WordOp],
    region_len: usize,
    tail_start: Option<usize>,
    out: &mut Vec<String>,
) {
    // Coverage: which bytes must some load (or the tail loop) read?
    for pos in 0..region_len {
        let needed = match family {
            Family::Naive => true,
            _ => !pattern.bytes()[pos].is_const(),
        };
        if !needed {
            continue;
        }
        let in_ops = ops.iter().any(|op| {
            let o = op.offset as usize;
            pos >= o && pos < o + 8
        });
        let in_tail = tail_start.is_some_and(|t| pos >= t);
        if !in_ops && !in_tail {
            out.push(format!("{family}: byte {pos} is variable but never loaded"));
        }
    }

    // Loads must advance; at most the final (clamped) load may re-read
    // earlier bytes.
    let mut covered_until = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let o = op.offset as usize;
        let overlaps = o < covered_until;
        if overlaps && i != ops.len() - 1 {
            out.push(format!(
                "{family}: non-final load {i} at {o} overlaps earlier coverage"
            ));
        }
        match family {
            Family::Pext => check_pext_op(pattern, op, covered_until, region_len, out),
            _ => {
                if op.mask != u64::MAX {
                    out.push(format!("{family}: load {i} has a non-identity mask"));
                }
                let expected = if overlaps { OVERLAP_ROTATION } else { 0 };
                if op.shift != expected {
                    out.push(format!(
                        "{family}: load {i} rotation {} (expected {expected})",
                        op.shift
                    ));
                }
            }
        }
        covered_until = covered_until.max(o + 8);
    }

    if family == Family::Pext {
        check_pext_extraction_once(pattern, ops, region_len, out);
        // Section 4.2: at most 64 relevant bits => the plan guarantees a
        // bijection (fixed-length formats only).
        if tail_start.is_none() {
            let var_bits: u32 = (0..region_len)
                .map(|i| pattern.bytes()[i].variable_mask().count_ones())
                .sum();
            if var_bits <= 64 {
                let plan = Plan::FixedWords {
                    len: region_len,
                    ops: ops.to_vec(),
                };
                if plan.bijection_bits() != Some(var_bits) {
                    out.push(format!(
                        "Pext: {var_bits} variable bits fit in 64 but the plan is not a bijection"
                    ));
                }
            }
        }
    }
}

/// One Pext load: the mask must select exactly the variable bits of the
/// bytes this load is responsible for (those not covered earlier), and
/// nothing outside the region.
fn check_pext_op(
    pattern: &KeyPattern,
    op: &WordOp,
    covered_until: usize,
    region_len: usize,
    out: &mut Vec<String>,
) {
    for i in 0..8 {
        let pos = op.offset as usize + i;
        let lane = ((op.mask >> (8 * i)) & 0xFF) as u8;
        let expected = if pos >= covered_until && pos < region_len {
            pattern.bytes()[pos].variable_mask()
        } else {
            0
        };
        if lane != expected {
            out.push(format!(
                "Pext: load at {} lane {i} mask {lane:#04x} != variable mask {expected:#04x}",
                op.offset
            ));
        }
    }
}

/// Across all loads, every variable bit of the region is extracted exactly
/// once (Figure 12's `mk1` zeroes the overlap with `mk0`).
fn check_pext_extraction_once(
    pattern: &KeyPattern,
    ops: &[WordOp],
    region_len: usize,
    out: &mut Vec<String>,
) {
    let mut seen = vec![0u8; region_len];
    for op in ops {
        for i in 0..8 {
            let pos = op.offset as usize + i;
            let lane = ((op.mask >> (8 * i)) & 0xFF) as u8;
            if pos >= region_len {
                continue;
            }
            if seen[pos] & lane != 0 {
                out.push(format!(
                    "Pext: byte {pos} bits {:#04x} extracted twice",
                    seen[pos] & lane
                ));
            }
            seen[pos] |= lane;
        }
    }
    for (pos, &got) in seen.iter().enumerate().take(region_len) {
        let var = pattern.bytes()[pos].variable_mask();
        if got != var {
            out.push(format!(
                "Pext: byte {pos} extracted bits {got:#04x} != variable bits {var:#04x}"
            ));
        }
    }
}

fn check_block_offsets(
    pattern: &KeyPattern,
    offsets: &[u32],
    region_len: usize,
    tail_start: Option<usize>,
    out: &mut Vec<String>,
) {
    if offsets.is_empty() && tail_start.is_none() && region_len >= 16 {
        out.push(format!("Aes: {region_len}-byte region with no block loads"));
        return;
    }
    for pos in 0..region_len {
        if pattern.bytes()[pos].is_const() {
            continue;
        }
        let in_blocks = offsets.iter().any(|&o| {
            let o = o as usize;
            pos >= o && pos < o + 16
        });
        // Replicated short keys (no offsets, fixed length) cover everything.
        let replicated = offsets.is_empty() && tail_start.is_none();
        let in_tail = tail_start.is_some_and(|t| pos >= t);
        if !in_blocks && !in_tail && !replicated {
            out.push(format!("Aes: variable byte {pos} is in no block"));
        }
    }
    if offsets.windows(2).any(|w| w[0] >= w[1]) {
        out.push("Aes: block offsets are not strictly increasing".to_owned());
    }
}

/// Inverts a fixed-length Pext hash code back into its key.
///
/// Only valid when [`Plan::bijection_bits`] is `Some` (disjoint extraction
/// fields): each field is unpacked with the reference `pdep` loop and
/// scattered back over the pattern's constant bits. `code` must be the
/// seedless hash (seed 0). Returns `None` when the plan offers no bijection.
#[must_use]
pub fn invert_pext(plan: &Plan, pattern: &KeyPattern, code: u64) -> Option<Vec<u8>> {
    let Plan::FixedWords { len, ops } = plan else {
        return None;
    };
    plan.bijection_bits()?;
    let mut key: Vec<u8> = (0..*len).map(|i| pattern.bytes()[i].const_bits()).collect();
    for op in ops {
        let bits = op.mask.count_ones();
        if bits == 0 {
            continue;
        }
        let ones = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let w = pdep_reference((code >> op.shift) & ones, op.mask);
        for i in 0..8 {
            let pos = op.offset as usize + i;
            if pos < *len {
                key[pos] |= ((w >> (8 * i)) & 0xFF) as u8;
            }
        }
    }
    Some(key)
}

/// Round-trips every key through hash-then-invert; the recovered bytes must
/// equal the original (the constructive form of the Section 4.2 bijection).
///
/// # Errors
///
/// Returns the first key whose inversion does not reproduce it.
pub fn check_pext_roundtrip(
    pattern: &KeyPattern,
    plan: &Plan,
    keys: &[Vec<u8>],
) -> Result<(), String> {
    for key in keys {
        let code = interp::interpret(plan, Family::Pext, 0, key);
        let recovered = invert_pext(plan, pattern, code)
            .ok_or_else(|| "plan offers no bijection to invert".to_owned())?;
        if &recovered != key {
            return Err(format!(
                "inversion of {code:#018x} gave {recovered:?}, expected {key:?}"
            ));
        }
    }
    Ok(())
}

/// Whether the clamped-load rotation argument guarantees Naive/OffXor
/// injectivity on this plan: at most two loads (the second carrying the
/// rotation), over a format whose variable bytes vary only in their low
/// nibble, with at most 64 variable bits in total. Under those conditions
/// the unrotated load's differences live in low nibbles and the rotated
/// load's in high nibbles, so no key difference can cancel.
#[must_use]
pub fn xor_injectivity_applies(pattern: &KeyPattern, plan: &Plan) -> bool {
    let Plan::FixedWords { len, ops } = plan else {
        return false;
    };
    let nibble_confined = (0..*len).all(|i| pattern.bytes()[i].variable_mask() & 0xF0 == 0);
    let var_bits: u32 = (0..*len)
        .map(|i| pattern.bytes()[i].variable_mask().count_ones())
        .sum();
    let load_shape_ok = match ops.as_slice() {
        [] | [_] => true,
        [a, b] => a.shift == 0 && b.shift == OVERLAP_ROTATION,
        _ => false,
    };
    nibble_confined && var_bits <= 64 && load_shape_ok
}

/// Distinct keys must produce distinct (seedless) interpreter hashes.
///
/// # Errors
///
/// Returns the first colliding pair found.
pub fn check_sampled_injectivity(
    plan: &Plan,
    family: Family,
    keys: &[Vec<u8>],
) -> Result<(), String> {
    let mut seen: std::collections::BTreeMap<u64, &Vec<u8>> = std::collections::BTreeMap::new();
    for key in keys {
        let code = interp::interpret(plan, family, 0, key);
        match seen.get(&code) {
            Some(&other) if other != key => {
                return Err(format!(
                    "{family}: {other:?} and {key:?} both hash to {code:#018x}"
                ));
            }
            _ => {
                seen.insert(code, key);
            }
        }
    }
    Ok(())
}

/// The lattice join is sound: the pattern inferred from a key set matches
/// every key that fed it, and its length bounds are tight enough to admit
/// them.
///
/// # Errors
///
/// Returns a description of the first unsound join found.
pub fn check_lattice_soundness(keys: &[Vec<u8>]) -> Result<(), String> {
    let pattern = infer_pattern(keys.iter().map(Vec::as_slice))
        .map_err(|_| "no keys to infer from".to_owned())?;
    for key in keys {
        if key.len() < pattern.min_len() || key.len() > pattern.max_len() {
            return Err(format!(
                "inferred bounds [{}, {}] exclude key of length {}",
                pattern.min_len(),
                pattern.max_len(),
                key.len()
            ));
        }
        if !pattern.matches(key) {
            return Err(format!("inferred pattern rejects its own example {key:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_core::regex::Regex;
    use sepe_core::synth::synthesize;

    fn pattern(re: &str) -> KeyPattern {
        Regex::compile(re).expect("test regex compiles")
    }

    #[test]
    fn evaluated_shapes_satisfy_the_invariants() {
        for re in [
            r"\d{3}-\d{2}-\d{4}",
            r"(([0-9]{3})\.){3}[0-9]{3}",
            r"[0-9]{100}",
            r"[0-9]{16}([a-z]{4})?",
        ] {
            let p = pattern(re);
            for family in Family::ALL {
                let plan = synthesize(&p, family);
                let violations = plan_violations(&p, family, &plan);
                assert!(violations.is_empty(), "{re} {family}: {violations:?}");
            }
        }
    }

    #[test]
    fn ssn_pext_inverts_exactly() {
        let p = pattern(r"\d{3}-\d{2}-\d{4}");
        let plan = synthesize(&p, Family::Pext);
        let keys: Vec<Vec<u8>> = (0..500u32)
            .map(|i| format!("{:03}-{:02}-{:04}", i % 999, i % 97, i).into_bytes())
            .collect();
        check_pext_roundtrip(&p, &plan, &keys).expect("bijective");
    }

    #[test]
    fn a_corrupted_mask_is_caught() {
        let p = pattern(r"\d{3}-\d{2}-\d{4}");
        let Plan::FixedWords { len, mut ops } = synthesize(&p, Family::Pext) else {
            panic!("fixed plan");
        };
        ops[0].mask ^= 1 << 8; // claim a dash bit is variable
        let bad = Plan::FixedWords { len, ops };
        assert!(!plan_violations(&p, Family::Pext, &bad).is_empty());
    }

    #[test]
    fn rotation_argument_applies_to_the_small_formats() {
        for re in [r"\d{3}-\d{2}-\d{4}", r"(([0-9]{3})\.){3}[0-9]{3}"] {
            let p = pattern(re);
            for family in [Family::Naive, Family::OffXor] {
                let plan = synthesize(&p, family);
                assert!(xor_injectivity_applies(&p, &plan), "{re} {family}");
            }
        }
        // Two disjoint loads offer no such guarantee ("16 digits" keys can
        // swap their halves).
        let p = pattern(r"[0-9]{16}");
        let plan = synthesize(&p, Family::Naive);
        assert!(!xor_injectivity_applies(&p, &plan));
    }
}
