//! `sepe-verify` — run the differential-correctness harness from the
//! command line.
//!
//! ```text
//! sepe-verify [--formats N] [--keys N] [--ops N] [--seed S] [--suite NAME]
//! ```
//!
//! Suites: `differential` (tuned hashes vs. the plan interpreter over
//! random and paper formats), `batch` (`hash_batch` vs. the scalar path
//! and the interpreter at widths 1/3/4/7/8, with hardware `pext` forced
//! both on and off), `invariants` (structural plan checks, Pext bijection
//! inversion, lattice soundness), `model` (container operations vs.
//! `std::collections::HashMap`), `faults` (fault-injected guarded
//! containers and the degradation state machine, including batched guard
//! checks), `migration` (interrupted incremental migrations with drift
//! bursts, model-checked against an eagerly drained twin for content *and*
//! counter equivalence, plus typed rejection of corrupted plan bundles),
//! `concurrent` (multi-threaded operations on the lock-striped
//! `ShardedMap` model-checked against a `Mutex<HashMap>` twin over
//! disjoint per-thread key partitions; with `--inject-faults`, drift
//! bursts degrade individual shards while the other threads keep serving
//! reads), `supervisor` (the background resynthesis supervisor:
//! mock-clock transcript replay equality and breaker discipline, plus a
//! supervised chaos run where worker threads hammer a `ShardedMap` while
//! background synthesis recovers degraded shards; with `--inject-faults`,
//! the synthesis runner hangs, panics, errors, and returns invalid plans,
//! and no container op may ever block on it), `adversarial` (the HashDoS
//! chaos harness: crafted collision storms — including a simulated seed
//! leak — drive the escalation ladder on single maps, the batched paths,
//! and a concurrently hammered `ShardedMap`, asserting bounded chains
//! after escalation, `Mutex<HashMap>`-twin agreement throughout, exact
//! escalation/rotation/de-escalation counter transcripts, and that
//! benign churn never escalates), `synthesis` (the search-equivalence
//! suite: parallel candidate search vs. sequential over the seed corpus
//! at 1/2/4/8 threads — or the single count pinned by `--jobs N` — with
//! byte-identical plans and identical deterministic statistics required,
//! plus cancel-mid-search poisoning checks and `PlanCache` hit/fresh
//! equivalence), or `all` (default; faults, migration,
//! concurrent, supervisor, adversarial and synthesis included). `--inject-faults`
//! alone is a shorthand for `--suite faults`; combined with an explicit
//! `--suite` it keeps that suite. Exits non-zero on the first failing
//! suite.

use sepe_baselines::CityHash;
use sepe_core::guard::GuardedHash;
use sepe_core::pattern::KeyPattern;
use sepe_core::regex::Regex;
use sepe_core::synth::{synthesize, Family};
use sepe_core::Isa;
use sepe_keygen::{KeyFormat, SplitMix64};
use sepe_verify::{
    adversarial, batch, concurrent, differential, faults, formats::RandomFormat, invariants,
    migration, model, supervisor, synthesis,
};

struct Options {
    formats: usize,
    keys: usize,
    ops: usize,
    seed: u64,
    suite: String,
    inject_faults: bool,
    jobs: Option<usize>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        formats: 100,
        keys: 40,
        ops: 4_000,
        seed: 0x5E9E,
        suite: "all".to_owned(),
        inject_faults: false,
        jobs: None,
    };
    let mut suite_chosen = false;
    let mut inject_faults = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--formats" => {
                opts.formats = value("--formats")?
                    .parse()
                    .map_err(|e| format!("--formats: {e}"))?
            }
            "--keys" => {
                opts.keys = value("--keys")?
                    .parse()
                    .map_err(|e| format!("--keys: {e}"))?
            }
            "--ops" => opts.ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = parse_u64(&v).map_err(|e| format!("--seed: {e}"))?;
            }
            "--suite" => {
                opts.suite = value("--suite")?;
                suite_chosen = true;
            }
            "--inject-faults" => inject_faults = true,
            "--jobs" => {
                opts.jobs = Some(
                    value("--jobs")?
                        .parse()
                        .map_err(|e| format!("--jobs: {e}"))?,
                )
            }
            "--help" | "-h" => {
                println!(
                    "usage: sepe-verify [--formats N] [--keys N] [--ops N] [--seed S] \
                     [--suite differential|batch|invariants|model|faults|migration|\
                     concurrent|supervisor|adversarial|synthesis|all] [--inject-faults] \
                     [--jobs N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    // `--inject-faults` alone selects the faults suite; next to an explicit
    // `--suite` (e.g. `--suite migration --inject-faults`) it must not
    // clobber the choice — the migration suite injects faults regardless,
    // and the concurrent suite uses the flag to arm its drift bursts.
    if inject_faults && !suite_chosen {
        opts.suite = "faults".to_owned();
    }
    opts.inject_faults = inject_faults;
    Ok(opts)
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|e| e.to_string())
}

fn paper_patterns() -> Vec<(String, KeyPattern)> {
    KeyFormat::EVALUATED
        .iter()
        .map(|f| {
            let pattern = Regex::compile(&f.regex()).expect("evaluated formats compile");
            (f.name().to_owned(), pattern)
        })
        .collect()
}

fn sample_pattern_keys(pattern: &KeyPattern, rng: &mut SplitMix64, n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|_| {
            let len = if pattern.is_fixed_len() || rng.next_u64().is_multiple_of(2) {
                pattern.max_len()
            } else {
                pattern.min_len()
            };
            (0..len)
                .map(|i| {
                    let choices: Vec<u8> = pattern.bytes()[i].possible_bytes().collect();
                    choices[(rng.next_u64() % choices.len() as u64) as usize]
                })
                .collect()
        })
        .collect()
}

fn run_differential(opts: &Options) -> Result<String, String> {
    let mut rng = SplitMix64::new(opts.seed);
    let mut checked = 0usize;
    let mut hashes = 0usize;
    for (name, pattern) in paper_patterns() {
        let keys = sample_pattern_keys(&pattern, &mut rng, opts.keys);
        let mismatches = differential::check_pattern(&pattern, &keys, &differential::DEFAULT_SEEDS);
        if let Some(m) = mismatches.first() {
            return Err(format!("{name}: {m} ({} total)", mismatches.len()));
        }
        checked += 1;
        hashes += keys.len() * Family::ALL.len() * differential::DEFAULT_SEEDS.len() * 2;
    }
    for i in 0..opts.formats {
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        let keys = format.sample_keys(&mut rng, opts.keys);
        let mismatches = differential::check_pattern(&pattern, &keys, &differential::DEFAULT_SEEDS);
        if let Some(m) = mismatches.first() {
            return Err(format!(
                "random format {i} ({format:?}): {m} ({} total)",
                mismatches.len()
            ));
        }
        checked += 1;
        hashes += keys.len() * Family::ALL.len() * differential::DEFAULT_SEEDS.len() * 2;
    }
    Ok(format!(
        "{checked} formats, {hashes} hash evaluations, 0 mismatches"
    ))
}

fn run_batch(opts: &Options) -> Result<String, String> {
    let mut rng = SplitMix64::new(opts.seed ^ 0xBA7C);
    let mut format_set: Vec<(String, KeyPattern, Vec<Vec<u8>>)> = paper_patterns()
        .into_iter()
        .map(|(name, p)| {
            let keys = sample_pattern_keys(&p, &mut rng, opts.keys);
            (name, p, keys)
        })
        .collect();
    // Random formats are cheaper per key than the full differential run,
    // so a quarter of the differential's format budget keeps the suite
    // proportionate while still covering formats nobody hand-picked.
    for i in 0..(opts.formats / 4).max(4) {
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        let keys = format.sample_keys(&mut rng, opts.keys);
        format_set.push((format!("random format {i}"), pattern, keys));
    }

    let mut checked = 0usize;
    let mut hashes = 0usize;
    for (name, pattern, keys) in &format_set {
        let mismatches = batch::check_pattern_batched(pattern, keys, &differential::DEFAULT_SEEDS);
        if let Some(m) = mismatches.first() {
            return Err(format!("{name}: {m} ({} total)", mismatches.len()));
        }
        let soft = batch::with_forced_software_pext(|| {
            batch::check_pattern_batched(pattern, keys, &differential::DEFAULT_SEEDS)
        });
        if let Some(m) = soft.first() {
            return Err(format!(
                "{name} (software pext forced): {m} ({} total)",
                soft.len()
            ));
        }
        checked += 1;
        hashes += 2
            * keys.len()
            * Family::ALL.len()
            * differential::DEFAULT_SEEDS.len()
            * 2
            * batch::WIDTHS.len();
    }
    Ok(format!(
        "{checked} formats, {hashes} batched hash evaluations across widths {:?} \
         (hardware and software pext), 0 mismatches",
        batch::WIDTHS
    ))
}

fn run_invariants(opts: &Options) -> Result<String, String> {
    let mut rng = SplitMix64::new(opts.seed ^ 0x17F);
    let mut plans = 0usize;
    let mut roundtrips = 0usize;
    let mut format_set: Vec<(String, KeyPattern, Vec<Vec<u8>>)> = paper_patterns()
        .into_iter()
        .map(|(name, p)| {
            let keys = sample_pattern_keys(&p, &mut rng, opts.keys);
            (name, p, keys)
        })
        .collect();
    for i in 0..opts.formats {
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        let keys = format.sample_keys(&mut rng, opts.keys);
        format_set.push((format!("random format {i}"), pattern, keys));
    }

    for (name, pattern, keys) in &format_set {
        for family in Family::ALL {
            let plan = synthesize(pattern, family);
            let violations = invariants::plan_violations(pattern, family, &plan);
            if let Some(v) = violations.first() {
                return Err(format!("{name}: {v} ({} total)", violations.len()));
            }
            plans += 1;
            if family == Family::Pext && plan.bijection_bits().is_some() {
                invariants::check_pext_roundtrip(pattern, &plan, keys)
                    .map_err(|e| format!("{name}: Pext inversion: {e}"))?;
                roundtrips += 1;
            }
            if matches!(family, Family::Naive | Family::OffXor)
                && invariants::xor_injectivity_applies(pattern, &plan)
            {
                invariants::check_sampled_injectivity(&plan, family, keys)
                    .map_err(|e| format!("{name}: {e}"))?;
            }
        }
        invariants::check_lattice_soundness(keys).map_err(|e| format!("{name}: {e}"))?;
    }
    Ok(format!(
        "{plans} plans structurally sound, {roundtrips} Pext inversions exact"
    ))
}

fn run_model(opts: &Options) -> Result<String, String> {
    use sepe_core::hash::SynthesizedHash;
    let mut total = model::ModelStats::default();
    for format in [KeyFormat::Ssn, KeyFormat::Ipv4, KeyFormat::Uuid] {
        let pattern = Regex::compile(&format.regex()).expect("compiles");
        for family in Family::ALL {
            for isa in [Isa::Native, Isa::Portable] {
                let hasher = SynthesizedHash::from_pattern(&pattern, family).with_isa(isa);
                let stats = model::check_container(hasher, format, opts.ops, opts.seed)
                    .map_err(|e| format!("{} {family} {isa:?}: {e}", format.name()))?;
                total.inserts += stats.inserts;
                total.lookups += stats.lookups;
                total.erases += stats.erases;
                total.structural += stats.structural;
                total.checkpoints += stats.checkpoints;
            }
        }
    }
    Ok(format!(
        "{} inserts, {} lookups, {} erases, {} structural ops, {} checkpoints — all agreed with std::collections::HashMap",
        total.inserts, total.lookups, total.erases, total.structural, total.checkpoints
    ))
}

fn run_faults(opts: &Options) -> Result<String, String> {
    let mut rng = SplitMix64::new(opts.seed ^ 0xFA17);
    let mut agreement_checks = 0usize;
    let mut identity_keys = 0usize;

    // Guard/spec agreement and in-format hash identity, over the paper
    // formats and the seeded random ones.
    let mut format_set: Vec<(String, KeyPattern, Vec<Vec<u8>>)> = paper_patterns()
        .into_iter()
        .map(|(name, p)| {
            let keys = sample_pattern_keys(&p, &mut rng, opts.keys);
            (name, p, keys)
        })
        .collect();
    for i in 0..opts.formats {
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        let keys = format.sample_keys(&mut rng, opts.keys);
        format_set.push((format!("random format {i}"), pattern, keys));
    }
    let mut batch_checks = 0usize;
    for (name, pattern, keys) in &format_set {
        agreement_checks += faults::check_guard_agreement(pattern, keys, &mut rng)
            .map_err(|e| format!("{name}: {e}"))?;
        batch_checks += faults::check_batch_guard_agreement(pattern, keys, &mut rng)
            .map_err(|e| format!("{name} (batched): {e}"))?;
        for family in Family::ALL {
            let guarded = GuardedHash::from_pattern(pattern, family, CityHash::new());
            faults::check_in_format_identity(&guarded, keys)
                .map_err(|e| format!("{name} {family}: {e}"))?;
            identity_keys += keys.len();
        }
    }

    // Fault-injected container model checks: ≥10% of pool keys mutated
    // off-format, all four families, paper formats.
    let mut stats = faults::FaultStats::default();
    let policy = sepe_containers::DriftPolicy::default();
    for format in [KeyFormat::Ssn, KeyFormat::Ipv4, KeyFormat::Uuid] {
        let pattern = Regex::compile(&format.regex()).expect("compiles");
        let clean = sample_pattern_keys(&pattern, &mut rng, 48);
        let (pool, injected) = faults::faulted_pool(&pattern, &clean, 0.25, &mut rng);
        if (injected as f64) < 0.10 * pool.len() as f64 {
            return Err(format!(
                "{}: only {injected}/{} keys injected",
                format.name(),
                pool.len()
            ));
        }
        for family in Family::ALL {
            let hasher = GuardedHash::from_pattern(&pattern, family, CityHash::new());
            let s = faults::check_guarded_container(hasher, &pool, &policy, opts.ops, opts.seed)
                .map_err(|e| format!("{} {family}: {e}", format.name()))?;
            stats.ops += s.ops;
            stats.transitions += s.transitions;
            stats.checkpoints += s.checkpoints;
            stats.injected += injected;
        }
    }

    // The degradation state machine, end to end.
    let mut degradations = 0usize;
    for i in 0..3usize {
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        let clean = format.sample_keys(&mut rng, 200);
        for family in Family::ALL {
            faults::check_degradation(&pattern, family, CityHash::new(), &clean, opts.seed)
                .map_err(|e| format!("degradation format {i} {family}: {e}"))?;
            degradations += 1;
        }
    }

    Ok(format!(
        "{agreement_checks} guard/spec agreements, {batch_checks} batched guard verdicts, \
         {identity_keys} in-format hash identities, \
         {} faulted container ops ({} transitions, {} checkpoints), \
         {degradations} degradation state machines — all agreed with std::collections::HashMap",
        stats.ops, stats.transitions, stats.checkpoints
    ))
}

fn run_migration(opts: &Options) -> Result<String, String> {
    let mut rng = SplitMix64::new(opts.seed ^ 0xE90C);
    let mut stats = migration::MigrationStats::default();
    let mut lanes = 0usize;
    let mut rejected = 0usize;
    let mut drain_metrics = 0usize;

    // Interrupted migrations, batched epoch crossings and corrupted-bundle
    // rejection over the paper formats, all four families.
    for format in [KeyFormat::Ssn, KeyFormat::Ipv4, KeyFormat::Uuid] {
        let pattern = Regex::compile(&format.regex()).expect("compiles");
        let clean = sample_pattern_keys(&pattern, &mut rng, 64);
        for (i, family) in Family::ALL.into_iter().enumerate() {
            let s = migration::check_interrupted_migration(
                &pattern,
                family,
                CityHash::new(),
                &clean,
                opts.ops,
                opts.seed ^ (i as u64) << 8,
            )
            .map_err(|e| format!("{} {family}: {e}", format.name()))?;
            stats.absorb(s);
            lanes += migration::check_batched_epoch_boundary(
                &pattern,
                family,
                CityHash::new(),
                &clean,
                opts.seed ^ (i as u64) << 8,
            )
            .map_err(|e| format!("{} {family} (batched): {e}", format.name()))?;
            rejected += migration::check_corrupted_plans_rejected(&pattern, family)
                .map_err(|e| format!("{} {family} (corrupted plans): {e}", format.name()))?;
            drain_metrics += migration::check_drain_accounting(
                &pattern,
                family,
                CityHash::new(),
                &clean,
                opts.seed ^ (i as u64) << 8,
            )
            .map_err(|e| format!("{} {family} (drain metrics): {e}", format.name()))?;
        }
    }

    // A slice of seeded random formats, families rotated.
    for i in 0..(opts.formats / 10).max(3) {
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        let clean = format.sample_keys(&mut rng, 48);
        let family = Family::ALL[i % Family::ALL.len()];
        let s = migration::check_interrupted_migration(
            &pattern,
            family,
            CityHash::new(),
            &clean,
            opts.ops / 2,
            opts.seed ^ (i as u64),
        )
        .map_err(|e| format!("random format {i} {family}: {e}"))?;
        stats.absorb(s);
        rejected += migration::check_corrupted_plans_rejected(&pattern, family)
            .map_err(|e| format!("random format {i} {family} (corrupted plans): {e}"))?;
    }

    Ok(format!(
        "{} ops across interrupted migrations ({} interruptions, {} epoch transitions, \
         {} drift bursts, {} checkpoints), {lanes} batched lanes across epoch boundaries, \
         {rejected} corrupted bundles rejected with typed errors, {drain_metrics} drain-metric \
         assertions against registry snapshots — contents and drift counters matched the \
         eagerly drained twin and std::collections::HashMap throughout",
        stats.ops, stats.interruptions, stats.transitions, stats.bursts, stats.checkpoints
    ))
}

fn run_concurrent(opts: &Options) -> Result<String, String> {
    let mut rng = SplitMix64::new(opts.seed ^ 0xC0C);
    let mut stats = concurrent::ConcurrentStats::default();
    let mut runs = 0usize;

    // Paper formats × families × thread counts; each cell is one shared
    // map hammered by real threads against a Mutex<HashMap> twin. With
    // `--inject-faults`, every cell also fires shard-degrading drift
    // bursts from one thread while the others keep reading.
    for format in [KeyFormat::Ssn, KeyFormat::Ipv4, KeyFormat::Uuid] {
        let pattern = Regex::compile(&format.regex()).expect("compiles");
        let pool = sample_pattern_keys(&pattern, &mut rng, opts.keys.max(48) * 4);
        for (i, family) in Family::ALL.into_iter().enumerate() {
            for threads in [2usize, 4] {
                let s = concurrent::check_concurrent_map(
                    &pattern,
                    family,
                    CityHash::new(),
                    &pool,
                    concurrent::ConcurrentRun {
                        threads,
                        ops_per_thread: (opts.ops / 2).max(500),
                        seed: opts.seed ^ (i as u64) << 8 ^ (threads as u64),
                        chaos: opts.inject_faults,
                    },
                )
                .map_err(|e| format!("{} {family} x{threads}: {e}", format.name()))?;
                stats.absorb(s);
                runs += 1;
            }
        }
    }

    // A slice of seeded random formats, families rotated, chaos always on
    // (random formats are where the off-format shadows get adversarial).
    for i in 0..(opts.formats / 20).max(2) {
        let rf = RandomFormat::generate(&mut rng);
        let pattern = rf.pattern();
        let pool = rf.sample_keys(&mut rng, 96);
        let family = Family::ALL[i % Family::ALL.len()];
        let s = concurrent::check_concurrent_map(
            &pattern,
            family,
            CityHash::new(),
            &pool,
            concurrent::ConcurrentRun {
                threads: 3,
                ops_per_thread: (opts.ops / 4).max(500),
                seed: opts.seed ^ (i as u64) << 4,
                chaos: true,
            },
        )
        .map_err(|e| format!("random format {i} {family}: {e}"))?;
        stats.absorb(s);
        runs += 1;
    }

    Ok(format!(
        "{} threaded ops across {runs} runs ({} worker threads total, {} shard \
         degradations, {} quiescent checkpoints) — every per-key observation and final \
         content matched the Mutex<HashMap> twin",
        stats.ops, stats.threads, stats.degradations, stats.checkpoints
    ))
}

fn run_supervisor(opts: &Options) -> Result<String, String> {
    let mut rng = SplitMix64::new(opts.seed ^ 0x5FE);

    // Transcript replay: the whole state machine — backoff schedule,
    // breaker open/half-open/close, fault absorption — must replay
    // event-for-event from seed + mock clock alone.
    let mut events = 0usize;
    let mut replays = 0usize;
    for _ in 0..3 {
        events += supervisor::check_replay_transcripts(rng.next_u64())?;
        replays += 1;
    }
    supervisor::check_policy_breaker(opts.seed)?;

    // Supervised chaos: worker threads hammer a ShardedMap while the
    // supervisor recovers degraded shards in the background. With
    // `--inject-faults`, synthesis hangs, panics, errors, and returns
    // invalid plans — and still no container op may block on it.
    let mut stats = supervisor::SupervisorStats::default();
    let mut runs = 0usize;
    for (format, family) in [
        (KeyFormat::Ssn, Family::Pext),
        (KeyFormat::Ipv4, Family::OffXor),
    ] {
        let pattern = Regex::compile(&format.regex()).expect("compiles");
        let pool = sample_pattern_keys(&pattern, &mut rng, opts.keys.max(48) * 4);
        let s = supervisor::check_supervised_chaos(
            &pattern,
            family,
            CityHash::new(),
            &pool,
            supervisor::SupervisedRun {
                threads: 3,
                ops_per_thread: (opts.ops / 2).max(500),
                seed: opts.seed ^ runs as u64,
                faults: opts.inject_faults,
            },
        )
        .map_err(|e| format!("{} {family}: {e}", format.name()))?;
        stats.absorb(s);
        runs += 1;
    }

    Ok(format!(
        "{replays} transcript replays identical over {events} events, {} threaded ops \
         across {runs} supervised runs ({} shards degraded, {} background plans applied, \
         {} injected faults absorbed, worst mutating-op stall {} ms) — no op ever blocked \
         on synthesis and final contents matched the Mutex<HashMap> twin",
        stats.ops,
        stats.degradations,
        stats.applied,
        stats.faults,
        stats.max_mutating_ns / 1_000_000
    ))
}

fn run_adversarial(opts: &Options) -> Result<String, String> {
    let mut rng = SplitMix64::new(opts.seed ^ 0xADE);
    let mut stats = adversarial::AdversarialStats::default();
    let mut ladders = 0usize;

    // The full ladder — storm, keyed re-hash, seed leak, rotation, quiet
    // re-arm — over the paper formats, families rotated so each seed in a
    // matrix exercises a different specialized plan.
    for (i, format) in [KeyFormat::Ssn, KeyFormat::Ipv4, KeyFormat::Uuid]
        .into_iter()
        .enumerate()
    {
        let pattern = Regex::compile(&format.regex()).expect("compiles");
        let pool = sample_pattern_keys(&pattern, &mut rng, opts.keys.max(48) * 4);
        let family = Family::ALL[(i + opts.seed as usize) % Family::ALL.len()];
        let s = adversarial::check_escalation_ladder(
            &pattern,
            family,
            CityHash::new(),
            &pool,
            opts.seed ^ (i as u64) << 8,
        )
        .map_err(|e| format!("{} {family}: {e}", format.name()))?;
        stats.absorb(s);
        ladders += 1;
    }

    // Hysteresis: benign churn over paper and random keygen formats with
    // the production policy must never escalate.
    let mut calm_ticks = 0u64;
    for format in [KeyFormat::Ssn, KeyFormat::Ipv4, KeyFormat::Uuid] {
        let pattern = Regex::compile(&format.regex()).expect("compiles");
        let pool = sample_pattern_keys(&pattern, &mut rng, opts.keys.max(40) * 5);
        calm_ticks += adversarial::check_benign_stays_specialized(
            &pattern,
            Family::Pext,
            CityHash::new(),
            &pool,
            opts.seed,
        )
        .map_err(|e| format!("{} (benign): {e}", format.name()))?;
    }
    for i in 0..(opts.formats / 10).max(3) {
        let rf = RandomFormat::generate(&mut rng);
        let pattern = rf.pattern();
        let pool = rf.sample_keys(&mut rng, 160);
        let family = Family::ALL[i % Family::ALL.len()];
        calm_ticks += adversarial::check_benign_stays_specialized(
            &pattern,
            family,
            CityHash::new(),
            &pool,
            opts.seed ^ (i as u64),
        )
        .map_err(|e| format!("random format {i} {family} (benign): {e}"))?;
    }

    // Batched paths under flood, including mid-migration batches.
    let mut batched_ops = 0u64;
    for (format, family) in [
        (KeyFormat::Ipv4, Family::OffXor),
        (KeyFormat::Ssn, Family::Pext),
    ] {
        let pattern = Regex::compile(&format.regex()).expect("compiles");
        let pool = sample_pattern_keys(&pattern, &mut rng, opts.keys.max(48) * 3);
        batched_ops +=
            adversarial::check_batched_attack(&pattern, family, CityHash::new(), &pool, opts.seed)
                .map_err(|e| format!("{} {family} (batched): {e}", format.name()))?;
    }

    // The concurrent integration check: one shard flooded while worker
    // threads churn the rest against a Mutex<HashMap> twin.
    let pattern = Regex::compile(&KeyFormat::Ipv4.regex()).expect("compiles");
    let pool = sample_pattern_keys(&pattern, &mut rng, opts.keys.max(48) * 6);
    let s = adversarial::check_sharded_attack(
        &pattern,
        Family::OffXor,
        CityHash::new(),
        &pool,
        adversarial::ShardedAttackRun {
            threads: 3,
            ops_per_thread: (opts.ops / 2).max(500),
            seed: opts.seed,
        },
    )
    .map_err(|e| format!("ipv4 OffXor (sharded): {e}"))?;
    stats.absorb(s);

    Ok(format!(
        "{ladders} full ladders + 1 sharded attack ({} ops, {} escalations, {} seed \
         rotations, {} de-escalations, {} twin checkpoints, {} worker threads), \
         {calm_ticks} benign detector ticks without an escalation, {batched_ops} batched \
         ops under flood — chains stayed bounded and every counter matched the transcript",
        stats.ops,
        stats.escalations,
        stats.rotations,
        stats.deescalations,
        stats.checkpoints,
        stats.threads
    ))
}

fn run_synthesis(opts: &Options) -> Result<String, String> {
    let mut rng = SplitMix64::new(opts.seed ^ 0x5717);
    // The seed corpus: every paper-evaluated format plus seeded random
    // ones, so the equivalence claim is checked over formats nobody
    // hand-picked.
    let mut corpus = paper_patterns();
    for i in 0..(opts.formats / 10).max(4) {
        let format = RandomFormat::generate(&mut rng);
        corpus.push((format!("random format {i}"), format.pattern()));
    }
    // `--jobs N` pins the sweep to one thread count (CI uses `--jobs 1`
    // to keep the sequential path exercised); the default sweeps 1/2/4/8.
    let jobs_list: Vec<usize> = match opts.jobs {
        Some(jobs) => vec![jobs],
        None => synthesis::DEFAULT_JOBS.to_vec(),
    };

    let mut compared = 0usize;
    for (name, pattern) in &corpus {
        compared += synthesis::check_search_equivalence(name, pattern, &jobs_list)?;
    }

    let cancel_jobs = opts.jobs.unwrap_or(4);
    let mut aborted = 0usize;
    for (name, pattern) in corpus.iter().take(6) {
        aborted += synthesis::check_cancel_no_poison(name, pattern, cancel_jobs)?;
    }

    let cache = sepe_core::PlanCache::new(corpus.len() * Family::ALL.len());
    let mut memoized = 0usize;
    for (name, pattern) in &corpus {
        memoized += synthesis::check_cache_equivalence(name, pattern, &cache)?;
    }

    Ok(format!(
        "{} patterns × {} families × jobs {jobs_list:?}: {compared} parallel plans \
         byte-identical to sequential (stats included), {aborted} cancelled searches \
         left no poisoned state, {memoized} memoized plans equal to fresh searches \
         ({} cache hits, {} misses)",
        corpus.len(),
        Family::ALL.len(),
        cache.hits(),
        cache.misses()
    ))
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sepe-verify: {e}");
            std::process::exit(2);
        }
    };
    type Suite = fn(&Options) -> Result<String, String>;
    let suites: Vec<(&str, Suite)> = match opts.suite.as_str() {
        "differential" => vec![("differential", run_differential)],
        "batch" => vec![("batch", run_batch)],
        "invariants" => vec![("invariants", run_invariants)],
        "model" => vec![("model", run_model)],
        "faults" => vec![("faults", run_faults)],
        "migration" => vec![("migration", run_migration)],
        "concurrent" => vec![("concurrent", run_concurrent)],
        "supervisor" => vec![("supervisor", run_supervisor)],
        "adversarial" => vec![("adversarial", run_adversarial)],
        "synthesis" => vec![("synthesis", run_synthesis)],
        "all" => vec![
            ("differential", run_differential),
            ("batch", run_batch),
            ("invariants", run_invariants),
            ("model", run_model),
            ("faults", run_faults),
            ("migration", run_migration),
            ("concurrent", run_concurrent),
            ("supervisor", run_supervisor),
            ("adversarial", run_adversarial),
            ("synthesis", run_synthesis),
        ],
        other => {
            eprintln!("sepe-verify: unknown suite {other}");
            std::process::exit(2);
        }
    };
    let mut failed = false;
    for (name, run) in suites {
        match run(&opts) {
            Ok(summary) => println!("PASS {name}: {summary}"),
            Err(e) => {
                println!("FAIL {name}: {e}");
                failed = true;
            }
        }
    }
    std::process::exit(i32::from(failed));
}
