//! Chaos harness for the incremental migration state machine and the
//! hardened plan trust boundary.
//!
//! A degrade or resynthesize on a guarded container no longer rebuilds
//! stored hashes stop-the-world: it opens an *epoch* — old-plan and
//! new-plan bucket arrays coexist, every mutating operation drains a
//! bounded number of entries, and lookups consult both epochs until the
//! drain completes. That buys bounded per-op latency at the price of a
//! much larger state space, which is exactly what this module attacks:
//!
//! * [`check_interrupted_migration`] replays a random operation sequence
//!   with drift bursts against three peers at once — the SUT (whose
//!   migrations are interrupted at randomized points and drained only by
//!   amortization), a *twin* that performs every transition eagerly via
//!   `finish_migration()` (the stop-the-world reference), and a
//!   `std::collections::HashMap` model. Contents must match the model and
//!   drift counters must match the twin *exactly* at every checkpoint: an
//!   amortized drain is observationally identical to an eager rebuild.
//! * [`check_batched_epoch_boundary`] drives `insert_batch`/`get_batch`
//!   across an epoch flip, so whole batches straddle the two bucket
//!   arrays, lane order intact.
//! * [`check_corrupted_plans_rejected`] takes a pristine plan bundle and
//!   derives corrupted variants (truncation, version flip, checksum and
//!   payload tampering, out-of-bounds load offsets and constant-bit pext
//!   masks re-signed with a *valid* checksum) and asserts each is rejected
//!   with the right typed [`SynthError`] before any hash is evaluated.

use crate::faults::{faulted_pool, mutate_off_format};
use sepe_containers::UnorderedMap;
use sepe_core::guard::{GuardStats, GuardedHash};
use sepe_core::hash::{ByteHash, SynthError};
use sepe_core::pattern::KeyPattern;
use sepe_core::plan_io::{bundle_from_str, bundle_to_string, SynthBundle};
use sepe_core::synth::{synthesize, Family, Plan, WordOp};
use sepe_core::SynthesizedHash;
use sepe_keygen::SplitMix64;
use std::collections::HashMap;

/// A guarded map under test.
type Guarded<G> = UnorderedMap<Vec<u8>, u64, GuardedHash<SynthesizedHash, G>>;

/// Statistics of one interrupted-migration run.
#[derive(Debug, Clone, Copy, Default)]
pub struct MigrationStats {
    /// Operations replayed against all three peers.
    pub ops: usize,
    /// Randomized partial `migrate(n)` drains issued to the SUT.
    pub interruptions: usize,
    /// Epoch transitions (degrade + resynthesize) exercised.
    pub transitions: usize,
    /// Full content + counter checkpoints passed.
    pub checkpoints: usize,
    /// Off-format keys injected as drift bursts mid-migration.
    pub bursts: usize,
}

impl MigrationStats {
    /// Accumulates another run's statistics into this one.
    pub fn absorb(&mut self, other: MigrationStats) {
        self.ops += other.ops;
        self.interruptions += other.interruptions;
        self.transitions += other.transitions;
        self.checkpoints += other.checkpoints;
        self.bursts += other.bursts;
    }
}

fn check_contents<G: ByteHash + Clone>(
    step: usize,
    who: &str,
    map: &Guarded<G>,
    model: &HashMap<Vec<u8>, u64>,
) -> Result<(), String> {
    let mut seen = 0usize;
    for (k, v) in map.iter() {
        match model.get(k) {
            Some(mv) if mv == v => seen += 1,
            Some(mv) => {
                return Err(format!(
                    "step {step}: {who} {k:?} holds {v}, model holds {mv}"
                ))
            }
            None => return Err(format!("step {step}: {who} {k:?} absent from model")),
        }
    }
    if seen != model.len() {
        return Err(format!(
            "step {step}: {who} iterated {seen} pairs, model holds {}",
            model.len()
        ));
    }
    Ok(())
}

fn check_counters<G: ByteHash + Clone>(
    step: usize,
    sut: &Guarded<G>,
    twin: &Guarded<G>,
) -> Result<(), String> {
    let compare = |what: &str, a: u64, b: u64| -> Result<(), String> {
        if a != b {
            return Err(format!(
                "step {step}: {what} counter diverged — interrupted migration \
                 says {a}, eager twin says {b}"
            ));
        }
        Ok(())
    };
    let (a, b): (&GuardStats, &GuardStats) = (sut.drift_stats(), twin.drift_stats());
    compare("in_format", a.in_format(), b.in_format())?;
    compare("off_format", a.off_format(), b.off_format())?;
    let (aw, bw) = (a.window_counts(), b.window_counts());
    compare("window off", aw.0, bw.0)?;
    compare("window total", aw.1, bw.1)?;
    if sut.guard_mode() != twin.guard_mode() {
        return Err(format!(
            "step {step}: mode diverged — SUT {:?}, twin {:?}",
            sut.guard_mode(),
            twin.guard_mode()
        ));
    }
    Ok(())
}

/// Model-checks an incrementally migrating guarded map against an eagerly
/// rebuilt twin and `std::collections::HashMap`.
///
/// The run seeds all three peers with `clean`, then replays `n_ops` random
/// operations from a fault-injected pool. A third of the way in, both
/// guarded maps `degrade_now()`; two thirds in, both `resynthesize()` from
/// their (identical) reservoirs. The twin finishes each migration on the
/// spot; the SUT drains only through per-op amortization plus randomized
/// `migrate(n)` interruptions, with extra off-format drift bursts injected
/// while its epoch is in flight. Contents are checked against the model
/// and drift counters against the twin, both at random checkpoints and
/// after the final explicit drain.
///
/// # Errors
///
/// Describes the first divergence between the SUT, the twin and the model.
pub fn check_interrupted_migration<G: ByteHash + Clone>(
    pattern: &KeyPattern,
    family: Family,
    fallback: G,
    clean: &[Vec<u8>],
    n_ops: usize,
    seed: u64,
) -> Result<MigrationStats, String> {
    let mut rng = SplitMix64::new(seed);
    let mut sut: Guarded<G> =
        UnorderedMap::with_hasher(GuardedHash::from_pattern(pattern, family, fallback.clone()));
    let mut twin: Guarded<G> =
        UnorderedMap::with_hasher(GuardedHash::from_pattern(pattern, family, fallback));
    let mut model: HashMap<Vec<u8>, u64> = HashMap::new();
    let mut stats = MigrationStats::default();

    for (i, key) in clean.iter().enumerate() {
        sut.insert(key.clone(), i as u64);
        twin.insert(key.clone(), i as u64);
        model.insert(key.clone(), i as u64);
    }
    // 20% of the pool starts off-format so the reservoir is populated well
    // before the resynthesize transition.
    let (mut pool, _) = faulted_pool(pattern, clean, 0.20, &mut rng);
    if pool.is_empty() {
        return Err("empty key pool".to_owned());
    }

    let degrade_at = n_ops / 3;
    let resynth_at = 2 * n_ops / 3;
    let mut next_value = clean.len() as u64;

    for step in 0..n_ops {
        if step == degrade_at {
            sut.degrade_now();
            twin.degrade_now();
            twin.finish_migration();
            if !sut.migration_in_flight() {
                return Err(format!(
                    "step {step}: degrade_now on a {}-entry map left no epoch in flight",
                    sut.len()
                ));
            }
            if twin.migration_in_flight() {
                return Err(format!(
                    "step {step}: finish_migration left the twin in flight"
                ));
            }
            check_counters(step, &sut, &twin)?;
            stats.transitions += 1;
        }
        if step == resynth_at {
            let a = sut.resynthesize();
            let b = twin.resynthesize();
            if a != b {
                return Err(format!(
                    "step {step}: resynthesize diverged — SUT {a:?}, twin {b:?} \
                     (reservoirs were fed identical traffic)"
                ));
            }
            if a.is_applied() {
                twin.finish_migration();
                check_counters(step, &sut, &twin)?;
                stats.transitions += 1;
            }
        }

        // Drift bursts land specifically while the SUT's epoch is open, so
        // off-format traffic crosses the migration boundary.
        if sut.migration_in_flight() && rng.next_u64().is_multiple_of(8) {
            let base = &clean[(rng.next_u64() % clean.len() as u64) as usize];
            pool.push(mutate_off_format(pattern, base, &mut rng));
            stats.bursts += 1;
        }

        let key = pool[(rng.next_u64() % pool.len() as u64) as usize].clone();
        match rng.next_u64() % 100 {
            0..=39 => {
                next_value += 1;
                let a = sut.insert(key.clone(), next_value);
                let b = twin.insert(key.clone(), next_value);
                let m = model.insert(key.clone(), next_value);
                if a != m || b != m {
                    return Err(format!(
                        "step {step}: insert({key:?}) -> SUT {a:?}, twin {b:?}, model {m:?}"
                    ));
                }
            }
            40..=62 => {
                let a = sut.get(key.as_slice()).copied();
                let b = twin.get(key.as_slice()).copied();
                let m = model.get(&key).copied();
                if a != m || b != m {
                    return Err(format!(
                        "step {step}: get({key:?}) -> SUT {a:?}, twin {b:?}, model {m:?}"
                    ));
                }
            }
            63..=72 => {
                let a = sut.contains_key(key.as_slice());
                let b = twin.contains_key(key.as_slice());
                let m = model.contains_key(&key);
                if a != m || b != m {
                    return Err(format!("step {step}: contains({key:?}) diverged"));
                }
            }
            73..=87 => {
                let a = sut.remove(key.as_slice());
                let b = twin.remove(key.as_slice());
                let m = model.remove(&key);
                if a != m || b != m {
                    return Err(format!(
                        "step {step}: remove({key:?}) -> SUT {a:?}, twin {b:?}, model {m:?}"
                    ));
                }
            }
            88..=92 => {
                // Randomized interruption point: drain a few entries, or
                // none at all, then go straight back to traffic.
                sut.migrate((rng.next_u64() % 23) as usize);
                stats.interruptions += 1;
            }
            93..=94 => {
                // Resizing the live epoch mid-migration must not disturb
                // the parked one.
                let buckets = 1 + (rng.next_u64() % 256) as usize;
                sut.rehash(buckets);
                twin.rehash(buckets);
            }
            _ => {
                check_contents(step, "SUT", &sut, &model)?;
                check_contents(step, "twin", &twin, &model)?;
                check_counters(step, &sut, &twin)?;
                stats.checkpoints += 1;
            }
        }
        let progress = sut.migration_progress();
        if !(0.0..=1.0).contains(&progress) {
            return Err(format!(
                "step {step}: migration_progress {progress} out of range"
            ));
        }
        if sut.len() != model.len() || twin.len() != model.len() {
            return Err(format!(
                "step {step}: len SUT {} / twin {} / model {}",
                sut.len(),
                twin.len(),
                model.len()
            ));
        }
        stats.ops += 1;
    }

    check_contents(n_ops, "SUT", &sut, &model)?;
    check_contents(n_ops, "twin", &twin, &model)?;
    check_counters(n_ops, &sut, &twin)?;
    sut.finish_migration();
    if sut.migration_in_flight() {
        return Err("finish_migration left the epoch in flight".to_owned());
    }
    if (sut.migration_progress() - 1.0).abs() > f64::EPSILON {
        return Err(format!(
            "drained map reports progress {}",
            sut.migration_progress()
        ));
    }
    check_contents(n_ops, "SUT (drained)", &sut, &model)?;
    check_counters(n_ops, &sut, &twin)?;
    stats.checkpoints += 1;
    Ok(stats)
}

/// Drives the batched container API (`insert_batch`/`get_batch`) across an
/// epoch flip, so batches straddle the old and new bucket arrays, and
/// checks lane-exact agreement with an eagerly drained twin and the
/// `HashMap` model. Returns the number of lanes compared.
///
/// # Errors
///
/// Describes the first lane where the three peers disagree.
pub fn check_batched_epoch_boundary<G: ByteHash + Clone>(
    pattern: &KeyPattern,
    family: Family,
    fallback: G,
    clean: &[Vec<u8>],
    seed: u64,
) -> Result<usize, String> {
    let mut rng = SplitMix64::new(seed ^ 0xBA7C_E90C);
    let mut sut: Guarded<G> =
        UnorderedMap::with_hasher(GuardedHash::from_pattern(pattern, family, fallback.clone()));
    let mut twin: Guarded<G> =
        UnorderedMap::with_hasher(GuardedHash::from_pattern(pattern, family, fallback));
    let mut model: HashMap<Vec<u8>, u64> = HashMap::new();
    let (pool, _) = faulted_pool(pattern, clean, 0.25, &mut rng);
    if pool.is_empty() {
        return Err("empty key pool".to_owned());
    }

    let rounds = 48usize;
    let width = 8usize;
    let mut lanes = 0usize;
    let mut next_value = 0u64;
    for round in 0..rounds {
        if round == rounds / 3 {
            sut.degrade_now();
            twin.degrade_now();
            twin.finish_migration();
        }
        if round == 2 * rounds / 3 && sut.resynthesize().is_applied() {
            if !twin.resynthesize().is_applied() {
                return Err(format!("round {round}: only the SUT could resynthesize"));
            }
            twin.finish_migration();
        }

        let batch: Vec<(Vec<u8>, u64)> = (0..width)
            .map(|_| {
                next_value += 1;
                let key = pool[(rng.next_u64() % pool.len() as u64) as usize].clone();
                (key, next_value)
            })
            .collect();
        let a = sut.insert_batch(batch.clone());
        let b = twin.insert_batch(batch.clone());
        let m: Vec<Option<u64>> = batch
            .iter()
            .map(|(k, v)| model.insert(k.clone(), *v))
            .collect();
        for (lane, ((a, b), m)) in a.iter().zip(&b).zip(&m).enumerate() {
            if a != m || b != m {
                return Err(format!(
                    "round {round} lane {lane}: insert_batch -> SUT {a:?}, twin {b:?}, \
                     model {m:?} on {:?}",
                    batch[lane].0
                ));
            }
            lanes += 1;
        }

        // Interrupt mid-round so the next batch meets a different drain
        // frontier.
        sut.migrate((rng.next_u64() % 5) as usize);

        let probes: Vec<Vec<u8>> = (0..width)
            .map(|_| pool[(rng.next_u64() % pool.len() as u64) as usize].clone())
            .collect();
        let refs: Vec<&[u8]> = probes.iter().map(Vec::as_slice).collect();
        let a = sut.get_batch(&refs);
        let b = twin.get_batch(&refs);
        for (lane, key) in probes.iter().enumerate() {
            let m = model.get(key);
            if a[lane] != m || b[lane] != m {
                return Err(format!(
                    "round {round} lane {lane}: get_batch({key:?}) -> SUT {:?}, \
                     twin {:?}, model {m:?}",
                    a[lane], b[lane]
                ));
            }
            lanes += 1;
        }
        check_counters(round, &sut, &twin)?;
    }

    check_contents(rounds, "SUT", &sut, &model)?;
    sut.finish_migration();
    check_contents(rounds, "SUT (drained)", &sut, &model)?;
    check_counters(rounds, &sut, &twin)?;
    Ok(lanes)
}

/// Cross-checks the table's exported drain metrics against exact ground
/// truth on a deterministic scenario: seed a map with `clean`, degrade it
/// (one epoch over exactly `len` entries), drain it in seeded random
/// strides, then probe every key once. The registry snapshot must show
/// exactly one epoch opened and finished, exactly `len` entries drained,
/// and exactly `len` additional probe-length observations. Returns the
/// number of metric assertions checked (0 in `obs`-off builds, where the
/// counters are compiled out).
///
/// # Errors
///
/// Describes the first counter that disagrees with the ground truth.
pub fn check_drain_accounting<G: ByteHash + Clone>(
    pattern: &KeyPattern,
    family: Family,
    fallback: G,
    clean: &[Vec<u8>],
    seed: u64,
) -> Result<usize, String> {
    if !sepe_obs::enabled() {
        return Ok(0);
    }
    let mut rng = SplitMix64::new(seed ^ 0xD8A1_4ACC);
    let mut map: Guarded<G> =
        UnorderedMap::with_hasher(GuardedHash::from_pattern(pattern, family, fallback));
    for (i, key) in clean.iter().enumerate() {
        map.insert(key.clone(), i as u64);
    }
    let registry = sepe_obs::Registry::new();
    map.export_metrics(&registry, &[])
        .map_err(|e| format!("metrics export failed: {e}"))?;
    let entries = map.len() as u64;
    if entries == 0 {
        return Err("empty clean pool".to_owned());
    }
    map.degrade_now();
    let mut checked = 0usize;
    let expect = |what: &str, got: Option<u64>, want: u64| -> Result<(), String> {
        if got != Some(want) {
            return Err(format!(
                "drain accounting: {what} reads {got:?}, ground truth {want}"
            ));
        }
        Ok(())
    };
    let snap = registry.snapshot();
    expect(
        "table_epochs_opened",
        snap.counter("table_epochs_opened"),
        1,
    )?;
    expect(
        "table_epochs_finished",
        snap.counter("table_epochs_finished"),
        0,
    )?;
    checked += 2;
    while map.migration_in_flight() {
        map.migrate(1 + (rng.next_u64() % 16) as usize);
    }
    let snap = registry.snapshot();
    expect("table_drain_ops", snap.counter("table_drain_ops"), entries)?;
    expect(
        "table_epochs_finished",
        snap.counter("table_epochs_finished"),
        1,
    )?;
    checked += 2;
    let probes_before = snap
        .histograms
        .get("table_probe_len")
        .map_or(0, |h| h.count);
    // Probe each *stored* key once (the pool may hold duplicates).
    let keys: Vec<Vec<u8>> = map.iter().map(|(k, _)| k.clone()).collect();
    for key in &keys {
        if map.get(key.as_slice()).is_none() {
            return Err(format!(
                "drain accounting: key {:?} lost across the drain",
                String::from_utf8_lossy(key)
            ));
        }
    }
    let snap = registry.snapshot();
    let probes_after = snap
        .histograms
        .get("table_probe_len")
        .map_or(0, |h| h.count);
    if probes_after != probes_before + entries {
        return Err(format!(
            "drain accounting: probe histogram grew {} for {entries} lookups",
            probes_after - probes_before
        ));
    }
    checked += 1;
    Ok(checked)
}

/// Synthesizes a pristine plan bundle for `pattern`/`family`, derives
/// corrupted variants, and asserts every one is rejected by
/// [`bundle_from_str`] with the *right* typed error — never a panic, and
/// always before the plan could reach a hash kernel. Returns the number of
/// corrupted variants rejected.
///
/// The variants: truncated JSON (three cut points), a flipped schema
/// version, a tampered checksum, a tampered payload under the original
/// checksum, and — re-signed with a *valid* checksum, so only semantic
/// validation can catch them — an out-of-bounds load offset and (for Pext)
/// a mask claiming constant bits.
///
/// # Errors
///
/// Describes the first variant that was accepted or rejected with the
/// wrong error type.
pub fn check_corrupted_plans_rejected(
    pattern: &KeyPattern,
    family: Family,
) -> Result<usize, String> {
    let plan = synthesize(pattern, family);
    let bundle = SynthBundle {
        pattern: pattern.clone(),
        family,
        plan,
    };
    let text = bundle_to_string(&bundle);
    bundle_from_str(&text).map_err(|e| format!("pristine bundle rejected: {e}"))?;
    let mut rejected = 0usize;

    // Truncation at several cut points: always a parse (malformed) error.
    for cut in [text.len() / 3, text.len() / 2, text.len() - 1] {
        match bundle_from_str(&text[..cut]) {
            Err(SynthError::MalformedPlan { .. }) => rejected += 1,
            Err(e) => {
                return Err(format!(
                    "truncation at {cut}: expected MalformedPlan, got {e}"
                ))
            }
            Ok(_) => return Err(format!("truncation at {cut} was accepted")),
        }
    }

    // Version flip: rejected before the checksum is even consulted.
    let flipped = text.replace("\"version\":2", "\"version\":99");
    if flipped == text {
        return Err("bundle text carries no version field to flip".to_owned());
    }
    match bundle_from_str(&flipped) {
        Err(SynthError::PlanVersion { found: 99, .. }) => rejected += 1,
        Err(e) => return Err(format!("version flip: expected PlanVersion, got {e}")),
        Ok(_) => return Err("version flip was accepted".to_owned()),
    }

    // Checksum tamper: decrement a nonzero digit of the stored checksum
    // (decrementing keeps the tampered value inside u64 range, so the
    // rejection is the checksum comparison, not integer parsing).
    let tampered = lower_digit_after(&text, "\"checksum\":\"")
        .ok_or("bundle text carries no nonzero checksum digit")?;
    match bundle_from_str(&tampered) {
        Err(SynthError::PlanChecksum { .. }) => rejected += 1,
        Err(e) => return Err(format!("checksum tamper: expected PlanChecksum, got {e}")),
        Ok(_) => return Err("checksum tamper was accepted".to_owned()),
    }

    // Payload tamper under the original checksum: bump a digit inside the
    // plan body. The mismatch must be caught by the checksum, not by luck.
    let tampered = bump_digit_after(&text, "\"plan\":").ok_or("plan body carries no digits")?;
    match bundle_from_str(&tampered) {
        Err(SynthError::PlanChecksum { .. }) => rejected += 1,
        Err(e) => return Err(format!("payload tamper: expected PlanChecksum, got {e}")),
        Ok(_) => return Err("payload tamper was accepted".to_owned()),
    }

    // Semantically hostile plans re-signed with a VALID checksum: only the
    // semantic validation layer stands between them and the unchecked
    // batch kernels.
    if let Plan::FixedWords { len, ops } = &bundle.plan {
        if *len >= 8 {
            let mut hostile = bundle.clone();
            if let Plan::FixedWords { ops: h_ops, .. } = &mut hostile.plan {
                h_ops.push(WordOp {
                    offset: (*len - 4) as u32,
                    mask: if family == Family::Pext { 1 } else { u64::MAX },
                    shift: 0,
                });
            }
            match bundle_from_str(&bundle_to_string(&hostile)) {
                Err(SynthError::PlanLoadOutOfBounds { .. }) => rejected += 1,
                Err(e) => {
                    return Err(format!(
                        "out-of-bounds offset: expected PlanLoadOutOfBounds, got {e}"
                    ))
                }
                Ok(_) => return Err("out-of-bounds load offset was accepted".to_owned()),
            }
        }
        // Widen a pext mask that excludes constant bits to the full word
        // (loads over fully variable bytes already carry the full mask, so
        // only a partial mask can be made hostile this way).
        let partial = if family == Family::Pext {
            ops.iter().position(|op| op.mask != u64::MAX)
        } else {
            None
        };
        if let Some(i) = partial {
            let mut hostile = bundle.clone();
            if let Plan::FixedWords { ops: h_ops, .. } = &mut hostile.plan {
                h_ops[i].mask = u64::MAX;
            }
            match bundle_from_str(&bundle_to_string(&hostile)) {
                Err(SynthError::PlanMaskConstBits) => rejected += 1,
                Err(e) => {
                    return Err(format!(
                        "constant-bit pext mask: expected PlanMaskConstBits, got {e}"
                    ))
                }
                Ok(_) => return Err("constant-bit pext mask was accepted".to_owned()),
            }
        }
    }

    Ok(rejected)
}

/// Returns `text` with the first ASCII digit after `anchor` bumped to a
/// different digit, or `None` when the anchor or a digit is missing.
fn bump_digit_after(text: &str, anchor: &str) -> Option<String> {
    let start = text.find(anchor)? + anchor.len();
    let rel = text[start..].find(|c: char| c.is_ascii_digit())?;
    let at = start + rel;
    let old = text.as_bytes()[at];
    let new = b'0' + (old - b'0' + 1) % 10;
    let mut bytes = text.as_bytes().to_vec();
    bytes[at] = new;
    String::from_utf8(bytes).ok()
}

/// Returns `text` with the first *nonzero* ASCII digit after `anchor`
/// decremented, so a tampered decimal number strictly shrinks and still
/// parses as `u64`. `None` when the anchor or such a digit is missing.
fn lower_digit_after(text: &str, anchor: &str) -> Option<String> {
    let start = text.find(anchor)? + anchor.len();
    let rel = text[start..].find(|c: char| ('1'..='9').contains(&c))?;
    let at = start + rel;
    let mut bytes = text.as_bytes().to_vec();
    bytes[at] -= 1;
    String::from_utf8(bytes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::RandomFormat;
    use sepe_core::hash::stl_hash_bytes;
    use sepe_core::regex::Regex;
    use sepe_keygen::KeyFormat;

    #[derive(Clone)]
    struct Stl;
    impl ByteHash for Stl {
        fn hash_bytes(&self, key: &[u8]) -> u64 {
            stl_hash_bytes(key, 0)
        }
    }

    fn sample(pattern: &KeyPattern, rng: &mut SplitMix64, n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|_| {
                (0..pattern.max_len())
                    .map(|i| {
                        let choices: Vec<u8> = pattern.bytes()[i].possible_bytes().collect();
                        choices[(rng.next_u64() % choices.len() as u64) as usize]
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn interrupted_migration_matches_eager_twin() {
        let pattern = Regex::compile(&KeyFormat::Ssn.regex()).unwrap();
        let mut rng = SplitMix64::new(0xE90C);
        let clean = sample(&pattern, &mut rng, 64);
        for family in Family::ALL {
            let stats = check_interrupted_migration(&pattern, family, Stl, &clean, 3_000, 0x5EED)
                .unwrap_or_else(|e| panic!("{family}: {e}"));
            assert!(stats.transitions >= 2, "{family}: {stats:?}");
            assert!(stats.interruptions > 0, "{family}: {stats:?}");
            assert!(stats.bursts > 0, "{family}: {stats:?}");
        }
    }

    #[test]
    fn interrupted_migration_over_random_formats() {
        let mut rng = SplitMix64::new(0x0DD_E90C);
        for i in 0..3 {
            let format = RandomFormat::generate(&mut rng);
            let pattern = format.pattern();
            let clean = format.sample_keys(&mut rng, 48);
            let family = Family::ALL[i % Family::ALL.len()];
            check_interrupted_migration(&pattern, family, Stl, &clean, 2_000, 0x5EED + i as u64)
                .unwrap_or_else(|e| panic!("random format {i} {family}: {e}"));
        }
    }

    #[test]
    fn batched_ops_cross_the_epoch_boundary() {
        let pattern = Regex::compile(&KeyFormat::Ipv4.regex()).unwrap();
        let mut rng = SplitMix64::new(0xBA7C);
        let clean = sample(&pattern, &mut rng, 64);
        for family in Family::ALL {
            let lanes = check_batched_epoch_boundary(&pattern, family, Stl, &clean, 0x5EED)
                .unwrap_or_else(|e| panic!("{family}: {e}"));
            assert!(lanes > 0);
        }
    }

    #[test]
    fn corrupted_bundles_are_rejected_with_typed_errors() {
        for format in [KeyFormat::Ssn, KeyFormat::Ipv4, KeyFormat::Uuid] {
            let pattern = Regex::compile(&format.regex()).unwrap();
            for family in Family::ALL {
                let n = check_corrupted_plans_rejected(&pattern, family)
                    .unwrap_or_else(|e| panic!("{} {family}: {e}", format.name()));
                assert!(n >= 5, "{} {family}: only {n} variants", format.name());
            }
        }
    }
}
