//! Concurrent model checking for the lock-striped containers.
//!
//! A [`ShardedMap`] is exercised by several real OS threads at once and
//! model-checked against a `Mutex<HashMap>` twin fed the identical
//! operations. Determinism under true interleaving comes from **disjoint
//! key partitions**: thread `t` owns the pool keys with `index % threads
//! == t`, so every per-key observation (the previous value an insert
//! returns, what a get sees, what a remove yields) is decided by its owner
//! thread alone — any disagreement with the twin is a real bug, not a
//! race in the test. The *interleaving* is still genuinely concurrent:
//! threads contend on the shard locks and the twin mutex continuously.
//!
//! The chaos variant adds a drift-burst thread that degrades shards one at
//! a time (hammering them with off-format keys first, so the degradation
//! is earned, not just injected) while the other threads keep reading —
//! the blast radius of a degrading shard must stay confined to that shard.

use sepe_containers::sharded::ShardedMap;
use sepe_containers::DriftPolicy;
use sepe_core::guard::GuardedHash;
use sepe_core::hash::ByteHash;
use sepe_core::pattern::KeyPattern;
use sepe_core::synth::Family;
use sepe_core::SynthesizedHash;
use sepe_keygen::SplitMix64;
use std::collections::HashMap;
use std::sync::Mutex;

/// Aggregate statistics of one concurrent model-checking run.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConcurrentStats {
    /// Map operations executed across all threads.
    pub ops: usize,
    /// Worker threads that ran.
    pub threads: usize,
    /// Shards degraded by drift bursts during the run.
    pub degradations: usize,
    /// Full-content comparisons against the twin (and `HashMap` union).
    pub checkpoints: usize,
}

impl ConcurrentStats {
    /// Accumulates another run's counters into this one.
    pub fn absorb(&mut self, other: ConcurrentStats) {
        self.ops += other.ops;
        self.threads += other.threads;
        self.degradations += other.degradations;
        self.checkpoints += other.checkpoints;
    }
}

type Guarded<G> = GuardedHash<SynthesizedHash, G>;

/// Shape of one concurrent model-checking run: how many threads, how much
/// work per thread, which seed, and whether drift-burst chaos is on.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentRun {
    /// Worker threads to spawn (clamped to at least 1).
    pub threads: usize,
    /// Map operations each thread executes over its key partition.
    pub ops_per_thread: usize,
    /// Seed for the per-thread operation streams.
    pub seed: u64,
    /// Fire drift bursts from thread 0 that degrade individual shards.
    pub chaos: bool,
}

/// Key partition owned by thread `t`: every key whose pool index is
/// congruent to `t` modulo the thread count.
fn partition(pool: &[Vec<u8>], t: usize, threads: usize) -> Vec<Vec<u8>> {
    pool.iter()
        .enumerate()
        .filter(|(i, _)| i % threads == t)
        .map(|(_, k)| k.clone())
        .collect()
}

/// Runs [`ConcurrentRun::threads`] worker threads over one shared
/// [`ShardedMap`] and a shared `Mutex<HashMap>` twin, each thread
/// interleaving inserts, gets and removes over its own key partition and
/// asserting per-operation agreement with the twin. When
/// [`ConcurrentRun::chaos`] is set, thread 0 additionally fires drift
/// bursts — off-format traffic aimed at one shard, followed by a
/// policy-driven degradation of that shard — while the others keep
/// serving reads.
///
/// # Errors
///
/// Returns the first disagreement between the sharded map and the twin
/// (or a structural violation) as a human-readable message.
pub fn check_concurrent_map<G>(
    pattern: &KeyPattern,
    family: Family,
    fallback: G,
    pool: &[Vec<u8>],
    run: ConcurrentRun,
) -> Result<ConcurrentStats, String>
where
    G: ByteHash + Clone + Send + Sync,
{
    let ConcurrentRun {
        threads,
        ops_per_thread,
        seed,
        chaos,
    } = run;
    let threads = threads.max(1);
    let hasher: Guarded<G> = GuardedHash::from_pattern(pattern, family, fallback);
    let map: ShardedMap<Vec<u8>, u64, SynthesizedHash, G> = ShardedMap::with_hasher(hasher, 8);
    let twin: Mutex<HashMap<Vec<u8>, u64>> = Mutex::new(HashMap::new());
    let policy = DriftPolicy::default();

    let worker = |t: usize| -> Result<(usize, usize), String> {
        let mine = partition(pool, t, threads);
        if mine.is_empty() {
            return Ok((0, 0));
        }
        let mut rng = SplitMix64::new(seed ^ (t as u64) << 16);
        let mut ops = 0usize;
        let mut degradations = 0usize;
        // Off-format shadows of this thread's keys ('~' is outside every
        // byte class the paper formats admit, and lengthening breaks
        // fixed-length patterns either way).
        let shadows: Vec<Vec<u8>> = mine
            .iter()
            .map(|k| {
                let mut s = k.clone();
                s.push(b'~');
                s
            })
            .collect();
        for step in 0..ops_per_thread {
            let r = rng.next_u64();
            let chaos_burst = chaos && t == 0 && step % 97 == 96;
            if chaos_burst {
                // Drift burst: hammer one owned shard with off-format
                // traffic, then let the per-shard policy pull the trigger.
                // Bursts only ever target the lower half of the stripes, so
                // the untouched upper half sees zero off-format traffic and
                // the blast-radius check at the end proves confinement
                // structurally, at any seed.
                let half = (map.shard_count() / 2).max(1);
                let pick = map.shard_of(&shadows[(r % shadows.len() as u64) as usize]);
                let target = if pick < half {
                    Some(pick)
                } else {
                    shadows.iter().map(|s| map.shard_of(s)).find(|&s| s < half)
                };
                let Some(target) = target else {
                    continue; // no shadow routes into the burstable half
                };
                for s in &shadows {
                    if map.shard_of(s) == target {
                        let prev = map.insert(s.clone(), r);
                        let expected = twin
                            .lock()
                            .map_err(|_| "twin mutex poisoned".to_string())?
                            .insert(s.clone(), r);
                        if prev != expected {
                            return Err(format!(
                                "burst insert disagreed on {:?}: {prev:?} vs {expected:?}",
                                String::from_utf8_lossy(s)
                            ));
                        }
                        ops += 1;
                    }
                }
                let before = map.degraded_shards();
                // The windowed per-shard policy gets first shot at the
                // trigger; then the burst lands deterministically on its
                // target. Only lower-half shards ever see off-format keys,
                // so neither path can reach the upper half.
                map.maybe_degrade(&policy);
                if map.shard_mode(target) == sepe_core::guard::GuardMode::Guarded {
                    map.degrade_shard(target);
                }
                degradations += map.degraded_shards().saturating_sub(before);
                continue;
            }
            let key = &mine[((r >> 8) % mine.len() as u64) as usize];
            match r % 10 {
                0..=4 => {
                    let got = map.get(key.as_slice());
                    let expected = twin
                        .lock()
                        .map_err(|_| "twin mutex poisoned".to_string())?
                        .get(key)
                        .copied();
                    if got != expected {
                        return Err(format!(
                            "get disagreed on {:?}: {got:?} vs {expected:?}",
                            String::from_utf8_lossy(key)
                        ));
                    }
                }
                5..=7 => {
                    let prev = map.insert(key.clone(), r);
                    let expected = twin
                        .lock()
                        .map_err(|_| "twin mutex poisoned".to_string())?
                        .insert(key.clone(), r);
                    if prev != expected {
                        return Err(format!(
                            "insert disagreed on {:?}: {prev:?} vs {expected:?}",
                            String::from_utf8_lossy(key)
                        ));
                    }
                }
                _ => {
                    let removed = map.remove(key.as_slice());
                    let expected = twin
                        .lock()
                        .map_err(|_| "twin mutex poisoned".to_string())?
                        .remove(key);
                    if removed != expected {
                        return Err(format!(
                            "remove disagreed on {:?}: {removed:?} vs {expected:?}",
                            String::from_utf8_lossy(key)
                        ));
                    }
                }
            }
            ops += 1;
        }
        Ok((ops, degradations))
    };

    let mut stats = ConcurrentStats {
        threads,
        ..ConcurrentStats::default()
    };
    let results: Vec<Result<(usize, usize), String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads).map(|t| s.spawn(move || worker(t))).collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("worker thread panicked".to_string()))
            })
            .collect()
    });
    for r in results {
        let (ops, degradations) = r?;
        stats.ops += ops;
        stats.degradations += degradations;
    }

    // Quiescent checkpoint: drain the epochs, then the sharded contents
    // must equal the twin exactly — count, keys, and values.
    map.finish_migrations();
    let twin = twin
        .into_inner()
        .map_err(|_| "twin mutex poisoned at checkpoint".to_string())?;
    if map.len() != twin.len() {
        return Err(format!(
            "length diverged at checkpoint: sharded {} vs twin {}",
            map.len(),
            twin.len()
        ));
    }
    let mut mismatch = None;
    let mut seen = 0usize;
    map.for_each(|k, v| {
        seen += 1;
        if mismatch.is_none() && twin.get(k) != Some(v) {
            mismatch = Some(format!(
                "content diverged on {:?}: sharded {v} vs twin {:?}",
                String::from_utf8_lossy(k),
                twin.get(k)
            ));
        }
    });
    if let Some(m) = mismatch {
        return Err(m);
    }
    if seen != twin.len() {
        return Err(format!(
            "iteration saw {seen} entries, twin holds {}",
            twin.len()
        ));
    }
    if chaos && stats.degradations == 0 {
        return Err("chaos run degraded no shard — bursts were ineffective".to_string());
    }
    if chaos {
        // Bursts only ever aim at the lower half of the stripes, and a
        // shard that never saw an off-format key must not degrade: any
        // degradation in the upper half means drift leaked across shards
        // (via routing, shared counters, or the policy).
        let half = (map.shard_count() / 2).max(1);
        for shard in half..map.shard_count() {
            if map.shard_mode(shard) != sepe_core::guard::GuardMode::Guarded {
                return Err(format!(
                    "shard {shard} degraded without ever seeing off-format traffic — \
                     blast radius was not confined"
                ));
            }
        }
    }
    check_metrics_against_ground_truth(&map, &stats)?;
    stats.checkpoints = 1;
    Ok(stats)
}

/// Cross-checks an exported metrics snapshot against the model-checked
/// ground truth the run itself established: guard drift totals must equal
/// [`ShardedMap::drift_counts`], the `shard_degrades` counter (and the
/// degrade event trace) must equal the worker-observed degradations, and
/// after the quiescent drain every opened migration epoch must be
/// finished. A no-op in `obs`-off builds, where the counters stay zero.
fn check_metrics_against_ground_truth<G>(
    map: &ShardedMap<Vec<u8>, u64, SynthesizedHash, G>,
    stats: &ConcurrentStats,
) -> Result<(), String>
where
    G: ByteHash + Clone + Send + Sync,
{
    if !sepe_obs::enabled() {
        return Ok(());
    }
    let registry = sepe_obs::Registry::new();
    map.export_metrics(&registry)
        .map_err(|e| format!("metrics export failed: {e}"))?;
    let snap = registry.snapshot();
    let (in_f, off_f) = map.drift_counts();
    let exported_in = snap.counter_family_total("guard_in_format");
    if exported_in != in_f {
        return Err(format!(
            "metrics drift: guard_in_format family totals {exported_in}, \
             drift_counts says {in_f}"
        ));
    }
    let exported_off = snap.counter_family_total("guard_off_format");
    if exported_off != off_f {
        return Err(format!(
            "metrics drift: guard_off_format family totals {exported_off}, \
             drift_counts says {off_f}"
        ));
    }
    let degrades = snap.counter("shard_degrades");
    if degrades != Some(stats.degradations as u64) {
        return Err(format!(
            "metrics drift: shard_degrades reads {degrades:?}, workers \
             observed {} degradations",
            stats.degradations
        ));
    }
    let events = map.degrade_events().len();
    if events != stats.degradations {
        return Err(format!(
            "metrics drift: degrade event trace holds {events} events, \
             workers observed {} degradations",
            stats.degradations
        ));
    }
    let opened = snap.counter_family_total("table_epochs_opened");
    let finished = snap.counter_family_total("table_epochs_finished");
    if opened != finished {
        return Err(format!(
            "metrics drift: {opened} epochs opened but {finished} finished \
             after the quiescent drain"
        ));
    }
    if stats.degradations > 0 && opened == 0 {
        return Err("metrics drift: shards degraded but no epoch was counted".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_baselines::CityHash;
    use sepe_core::regex::Regex;

    fn ssn_pool(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i % 10_000).into_bytes())
            .collect()
    }

    #[test]
    fn concurrent_run_agrees_with_twin() {
        let pattern = Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("pattern");
        let pool = ssn_pool(240);
        let stats = check_concurrent_map(
            &pattern,
            Family::Pext,
            CityHash::new(),
            &pool,
            ConcurrentRun {
                threads: 4,
                ops_per_thread: 2_000,
                seed: 0xC0C0,
                chaos: false,
            },
        )
        .expect("clean run agrees");
        assert_eq!(stats.threads, 4);
        assert_eq!(stats.ops, 8_000);
        assert_eq!(stats.checkpoints, 1);
        assert_eq!(stats.degradations, 0);
    }

    #[test]
    fn chaos_run_degrades_some_but_not_all_shards() {
        let pattern = Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("pattern");
        let pool = ssn_pool(240);
        let stats = check_concurrent_map(
            &pattern,
            Family::OffXor,
            CityHash::new(),
            &pool,
            ConcurrentRun {
                threads: 3,
                ops_per_thread: 4_000,
                seed: 0xD1F7,
                chaos: true,
            },
        )
        .expect("chaos run agrees");
        assert!(stats.degradations >= 1, "{stats:?}");
    }
}
