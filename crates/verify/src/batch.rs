//! Batch-vs-scalar differential: `hash_batch` must be bit-identical to the
//! per-key path *and* to the plan interpreter, at every width.
//!
//! The interleaved kernels in `sepe-core` reorder operations across lanes;
//! this module is the proof that reordering never changes a hash. Widths 1,
//! 3, 4, 7 and 8 cover every dispatch shape: pure scalar, the 4-wide
//! kernel, the 8-wide kernel, and both ragged tails. On BMI2 hosts the
//! caller runs the whole check twice — once natively and once under
//! [`sepe_core::bits::force_software_pext`] — so the soft-`pext` kernels
//! are exercised even where the hardware path would win the dispatch.

use crate::differential::Mismatch;
use crate::interp;
use sepe_core::hash::{ByteHash, HashBatch, SynthesizedHash};
use sepe_core::pattern::KeyPattern;
use sepe_core::synth::{synthesize, Family};
use sepe_core::Isa;

/// The batch widths every check runs: scalar, the two kernel widths, and
/// ragged tails on either side of the 4-wide kernel.
pub const WIDTHS: [usize; 5] = [1, 3, 4, 7, 8];

/// Cross-checks `hash_batch` against the scalar path and the interpreter
/// for all four families on one pattern, at every width in [`WIDTHS`].
///
/// Returns every disagreement; an empty vector means the batched kernels
/// are exact.
#[must_use]
pub fn check_pattern_batched(
    pattern: &KeyPattern,
    keys: &[Vec<u8>],
    seeds: &[u64],
) -> Vec<Mismatch> {
    let mut out = Vec::new();
    for family in Family::ALL {
        let plan = synthesize(pattern, family);
        for &seed in seeds {
            for isa in [Isa::Native, Isa::Portable] {
                let tuned = SynthesizedHash::new(plan.clone(), family, isa).with_seed(seed);
                for &width in &WIDTHS {
                    for chunk in keys.chunks(width) {
                        let refs: Vec<&[u8]> = chunk.iter().map(Vec::as_slice).collect();
                        let mut got = vec![0u64; refs.len()];
                        tuned.hash_batch(&refs, &mut got);
                        for (key, &actual) in chunk.iter().zip(&got) {
                            let spec = interp::interpret(&plan, family, seed, key);
                            let scalar = tuned.hash_bytes(key);
                            // The scalar path is itself checked against the
                            // spec by the `differential` suite; here both
                            // comparisons run so a batch mismatch reports
                            // which side it diverged from.
                            if actual != spec || actual != scalar {
                                out.push(Mismatch {
                                    family,
                                    isa,
                                    seed,
                                    key: key.clone(),
                                    expected: spec,
                                    actual,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Runs `f` with hardware `pext` dispatch forcibly disabled, restoring the
/// previous setting afterwards (also on panic). Hashes constructed inside
/// `f` take the software kernels even on BMI2 hosts.
pub fn with_forced_software_pext<T>(f: impl FnOnce() -> T) -> T {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            sepe_core::bits::force_software_pext(self.0);
        }
    }
    let _restore = Restore(sepe_core::bits::software_pext_forced());
    sepe_core::bits::force_software_pext(true);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential::DEFAULT_SEEDS;
    use crate::formats::RandomFormat;
    use sepe_core::regex::Regex;
    use sepe_keygen::SplitMix64;

    #[test]
    fn paper_formats_batch_exactly_on_both_dispatch_paths() {
        for re in [
            r"\d{3}-\d{2}-\d{4}",
            r"(([0-9]{3})\.){3}[0-9]{3}",
            r"[0-9]{16}([a-z]{4})?",
        ] {
            let pattern = Regex::compile(re).expect("compiles");
            let mut rng = SplitMix64::new(0xBA7C);
            let keys: Vec<Vec<u8>> = (0..17)
                .map(|_| {
                    (0..pattern.min_len())
                        .map(|i| {
                            let choices: Vec<u8> = pattern.bytes()[i].possible_bytes().collect();
                            choices[(rng.next_u64() % choices.len() as u64) as usize]
                        })
                        .collect()
                })
                .collect();
            let native = check_pattern_batched(&pattern, &keys, &DEFAULT_SEEDS);
            assert!(native.is_empty(), "{re}: {:?}", native.first());
            let soft = with_forced_software_pext(|| {
                check_pattern_batched(&pattern, &keys, &DEFAULT_SEEDS)
            });
            assert!(soft.is_empty(), "{re} (soft pext): {:?}", soft.first());
        }
    }

    #[test]
    fn random_formats_batch_exactly() {
        let mut rng = SplitMix64::new(0xBA7C_0002);
        for _ in 0..10 {
            let format = RandomFormat::generate(&mut rng);
            let pattern = format.pattern();
            let keys = format.sample_keys(&mut rng, 11);
            let mismatches = check_pattern_batched(&pattern, &keys, &[0, u64::MAX]);
            assert!(mismatches.is_empty(), "{:?}", mismatches.first());
        }
    }
}
