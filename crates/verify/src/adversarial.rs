//! HashDoS chaos harness: scripted attackers vs. the escalation ladder.
//!
//! The checks in this module drive the collision-storm detector and the
//! `Specialized → GuardedFallback → Keyed(seed) → Keyed(rotated seed)`
//! escalation ladder with the strongest attacker the threat model admits:
//! one who holds the binary, knows the synthesized plan and the fallback
//! hash, and (for the seed-leak phase) has read the current seed. Every
//! run keeps a `std::collections::HashMap` twin and a transcript of the
//! transitions the harness provoked, and requires:
//!
//! * **bounded damage** — once escalated, the longest bucket chain drops
//!   back to within a small factor of the benign baseline, however many
//!   crafted keys the attacker streams;
//! * **content integrity** — contents always match the twin, through
//!   escalations, incremental re-key migrations, and de-escalation;
//! * **counter discipline** — the `obs` escalation / de-escalation /
//!   seed-rotation counters exactly equal the harness transcript;
//! * **hysteresis** — benign workloads never trip the detector.

use std::collections::HashMap;
use std::sync::Mutex;

use sepe_containers::{AttackPolicy, ShardedMap, UnorderedMap};
use sepe_core::guard::{GuardMode, GuardedHash};
use sepe_core::hash::{ByteHash, FixedSeedSource, HashBatch, SynthesizedHash};
use sepe_core::pattern::KeyPattern;
use sepe_core::synth::Family;
use sepe_keygen::SplitMix64;
use sepe_obs::ObsEvent;

use crate::attacker;

/// Colliding keys each attack wave streams at the container.
const FLOOD_KEYS: usize = 48;

/// Post-escalation bound: the longest chain must come back to within this
/// factor of the benign baseline (with a small absolute floor so tiny
/// baselines don't make the bound vacuous or flaky).
const CHAIN_BOUND_FACTOR: usize = 4;
const CHAIN_BOUND_FLOOR: usize = 8;

/// Detector policy used by the attack checks: the production skew and
/// chain thresholds, but sized for harness pools and ticked twice per
/// decision so the hysteresis streaks are exercised, not bypassed.
fn harness_policy() -> AttackPolicy {
    AttackPolicy {
        min_len: 32,
        trip_streak: 2,
        quiet_streak: 2,
        ..AttackPolicy::default()
    }
}

fn chain_bound(benign_chain: usize) -> usize {
    (benign_chain.max(1) * CHAIN_BOUND_FACTOR).max(CHAIN_BOUND_FLOOR)
}

/// Tallies of one ladder run, for the suite summary line.
#[derive(Debug, Default, Clone, Copy)]
pub struct AdversarialStats {
    /// Container operations driven (inserts, lookups, removals).
    pub ops: u64,
    /// Escalation rungs the harness provoked and verified.
    pub escalations: u64,
    /// Quiet-window de-escalations provoked and verified.
    pub deescalations: u64,
    /// Keyed-rung seed rotations provoked and verified.
    pub rotations: u64,
    /// Full-content comparisons against the `HashMap` twin.
    pub checkpoints: u64,
    /// Worker threads spawned (sharded check only).
    pub threads: u64,
}

impl AdversarialStats {
    /// Accumulates another run's tallies.
    pub fn absorb(&mut self, other: AdversarialStats) {
        self.ops += other.ops;
        self.escalations += other.escalations;
        self.deescalations += other.deescalations;
        self.rotations += other.rotations;
        self.checkpoints += other.checkpoints;
        self.threads += other.threads;
    }
}

type GuardedMap<G> = UnorderedMap<Vec<u8>, u64, GuardedHash<SynthesizedHash, G>>;

fn check_twin<G: ByteHash>(
    map: &GuardedMap<G>,
    twin: &HashMap<Vec<u8>, u64>,
    when: &str,
) -> Result<(), String> {
    if map.len() != twin.len() {
        return Err(format!(
            "{when}: map holds {} entries, twin {}",
            map.len(),
            twin.len()
        ));
    }
    for (k, v) in twin {
        if map.get(k.as_slice()) != Some(v) {
            return Err(format!(
                "{when}: key {:?} is {:?} in the map, {v} in the twin",
                String::from_utf8_lossy(k),
                map.get(k.as_slice())
            ));
        }
    }
    Ok(())
}

/// Ticks the detector until it takes exactly one rung (the rotation rung
/// does not change the mode, so "one trip" is the unit, not "mode
/// changed"), then drains the re-key migration so the caller sees live
/// chains. `from` labels the failure message.
fn escalate_one_rung<G: ByteHash + Clone>(
    map: &mut GuardedMap<G>,
    policy: &AttackPolicy,
    seeds: &FixedSeedSource,
    from: GuardMode,
) -> Result<u64, String> {
    for _ in 0..8 {
        if map.maybe_escalate(policy, seeds) {
            map.finish_migration();
            return Ok(1);
        }
    }
    Err(format!(
        "detector never escalated off {from:?} under a sustained storm"
    ))
}

/// Drives one `UnorderedMap` up the full ladder and back down.
///
/// Phases: benign fill (must not escalate) → unkeyed flood forged against
/// `hash_of` (must reach `Degraded`, where the storm *persists* because
/// the fallback is equally precomputable, then `Keyed`, where the chain
/// bound is restored) → a second flood forged against the *keyed* hash,
/// simulating a seed leak (must rotate the seed and restore the bound) →
/// attack traffic removed (must de-escalate back to the specialized hash).
/// The twin is consulted at every phase boundary, and the `obs` counters
/// must equal the transcript at the end.
pub fn check_escalation_ladder<G>(
    pattern: &KeyPattern,
    family: Family,
    fallback: G,
    benign: &[Vec<u8>],
    seed: u64,
) -> Result<AdversarialStats, String>
where
    G: ByteHash + Clone,
{
    if benign.len() < 64 {
        return Err(format!("need ≥ 64 benign keys, got {}", benign.len()));
    }
    let hasher = GuardedHash::from_pattern(pattern, family, fallback);
    let mut map: GuardedMap<G> = UnorderedMap::with_hasher(hasher);
    let mut twin: HashMap<Vec<u8>, u64> = HashMap::new();
    let seeds = FixedSeedSource::new(seed | 1);
    let policy = harness_policy();
    let mut stats = AdversarialStats::default();

    for (i, k) in benign.iter().enumerate() {
        map.insert(k.clone(), i as u64);
        twin.insert(k.clone(), i as u64);
        stats.ops += 1;
    }
    // Headroom so the floods below cannot grow the table: the attacker
    // forges against the *current* bucket count, and a resize mid-stream
    // would dilute the storm (and test less than the worst case).
    map.reserve(4 * FLOOD_KEYS + benign.len());
    for _ in 0..4 {
        if map.maybe_escalate(&policy, &seeds) {
            return Err("benign fill escalated the specialized hasher".into());
        }
    }
    let bound = chain_bound(map.max_bucket_len());
    check_twin(&map, &twin, "after benign fill")?;
    stats.checkpoints += 1;

    // Phase 1: flood forged against the live routing (specialized hash /
    // off-format fallback — both adversary-computable).
    let flood = {
        let buckets = map.bucket_count() as u64;
        attacker::bucket_flood(|k| map.hash_of(k), buckets, FLOOD_KEYS, seed)
    };
    for (i, k) in flood.iter().enumerate() {
        map.insert(k.clone(), 1_000_000 + i as u64);
        twin.insert(k.clone(), 1_000_000 + i as u64);
        stats.ops += 1;
    }
    if map.max_bucket_len() < FLOOD_KEYS {
        return Err("unkeyed flood failed to pile onto one bucket".into());
    }
    stats.escalations += escalate_one_rung(&mut map, &policy, &seeds, GuardMode::Guarded)?;
    if map.guard_mode() != GuardMode::Degraded {
        return Err(format!(
            "first rung should be Degraded, got {:?}",
            map.guard_mode()
        ));
    }
    // The fallback is unkeyed: the same off-format flood still collides,
    // which is exactly why Degraded is not a safe terminal state.
    stats.escalations += escalate_one_rung(&mut map, &policy, &seeds, GuardMode::Degraded)?;
    if map.guard_mode() != GuardMode::Keyed {
        return Err(format!(
            "second rung should be Keyed, got {:?}",
            map.guard_mode()
        ));
    }
    if map.max_bucket_len() > bound {
        return Err(format!(
            "keyed re-hash left a chain of {} (bound {bound})",
            map.max_bucket_len()
        ));
    }
    check_twin(&map, &twin, "after escalating to Keyed")?;
    stats.checkpoints += 1;

    // Phase 2: the seed leaks — the attacker forges against the *keyed*
    // hash. The detector must respond by rotating the seed.
    let leak_flood = {
        let buckets = map.bucket_count() as u64;
        attacker::bucket_flood(|k| map.hash_of(k), buckets, FLOOD_KEYS, seed ^ 0xB00)
    };
    let probe = leak_flood[0].clone();
    let hash_before = map.hash_of(&probe);
    for (i, k) in leak_flood.iter().enumerate() {
        map.insert(k.clone(), 2_000_000 + i as u64);
        twin.insert(k.clone(), 2_000_000 + i as u64);
        stats.ops += 1;
    }
    if map.max_bucket_len() < FLOOD_KEYS {
        return Err("leaked-seed flood failed to pile onto one bucket".into());
    }
    let rotations_before = map.seed_rotations();
    stats.escalations += escalate_one_rung(&mut map, &policy, &seeds, GuardMode::Keyed)?;
    stats.rotations += 1;
    if map.guard_mode() != GuardMode::Keyed {
        return Err(format!(
            "rotation must stay on the keyed rung, got {:?}",
            map.guard_mode()
        ));
    }
    if map.hash_of(&probe) == hash_before {
        return Err("seed rotation did not change the keyed routing".into());
    }
    if sepe_obs::enabled() && map.seed_rotations() != rotations_before + 1 {
        return Err(format!(
            "seed rotation counter went {rotations_before} -> {} across one rotation",
            map.seed_rotations()
        ));
    }
    if map.max_bucket_len() > bound {
        return Err(format!(
            "rotated re-hash left a chain of {} (bound {bound})",
            map.max_bucket_len()
        ));
    }
    check_twin(&map, &twin, "after rotating the seed")?;
    stats.checkpoints += 1;

    // Phase 3: attack stops; a quiet window must re-arm the specialized
    // hasher (all the way down, not rung by rung).
    for k in flood.iter().chain(leak_flood.iter()) {
        if map.remove(k.as_slice()) != twin.remove(k.as_slice()) {
            return Err("map and twin disagreed while clearing attack keys".into());
        }
        stats.ops += 1;
    }
    let mut rearmed = false;
    for _ in 0..8 {
        if map.maybe_deescalate(&policy) {
            rearmed = true;
            break;
        }
    }
    if !rearmed || map.guard_mode() != GuardMode::Guarded {
        return Err(format!(
            "quiet window never re-armed the specialized hasher (mode {:?})",
            map.guard_mode()
        ));
    }
    map.finish_migration();
    stats.deescalations += 1;
    check_twin(&map, &twin, "after de-escalating")?;
    stats.checkpoints += 1;

    if sepe_obs::enabled() {
        let (esc, deesc, rot) = (map.escalations(), map.deescalations(), map.seed_rotations());
        if (esc, deesc, rot) != (stats.escalations, stats.deescalations, stats.rotations) {
            return Err(format!(
                "obs counters (esc {esc}, deesc {deesc}, rot {rot}) disagree with the \
                 transcript (esc {}, deesc {}, rot {})",
                stats.escalations, stats.deescalations, stats.rotations
            ));
        }
    }
    Ok(stats)
}

/// Runs a benign insert/lookup/remove churn workload with the *default*
/// (production) [`AttackPolicy`] ticked throughout, and fails if the
/// detector ever escalates: hysteresis must make benign traffic, including
/// its natural longest chains and churn-induced drift, invisible to the
/// ladder. Returns the number of detector ticks survived.
pub fn check_benign_stays_specialized<G>(
    pattern: &KeyPattern,
    family: Family,
    fallback: G,
    benign: &[Vec<u8>],
    seed: u64,
) -> Result<u64, String>
where
    G: ByteHash + Clone,
{
    let hasher = GuardedHash::from_pattern(pattern, family, fallback);
    let mut map: GuardedMap<G> = UnorderedMap::with_hasher(hasher);
    let seeds = FixedSeedSource::new(seed | 1);
    let policy = AttackPolicy::default();
    let mut rng = SplitMix64::new(seed ^ 0xBE9);
    let mut ticks = 0u64;

    let tick = |map: &mut GuardedMap<G>, ticks: &mut u64| -> Result<(), String> {
        if map.maybe_escalate(&policy, &seeds) {
            return Err(format!(
                "benign workload escalated after {ticks} calm ticks (chain {}, {} entries)",
                map.max_bucket_len(),
                map.len()
            ));
        }
        *ticks += 1;
        Ok(())
    };

    for round in 0..3u64 {
        for (i, k) in benign.iter().enumerate() {
            map.insert(k.clone(), round * 100_000 + i as u64);
            if i % 16 == 0 {
                tick(&mut map, &mut ticks)?;
            }
        }
        for k in benign {
            let _ = map.get(k.as_slice());
        }
        tick(&mut map, &mut ticks)?;
        for (i, k) in benign.iter().enumerate() {
            if rng.next_u64().is_multiple_of(2) || i.is_multiple_of(3) {
                map.remove(k.as_slice());
            }
        }
        tick(&mut map, &mut ticks)?;
    }
    if map.guard_mode() != GuardMode::Guarded {
        return Err(format!(
            "benign workload left the map in {:?}",
            map.guard_mode()
        ));
    }
    if sepe_obs::enabled() && map.escalations() != 0 {
        return Err(format!(
            "benign workload bumped the escalation counter to {}",
            map.escalations()
        ));
    }
    Ok(ticks)
}

/// The batched twin of [`check_escalation_ladder`]: the flood arrives via
/// `insert_batch`, lookups go through `get_batch` (benign, attack, and
/// missing keys interleaved), and both are re-checked *mid-migration*
/// while an escalation re-key is still draining. Returns ops driven.
pub fn check_batched_attack<G>(
    pattern: &KeyPattern,
    family: Family,
    fallback: G,
    benign: &[Vec<u8>],
    seed: u64,
) -> Result<u64, String>
where
    G: ByteHash + Clone,
    GuardedHash<SynthesizedHash, G>: HashBatch,
{
    let hasher = GuardedHash::from_pattern(pattern, family, fallback);
    let mut map: GuardedMap<G> = UnorderedMap::with_hasher(hasher);
    let mut twin: HashMap<Vec<u8>, u64> = HashMap::new();
    let seeds = FixedSeedSource::new(seed | 1);
    let policy = harness_policy();
    let mut ops = 0u64;

    let pairs: Vec<(Vec<u8>, u64)> = benign
        .iter()
        .enumerate()
        .map(|(i, k)| (k.clone(), i as u64))
        .collect();
    twin.extend(pairs.iter().cloned());
    ops += pairs.len() as u64;
    map.insert_batch(pairs);
    map.reserve(4 * FLOOD_KEYS + benign.len());
    let bound = chain_bound(map.max_bucket_len());

    let flood = {
        let buckets = map.bucket_count() as u64;
        attacker::bucket_flood(|k| map.hash_of(k), buckets, FLOOD_KEYS, seed ^ 0xBA7)
    };
    let flood_pairs: Vec<(Vec<u8>, u64)> = flood
        .iter()
        .enumerate()
        .map(|(i, k)| (k.clone(), 1_000_000 + i as u64))
        .collect();
    let prev = map.insert_batch(flood_pairs.clone());
    if prev.iter().any(Option::is_some) {
        return Err("batched flood reported phantom previous values".into());
    }
    twin.extend(flood_pairs);
    ops += flood.len() as u64;
    if map.max_bucket_len() < FLOOD_KEYS {
        return Err("batched flood failed to pile onto one bucket".into());
    }

    let missing: Vec<Vec<u8>> = (0..16)
        .map(|i| format!("mss-{seed:08x}-{i:04x}").into_bytes())
        .collect();
    let batch_agree = |map: &GuardedMap<G>,
                       twin: &HashMap<Vec<u8>, u64>,
                       when: &str,
                       ops: &mut u64|
     -> Result<(), String> {
        let keys: Vec<&[u8]> = benign
            .iter()
            .chain(flood.iter())
            .chain(missing.iter())
            .map(Vec::as_slice)
            .collect();
        let got = map.get_batch(&keys);
        *ops += keys.len() as u64;
        for (k, g) in keys.iter().zip(&got) {
            if g.copied() != twin.get(*k).copied() {
                return Err(format!(
                    "{when}: get_batch disagreed with the twin on {:?}",
                    String::from_utf8_lossy(k)
                ));
            }
        }
        Ok(())
    };
    batch_agree(&map, &twin, "under flood, before escalation", &mut ops)?;

    // Trip the first rung but do NOT drain: the batched paths must stay
    // correct while the re-key migration is in flight.
    for _ in 0..4 {
        if map.maybe_escalate(&policy, &seeds) {
            break;
        }
    }
    if map.guard_mode() != GuardMode::Degraded || !map.migration_in_flight() {
        return Err(format!(
            "expected an in-flight Degraded migration, got {:?} (in flight: {})",
            map.guard_mode(),
            map.migration_in_flight()
        ));
    }
    batch_agree(&map, &twin, "mid-migration", &mut ops)?;
    let wave: Vec<(Vec<u8>, u64)> = (0..16)
        .map(|i| {
            (
                format!("mid-{seed:08x}-{i:04x}").into_bytes(),
                3_000_000 + i as u64,
            )
        })
        .collect();
    twin.extend(wave.iter().cloned());
    ops += wave.len() as u64;
    map.insert_batch(wave);
    batch_agree(
        &map,
        &twin,
        "mid-migration, after batched inserts",
        &mut ops,
    )?;

    // Continue to the keyed rung; the storm persists on the fallback.
    map.finish_migration();
    for _ in 0..8 {
        if map.guard_mode() == GuardMode::Keyed {
            break;
        }
        map.maybe_escalate(&policy, &seeds);
    }
    if map.guard_mode() != GuardMode::Keyed {
        return Err("batched storm never reached the keyed rung".into());
    }
    map.finish_migration();
    if map.max_bucket_len() > bound {
        return Err(format!(
            "keyed re-hash left a chain of {} (bound {bound})",
            map.max_bucket_len()
        ));
    }
    batch_agree(&map, &twin, "after the keyed re-hash", &mut ops)?;
    Ok(ops)
}

/// Configuration for [`check_sharded_attack`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedAttackRun {
    /// Benign worker threads (each owns a disjoint key partition).
    pub threads: usize,
    /// Operations per worker thread.
    pub ops_per_thread: usize,
    /// Seed for key partitioning, per-thread RNGs, and the seed source.
    pub seed: u64,
}

fn sharded_twin_check<G>(
    map: &ShardedMap<Vec<u8>, u64, SynthesizedHash, G>,
    twin: &Mutex<HashMap<Vec<u8>, u64>>,
    when: &str,
) -> Result<(), String>
where
    G: ByteHash + Clone,
    GuardedHash<SynthesizedHash, G>: HashBatch,
{
    let twin = twin
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if map.len() != twin.len() {
        return Err(format!(
            "{when}: sharded map holds {} entries, twin {}",
            map.len(),
            twin.len()
        ));
    }
    // Batched lookups across shards double as the sharded batch-path
    // coverage: every twin key must come back with the twin's value.
    let keys: Vec<&[u8]> = twin.keys().map(Vec::as_slice).collect();
    let got = map.get_batch(&keys);
    for (k, g) in keys.iter().zip(&got) {
        if g.as_ref() != twin.get(*k) {
            return Err(format!(
                "{when}: get_batch disagreed with the twin on {:?}",
                String::from_utf8_lossy(k)
            ));
        }
    }
    Ok(())
}

/// A crafted flood against one shard of a live, concurrently hammered
/// [`ShardedMap`] — the integration check for the whole defense.
///
/// Worker threads churn disjoint benign partitions against a
/// `Mutex<HashMap>` twin while the attacker (who can compute the routing
/// hash and read the shard layout) streams keys that all land in one
/// bucket of one shard. The detector must escalate *that shard only*
/// through `Degraded` to `Keyed` and restore the chain bound; a scripted
/// seed rotation and a quiet-window de-escalation follow. Shard routing is
/// frozen at construction, so every rung leaves the attack keys in the
/// same shard — the blast radius stays one shard by design. Counters and
/// the per-shard event transcript must match the harness transcript
/// exactly.
pub fn check_sharded_attack<G>(
    pattern: &KeyPattern,
    family: Family,
    fallback: G,
    benign: &[Vec<u8>],
    run: ShardedAttackRun,
) -> Result<AdversarialStats, String>
where
    G: ByteHash + Clone + Send + Sync,
    GuardedHash<SynthesizedHash, G>: HashBatch,
{
    const SHARDS: usize = 8;
    let hasher = GuardedHash::from_pattern(pattern, family, fallback);
    // The attacker's oracle: a clone pinned (by never being escalated) to
    // the same Guarded routing the map's frozen shard router uses, so it
    // predicts both the shard and the in-shard bucket of off-format keys.
    let oracle = hasher.clone();
    let map: ShardedMap<Vec<u8>, u64, SynthesizedHash, G> = ShardedMap::with_hasher(hasher, SHARDS);
    let twin: Mutex<HashMap<Vec<u8>, u64>> = Mutex::new(HashMap::new());
    let seeds = FixedSeedSource::new(run.seed | 1);
    let policy = harness_policy();
    let mut stats = AdversarialStats::default();

    for (i, k) in benign.iter().enumerate() {
        map.insert(k.clone(), i as u64);
        twin.lock().unwrap().insert(k.clone(), i as u64);
        stats.ops += 1;
    }

    // Pre-grow the target shard with throwaway keys so its bucket count
    // is stable while the flood streams in (the attacker forges against
    // the final layout; a mid-stream resize would dilute the storm).
    let shard_bits = map.shard_count().trailing_zeros();
    let target = 3 % map.shard_count();
    let mut filler = Vec::new();
    let mut i = 0u64;
    while filler.len() < 512 {
        let k = format!("flr-{i:08x}").into_bytes();
        i += 1;
        if map.shard_of(&k) == target {
            filler.push(k);
        }
    }
    for k in &filler {
        map.insert(k.clone(), u64::MAX);
    }
    for k in &filler {
        map.remove(k.as_slice());
    }
    let buckets = map.shard_bucket_count(target) as u64;
    let bound = chain_bound(map.shard_max_bucket_len(target));

    // Forge the flood with full layout knowledge: same shard (top bits of
    // the frozen router hash) and same bucket (hash mod bucket count).
    let flood = {
        let mut keys = Vec::with_capacity(FLOOD_KEYS);
        let mut bucket = None;
        let mut i = 0u64;
        while keys.len() < FLOOD_KEYS {
            let k = format!("atk-{:08x}-{i:016x}", run.seed).into_bytes();
            i += 1;
            let h = oracle.hash_bytes(&k);
            if (h >> (64 - shard_bits)) as usize != target {
                continue;
            }
            let b = *bucket.get_or_insert(h % buckets);
            if h % buckets == b {
                keys.push(k);
            }
        }
        keys
    };

    let worker_errors: Vec<String> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..run.threads {
            let partition: Vec<&Vec<u8>> = benign
                .iter()
                .enumerate()
                .filter(|(i, _)| i % run.threads == t)
                .map(|(_, k)| k)
                .collect();
            let (map, twin) = (&map, &twin);
            handles.push(scope.spawn(move || -> Result<u64, String> {
                let mut rng = SplitMix64::new(run.seed ^ (t as u64) << 8);
                let mut ops = 0u64;
                for _ in 0..run.ops_per_thread {
                    let k = partition[(rng.next_u64() % partition.len() as u64) as usize];
                    // Disjoint partitions make each per-key history
                    // single-writer, so op results are comparable even
                    // though the twin lock and the shard lock are taken
                    // separately.
                    match rng.next_u64() % 3 {
                        0 => {
                            let v = rng.next_u64() >> 1;
                            let got = map.insert(k.clone(), v);
                            let want = twin.lock().unwrap().insert(k.clone(), v);
                            if got != want {
                                return Err(format!("insert saw {got:?}, twin {want:?}"));
                            }
                        }
                        1 => {
                            let got = map.get(k.as_slice());
                            let want = twin.lock().unwrap().get(k.as_slice()).copied();
                            if got != want {
                                return Err(format!("get saw {got:?}, twin {want:?}"));
                            }
                        }
                        _ => {
                            let got = map.remove(k.as_slice());
                            let want = twin.lock().unwrap().remove(k.as_slice());
                            if got != want {
                                return Err(format!("remove saw {got:?}, twin {want:?}"));
                            }
                        }
                    }
                    ops += 1;
                }
                Ok(ops)
            }));
        }

        // The attack runs while the workers churn: stream the flood, then
        // tick the detector (and drain re-key migrations) until the
        // target shard reaches the keyed rung.
        let mut flood_it = flood.iter().enumerate();
        let mut err = None;
        let mut escalated = 0u64;
        'attack: {
            for (i, k) in &mut flood_it {
                map.insert(k.clone(), 1_000_000 + i as u64);
                twin.lock().unwrap().insert(k.clone(), 1_000_000 + i as u64);
                stats.ops += 1;
            }
            for _ in 0..16 {
                escalated += map.maybe_escalate(&policy, &seeds) as u64;
                map.migrate(2048);
                if map.shard_mode(target) == GuardMode::Keyed {
                    break;
                }
            }
            if map.shard_mode(target) != GuardMode::Keyed {
                err = Some(format!(
                    "target shard never reached Keyed (mode {:?}, {escalated} rungs)",
                    map.shard_mode(target)
                ));
                break 'attack;
            }
            if escalated != 2 {
                err = Some(format!("expected 2 detector rungs, saw {escalated}"));
                break 'attack;
            }
            stats.escalations += escalated;

            // Scripted seed rotation on the keyed rung (the operator's
            // response to a suspected leak), then the storm ends.
            map.escalate_shard(target, &seeds);
            stats.escalations += 1;
            stats.rotations += 1;
            map.finish_migrations();
            if map.shard_max_bucket_len(target) > bound {
                err = Some(format!(
                    "keyed shard still has a chain of {} (bound {bound})",
                    map.shard_max_bucket_len(target)
                ));
                break 'attack;
            }
            for k in &flood {
                map.remove(k.as_slice());
                twin.lock().unwrap().remove(k.as_slice());
                stats.ops += 1;
            }
            for _ in 0..8 {
                if map.maybe_deescalate(&policy) > 0 {
                    stats.deescalations += 1;
                    break;
                }
            }
            if map.shard_mode(target) != GuardMode::Guarded {
                err = Some(format!(
                    "quiet window never re-armed shard {target} (mode {:?})",
                    map.shard_mode(target)
                ));
            }
        }

        let mut errors: Vec<String> = err.into_iter().collect();
        for (t, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(Ok(ops)) => {
                    stats.ops += ops;
                    stats.threads += 1;
                }
                Ok(Err(e)) => errors.push(format!("worker {t}: {e}")),
                Err(_) => errors.push(format!("worker {t} panicked")),
            }
        }
        errors
    });
    if let Some(e) = worker_errors.first() {
        return Err(format!("{e} ({} errors total)", worker_errors.len()));
    }

    map.finish_migrations();
    for i in 0..map.shard_count() {
        if i != target && map.shard_mode(i) != GuardMode::Guarded {
            return Err(format!(
                "escalation leaked to sibling shard {i} ({:?})",
                map.shard_mode(i)
            ));
        }
    }
    sharded_twin_check(&map, &twin, "after the attack")?;
    stats.checkpoints += 1;

    if sepe_obs::enabled() {
        let (esc, deesc, rot) = (
            map.shard_escalation_count(),
            map.shard_deescalation_count(),
            map.shard_seed_rotation_count(),
        );
        if (esc, deesc, rot) != (stats.escalations, stats.deescalations, stats.rotations) {
            return Err(format!(
                "shard counters (esc {esc}, deesc {deesc}, rot {rot}) disagree with the \
                 transcript (esc {}, deesc {}, rot {})",
                stats.escalations, stats.deescalations, stats.rotations
            ));
        }
        let names: Vec<&str> = map
            .degrade_events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    ObsEvent::ShardEscalate { shard }
                    | ObsEvent::ShardDeescalate { shard }
                    | ObsEvent::SeedRotation { shard } if *shard == target as u64
                )
            })
            .map(ObsEvent::name)
            .collect();
        let want = [
            "shard_escalate",
            "shard_escalate",
            "seed_rotation",
            "shard_deescalate",
        ];
        if names != want {
            return Err(format!(
                "target-shard event transcript {names:?} != expected {want:?}"
            ));
        }
    }
    Ok(stats)
}
