//! The differential driver: tuned hash vs. specification interpreter.
//!
//! For each family a plan is synthesized once, then evaluated two ways on
//! the same keys: through [`SynthesizedHash`] (the optimized runtime, on
//! both the native and the portable ISA path) and through
//! [`crate::interp::interpret`] (the byte-at-a-time specification). Any
//! disagreement is reported as a [`Mismatch`] carrying everything needed to
//! reproduce it.

use crate::interp;
use sepe_core::hash::{ByteHash, SynthesizedHash};
use sepe_core::pattern::KeyPattern;
use sepe_core::synth::{synthesize, Family};
use sepe_core::Isa;

/// One disagreement between the tuned hash and the interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// The family whose plan disagreed.
    pub family: Family,
    /// The ISA path the tuned hash ran on.
    pub isa: Isa,
    /// The seed both sides used.
    pub seed: u64,
    /// The offending key.
    pub key: Vec<u8>,
    /// What the specification computes.
    pub expected: u64,
    /// What the tuned hash computed.
    pub actual: u64,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({:?}, seed {:#x}) on {:?}: spec {:#018x}, got {:#018x}",
            self.family, self.isa, self.seed, self.key, self.expected, self.actual
        )
    }
}

/// Seeds worth covering: zero (the default), a high-entropy odd constant,
/// and all-ones (stresses the seed-mixing paths).
pub const DEFAULT_SEEDS: [u64; 3] = [0, 0x9E37_79B9_7F4A_7C15, u64::MAX];

/// Cross-checks all four families on one pattern over the given keys.
///
/// Every `(family, isa, seed, key)` combination is evaluated; mismatches
/// are collected rather than panicking so a caller can report them all.
#[must_use]
pub fn check_pattern(pattern: &KeyPattern, keys: &[Vec<u8>], seeds: &[u64]) -> Vec<Mismatch> {
    let mut out = Vec::new();
    for family in Family::ALL {
        let plan = synthesize(pattern, family);
        for &seed in seeds {
            for isa in [Isa::Native, Isa::Portable] {
                let tuned = SynthesizedHash::new(plan.clone(), family, isa).with_seed(seed);
                for key in keys {
                    let expected = interp::interpret(&plan, family, seed, key);
                    let actual = tuned.hash_bytes(key);
                    if expected != actual {
                        out.push(Mismatch {
                            family,
                            isa,
                            seed,
                            key: key.clone(),
                            expected,
                            actual,
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_core::regex::Regex;

    #[test]
    fn the_paper_formats_agree_with_the_spec() {
        for re in [
            r"\d{3}-\d{2}-\d{4}",
            r"(([0-9]{3})\.){3}[0-9]{3}",
            r"[0-9]{100}",
            r"[0-9]{16}([a-z]{4})?",
        ] {
            let pattern = Regex::compile(re).expect("compiles");
            let mut rng = sepe_keygen::SplitMix64::new(0xDEAD_BEEF);
            // Sample keys directly off the pattern bytes.
            let keys: Vec<Vec<u8>> = (0..50)
                .map(|_| {
                    let take_all = rng.next_u64().is_multiple_of(2);
                    let len = if take_all {
                        pattern.max_len()
                    } else {
                        pattern.min_len()
                    };
                    (0..len)
                        .map(|i| {
                            let choices: Vec<u8> = pattern.bytes()[i].possible_bytes().collect();
                            choices[(rng.next_u64() % choices.len() as u64) as usize]
                        })
                        .collect()
                })
                .collect();
            let mismatches = check_pattern(&pattern, &keys, &DEFAULT_SEEDS);
            assert!(mismatches.is_empty(), "{re}: {:?}", mismatches.first());
        }
    }
}
