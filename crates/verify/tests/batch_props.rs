//! Property-based tests for the batched hashing kernels: for seeded-random
//! formats and keys, `hash_batch` is bit-identical to the scalar path and
//! to the plan interpreter at every width (ragged tails included), with
//! hardware `pext` dispatch forced both on and off.

use proptest::prelude::*;
use sepe_core::hash::{ByteHash, HashBatch, SynthesizedHash};
use sepe_core::synth::{synthesize, Family};
use sepe_core::Isa;
use sepe_keygen::SplitMix64;
use sepe_verify::batch::{with_forced_software_pext, WIDTHS};
use sepe_verify::formats::RandomFormat;
use sepe_verify::interp;

proptest! {
    #[test]
    fn hash_batch_equals_scalar_and_interpreter(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        let keys = format.sample_keys(&mut rng, 11);
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let hash_seed = rng.next_u64();
        for family in Family::ALL {
            let plan = synthesize(&pattern, family);
            for isa in [Isa::Native, Isa::Portable] {
                let tuned =
                    SynthesizedHash::new(plan.clone(), family, isa).with_seed(hash_seed);
                for &width in &WIDTHS {
                    for chunk in refs.chunks(width) {
                        let mut got = vec![0u64; chunk.len()];
                        tuned.hash_batch(chunk, &mut got);
                        for (&key, &actual) in chunk.iter().zip(&got) {
                            prop_assert_eq!(
                                actual,
                                tuned.hash_bytes(key),
                                "{} {:?} width {} scalar mismatch on {:?}",
                                family, isa, width, key
                            );
                            prop_assert_eq!(
                                actual,
                                interp::interpret(&plan, family, hash_seed, key),
                                "{} {:?} width {} interpreter mismatch on {:?}",
                                family, isa, width, key
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn hash_batch_is_dispatch_independent(seed in any::<u64>()) {
        // The same keys, hashed with hardware pext allowed and then with
        // the software kernels forced, must agree lane for lane. Hashes
        // are constructed inside each arm because dispatch is cached at
        // construction time.
        let mut rng = SplitMix64::new(seed);
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        let keys = format.sample_keys(&mut rng, 9);
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let plan = synthesize(&pattern, Family::Pext);
        let hash_seed = rng.next_u64();

        let run = |_: ()| {
            let tuned = SynthesizedHash::new(plan.clone(), Family::Pext, Isa::Native)
                .with_seed(hash_seed);
            let mut out = vec![0u64; refs.len()];
            // Width 7 exercises the 4-wide kernel plus a ragged tail.
            for (chunk, slot) in refs.chunks(7).zip(out.chunks_mut(7)) {
                tuned.hash_batch(chunk, slot);
            }
            out
        };
        let native = run(());
        let soft = with_forced_software_pext(|| run(()));
        for (i, (&n, &s)) in native.iter().zip(&soft).enumerate() {
            prop_assert_eq!(n, s, "lane {} differs across pext dispatch", i);
            prop_assert_eq!(
                n,
                interp::interpret(&plan, Family::Pext, hash_seed, &keys[i]),
                "lane {} disagrees with the interpreter",
                i
            );
        }
    }

    #[test]
    fn ragged_tails_match_full_batches(seed in any::<u64>()) {
        // Hashing a pool in one call must equal hashing it in uneven
        // chunks: the chunk boundary never leaks into the values.
        let mut rng = SplitMix64::new(seed);
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        let keys = format.sample_keys(&mut rng, 13);
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        for family in Family::ALL {
            let tuned = SynthesizedHash::from_pattern(&pattern, family);
            let mut whole = vec![0u64; refs.len()];
            tuned.hash_batch(&refs, &mut whole);
            for &width in &WIDTHS {
                let mut chunked = vec![0u64; refs.len()];
                for (chunk, slot) in refs.chunks(width).zip(chunked.chunks_mut(width)) {
                    tuned.hash_batch(chunk, slot);
                }
                prop_assert_eq!(&whole, &chunked, "{} width {}", family, width);
            }
        }
    }
}
