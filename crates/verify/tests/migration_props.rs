//! Property-based tests for the epoch migration machinery: `resynthesize`
//! must reset the drift counters and the reservoir *exactly* (a guard that
//! keeps stale counts re-degrades on phantom drift), and `hash_of` must
//! agree with a freshly constructed scalar [`SynthesizedHash`] across an
//! epoch boundary — the live hasher routes through the new plan even while
//! stored entries still sit in the old epoch's buckets.

use proptest::prelude::*;
use sepe_containers::UnorderedMap;
use sepe_core::guard::{GuardMode, GuardedHash};
use sepe_core::hash::{stl_hash_bytes, ByteHash};
use sepe_core::synth::Family;
use sepe_core::SynthesizedHash;
use sepe_keygen::SplitMix64;
use sepe_verify::faults::mutate_off_format;
use sepe_verify::formats::RandomFormat;

#[derive(Clone)]
struct Stl;
impl ByteHash for Stl {
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        stl_hash_bytes(key, 0)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `resynthesize()` rearms the guard completely: lifetime counters,
    /// window counters, reservoir and mode all return to their fresh
    /// state, no matter what traffic preceded the call.
    #[test]
    fn resynthesize_resets_stats_and_reservoir_exactly(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        for family in Family::ALL {
            let hasher = GuardedHash::from_pattern(&pattern, family, Stl);
            let mut map: UnorderedMap<Vec<u8>, u64, _> = UnorderedMap::with_hasher(hasher);
            let mut inserted = std::collections::HashSet::new();
            let mut i = 0u64;
            for key in format.sample_keys(&mut rng, 24) {
                map.insert(key.clone(), i);
                inserted.insert(key.clone());
                i += 1;
                // Off-format traffic populates both counters and reservoir.
                let off = mutate_off_format(&pattern, &key, &mut rng);
                inserted.insert(off.clone());
                map.insert(off, i);
                i += 1;
            }
            prop_assert!(map.drift_stats().off_format() > 0, "{family}: no drift recorded");
            prop_assert!(
                !map.hasher().reservoir_keys().is_empty(),
                "{family}: empty reservoir"
            );
            prop_assert!(map.resynthesize().is_applied(), "{family}: resynthesize refused");
            let stats = map.drift_stats();
            prop_assert_eq!(stats.in_format(), 0, "{} lifetime in_format survived", family);
            prop_assert_eq!(stats.off_format(), 0, "{} lifetime off_format survived", family);
            prop_assert_eq!(stats.window_counts(), (0, 0), "{} window survived", family);
            prop_assert!(
                map.hasher().reservoir_keys().is_empty(),
                "{family}: reservoir survived resynthesize"
            );
            prop_assert_eq!(map.guard_mode(), GuardMode::Guarded, "{} mode", family);
            // The epoch the resynthesize opened must drain losslessly.
            map.finish_migration();
            prop_assert_eq!(map.len(), inserted.len(), "{} entries lost across the epoch", family);
        }
    }

    /// Mid-migration, `hash_of` agrees with an independently constructed
    /// scalar `SynthesizedHash` over the widened pattern, for every family:
    /// the epoch boundary changes where entries *live*, never how live
    /// traffic is hashed.
    #[test]
    fn hash_of_matches_scalar_hash_across_an_epoch_boundary(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        let clean = format.sample_keys(&mut rng, 24);
        for family in Family::ALL {
            let hasher = GuardedHash::from_pattern(&pattern, family, Stl);
            let mut map: UnorderedMap<Vec<u8>, u64, _> = UnorderedMap::with_hasher(hasher);
            for (i, key) in clean.iter().enumerate() {
                map.insert(key.clone(), i as u64);
                map.insert(mutate_off_format(&pattern, key, &mut rng), i as u64);
            }
            prop_assert!(map.resynthesize().is_applied(), "{family}: resynthesize refused");
            prop_assert!(map.migration_in_flight(), "{family}: no epoch in flight");

            // The widened pattern the guard now enforces, and a scalar
            // hash built from scratch for it, must reproduce `hash_of` on
            // every in-format key while the old epoch still holds entries.
            let widened = map.hasher().guard().pattern().clone();
            let scalar = SynthesizedHash::from_pattern(&widened, family);
            for key in &clean {
                prop_assert!(widened.matches(key), "{family}: widening dropped {key:?}");
                prop_assert_eq!(
                    map.hash_of(key),
                    scalar.hash_bytes(key),
                    "{} diverged from the scalar hash mid-migration on {:?}",
                    family,
                    key
                );
            }
            // Same agreement after the drain: the boundary is invisible.
            map.finish_migration();
            for key in &clean {
                prop_assert_eq!(
                    map.hash_of(key),
                    scalar.hash_bytes(key),
                    "{} diverged from the scalar hash after the drain on {:?}",
                    family,
                    key
                );
            }
        }
    }
}
