//! Property-based tests for the parallel candidate search and the plan
//! cache: over seeded random formats, the parallel search must return the
//! exact bytes (and the exact deterministic statistics) of the sequential
//! search at any thread count, and a [`PlanCache`] hit must be
//! indistinguishable from a fresh search.

use proptest::prelude::*;
use sepe_core::cache::PlanCache;
use sepe_core::plan_io::plan_to_string;
use sepe_core::synth::{synthesize, synthesize_parallel_with_stats, synthesize_with_stats, Family};
use sepe_keygen::SplitMix64;
use sepe_verify::formats::RandomFormat;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel and sequential searches agree bit-for-bit on random
    /// formats: identical serialized `Plan` bytes and identical
    /// `candidates_considered`, at every thread count.
    #[test]
    fn parallel_plan_bytes_equal_sequential(seed in any::<u64>(), jobs in 1usize..=8) {
        let mut rng = SplitMix64::new(seed);
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        for family in Family::ALL {
            let (seq_plan, seq_stats) = synthesize_with_stats(&pattern, family);
            let (par_plan, par_stats) = synthesize_parallel_with_stats(&pattern, family, jobs);
            prop_assert_eq!(
                plan_to_string(&par_plan),
                plan_to_string(&seq_plan),
                "{} jobs={}: plan bytes diverged",
                family,
                jobs
            );
            prop_assert_eq!(
                par_stats.candidates_considered,
                seq_stats.candidates_considered,
                "{} jobs={}: candidates_considered diverged",
                family,
                jobs
            );
            prop_assert_eq!(
                par_stats.work_units,
                seq_stats.work_units,
                "{} jobs={}: work_units diverged",
                family,
                jobs
            );
        }
    }

    /// A cache hit is semantically equal to a fresh search, for any
    /// random format and any family — and re-probing never mutates the
    /// memoized plan.
    #[test]
    fn cache_hit_equals_fresh_search(seed in any::<u64>()) {
        let cache = PlanCache::new(Family::ALL.len());
        let mut rng = SplitMix64::new(seed);
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        for family in Family::ALL {
            let fresh = synthesize(&pattern, family);
            prop_assert!(
                cache.lookup(&pattern, family).is_none(),
                "{}: cold cache must miss",
                family
            );
            cache.insert(&pattern, family, fresh.clone());
            for probe in 0..2 {
                let hit = cache.lookup(&pattern, family);
                prop_assert_eq!(
                    hit.as_ref().map(plan_to_string),
                    Some(plan_to_string(&fresh)),
                    "{} probe {}: memoized plan diverged",
                    family,
                    probe
                );
            }
        }
        prop_assert_eq!(cache.misses(), Family::ALL.len() as u64);
        prop_assert_eq!(cache.hits(), 2 * Family::ALL.len() as u64);
    }
}
