//! Property-based tests for the format-guard layer: for seeded-random
//! formats, `FormatGuard::matches` agrees with the interpreter's
//! independent notion of format membership, every generated in-format key
//! is accepted, and every single-byte out-of-range mutation is rejected.

use proptest::prelude::*;
use sepe_core::guard::{FormatGuard, GuardedHash};
use sepe_core::hash::{stl_hash_bytes, ByteHash};
use sepe_core::synth::Family;
use sepe_keygen::SplitMix64;
use sepe_verify::formats::RandomFormat;
use sepe_verify::interp::spec_matches;

#[derive(Clone)]
struct Stl;
impl ByteHash for Stl {
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        stl_hash_bytes(key, 0)
    }
}

proptest! {
    #[test]
    fn guard_agrees_with_the_spec_on_random_formats(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        let guard = FormatGuard::compile(&pattern);
        for key in format.sample_keys(&mut rng, 8) {
            prop_assert!(spec_matches(&pattern, &key), "sampled key must be in-format");
            prop_assert!(guard.matches(&key), "guard must accept in-format key {key:?}");
        }
        // Arbitrary byte strings of plausible lengths: the guard and the
        // spec must agree whatever the verdict is.
        for _ in 0..8 {
            let len = (rng.next_u64() % (pattern.max_len() as u64 + 3)) as usize;
            let key: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
            prop_assert_eq!(guard.matches(&key), spec_matches(&pattern, &key), "{:?}", key);
        }
    }

    #[test]
    fn single_byte_out_of_range_mutations_are_rejected(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        let guard = FormatGuard::compile(&pattern);
        let key = format.sample_key(&mut rng);
        for i in 0..key.len() {
            let p = pattern.bytes()[i];
            if p.const_mask() == 0 {
                continue; // fully variable position: no out-of-range value exists
            }
            // Flip one constant bit — the smallest possible range violation.
            let mut mutated = key.clone();
            mutated[i] ^= 1 << p.const_mask().trailing_zeros();
            prop_assert!(!spec_matches(&pattern, &mutated));
            prop_assert!(
                !guard.matches(&mutated),
                "guard must reject out-of-range byte at {i} in {mutated:?}"
            );
        }
    }

    #[test]
    fn length_edits_are_rejected(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        let guard = FormatGuard::compile(&pattern);
        let mut long = format.sample_key(&mut rng);
        long.resize(pattern.max_len() + 1, b'0');
        prop_assert!(!guard.matches(&long));
        let key = format.sample_key(&mut rng);
        if pattern.min_len() > 0 {
            let short = &key[..pattern.min_len() - 1];
            prop_assert!(!guard.matches(short));
        }
    }

    #[test]
    fn guarded_hash_preserves_in_format_hashes(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        for family in Family::ALL {
            let guarded = GuardedHash::from_pattern(&pattern, family, Stl);
            for key in format.sample_keys(&mut rng, 4) {
                prop_assert_eq!(
                    guarded.hash_bytes(&key),
                    guarded.specialized().hash_bytes(&key),
                    "{} on {:?}", family, key
                );
            }
        }
    }
}
