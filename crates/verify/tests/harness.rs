//! Bounded end-to-end runs of the verification harness — these are the
//! tier-1 differential-correctness gates.

use sepe_core::regex::Regex;
use sepe_core::synth::{synthesize, Family};
use sepe_keygen::{Distribution, KeyFormat, KeySampler, SplitMix64};
use sepe_verify::formats::RandomFormat;
use sepe_verify::{differential, invariants};

/// All four families, both ISA paths, three seeds, 120 seeded-random
/// formats: the tuned hashes and the specification interpreter must agree
/// on every key.
#[test]
fn tuned_hashes_match_the_interpreter_on_random_formats() {
    let mut rng = SplitMix64::new(0xD1FF_E2E2);
    for i in 0..120 {
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        let keys = format.sample_keys(&mut rng, 24);
        let mismatches = differential::check_pattern(&pattern, &keys, &differential::DEFAULT_SEEDS);
        assert!(
            mismatches.is_empty(),
            "random format {i} ({format:?}): {}",
            mismatches[0]
        );
    }
}

/// The eight evaluated formats of the paper, with keys drawn the way the
/// experiments draw them.
#[test]
fn tuned_hashes_match_the_interpreter_on_paper_formats() {
    for format in KeyFormat::EVALUATED {
        let pattern = Regex::compile(&format.regex()).expect("evaluated formats compile");
        for dist in Distribution::ALL {
            let keys: Vec<Vec<u8>> = KeySampler::new(format, dist, 0xC0DE)
                .pool(60)
                .into_iter()
                .map(String::into_bytes)
                .collect();
            let mismatches =
                differential::check_pattern(&pattern, &keys, &differential::DEFAULT_SEEDS);
            assert!(
                mismatches.is_empty(),
                "{} {}: {}",
                format.name(),
                dist.name(),
                mismatches[0]
            );
        }
    }
}

/// Structural invariants and the constructive Pext bijection over random
/// formats.
#[test]
fn plans_satisfy_the_paper_invariants_on_random_formats() {
    let mut rng = SplitMix64::new(0x1337_BEEF);
    let mut inversions = 0usize;
    for i in 0..120 {
        let format = RandomFormat::generate(&mut rng);
        let pattern = format.pattern();
        let keys = format.sample_keys(&mut rng, 24);
        for family in Family::ALL {
            let plan = synthesize(&pattern, family);
            let violations = invariants::plan_violations(&pattern, family, &plan);
            assert!(
                violations.is_empty(),
                "random format {i} {family}: {violations:?}"
            );
            if family == Family::Pext && plan.bijection_bits().is_some() {
                invariants::check_pext_roundtrip(&pattern, &plan, &keys)
                    .unwrap_or_else(|e| panic!("random format {i}: {e}"));
                inversions += 1;
            }
            if matches!(family, Family::Naive | Family::OffXor)
                && invariants::xor_injectivity_applies(&pattern, &plan)
            {
                invariants::check_sampled_injectivity(&plan, family, &keys)
                    .unwrap_or_else(|e| panic!("random format {i}: {e}"));
            }
        }
        invariants::check_lattice_soundness(&keys)
            .unwrap_or_else(|e| panic!("random format {i}: {e}"));
    }
    assert!(
        inversions > 10,
        "expected plenty of bijective Pext plans, got {inversions}"
    );
}

/// The fixed small-space paper formats are where the seed's Naive/OffXor
/// collisions lived: with the clamp rotation they must be injective, and
/// Pext must invert exactly.
#[test]
fn small_paper_formats_are_injective_for_every_word_family() {
    for format in [KeyFormat::Ssn, KeyFormat::Cpf, KeyFormat::Ipv4] {
        let pattern = Regex::compile(&format.regex()).expect("compiles");
        let keys: Vec<Vec<u8>> = KeySampler::new(format, Distribution::Normal, 0xFEED)
            .distinct_pool(3_000)
            .into_iter()
            .map(String::into_bytes)
            .collect();
        for family in [Family::Naive, Family::OffXor] {
            let plan = synthesize(&pattern, family);
            assert!(
                invariants::xor_injectivity_applies(&pattern, &plan),
                "{} {family}",
                format.name()
            );
            invariants::check_sampled_injectivity(&plan, family, &keys)
                .unwrap_or_else(|e| panic!("{}: {e}", format.name()));
        }
        let plan = synthesize(&pattern, Family::Pext);
        invariants::check_pext_roundtrip(&pattern, &plan, &keys)
            .unwrap_or_else(|e| panic!("{}: {e}", format.name()));
    }
}
