//! Property-based pins for the collision-storm detector's hysteresis:
//! benign keygen workloads never escalate under the production
//! [`AttackPolicy`], and a full escalation → de-escalation round trip
//! restores the specialized hasher with contents and counters intact.

use proptest::prelude::*;
use sepe_containers::{AttackPolicy, UnorderedMap};
use sepe_core::guard::{GuardMode, GuardedHash};
use sepe_core::hash::FixedSeedSource;
use sepe_core::regex::Regex;
use sepe_core::synth::Family;
use sepe_keygen::{Distribution, KeyFormat, KeySampler};
use sepe_verify::adversarial;

use std::collections::HashMap;

fn cell(seed: u64) -> (KeyFormat, Distribution, Family) {
    let format = KeyFormat::EVALUATED[(seed % 8) as usize];
    let dist = Distribution::ALL[((seed / 8) % 3) as usize];
    let family = Family::ALL[((seed / 24) % Family::ALL.len() as u64) as usize];
    (format, dist, family)
}

fn keygen_pool(format: KeyFormat, dist: Distribution, seed: u64, n: usize) -> Vec<Vec<u8>> {
    KeySampler::new(format, dist, seed)
        .distinct_pool(n)
        .into_iter()
        .map(String::into_bytes)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// Hysteresis, across the whole evaluation grid: a benign workload —
    /// any paper format, any distribution, any family, pools large enough
    /// for the production detector to be live — must never climb a single
    /// rung of the escalation ladder.
    #[test]
    fn benign_keygen_workloads_never_escalate(seed in any::<u64>()) {
        let (format, dist, family) = cell(seed);
        let pattern = Regex::compile(&format.regex()).expect("evaluated formats compile");
        let pool = keygen_pool(format, dist, seed, 160);
        let ticks = adversarial::check_benign_stays_specialized(
            &pattern,
            family,
            sepe_baselines::CityHash::new(),
            &pool,
            seed,
        )
        .map_err(|e| TestCaseError(format!("{format:?} {dist:?} {family}: {e}")))?;
        prop_assert!(ticks > 0, "the detector must actually have been ticked");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The ladder round trip is lossless: climb all three rungs
    /// (degrade, key, rotate), come back down through a quiet window, and
    /// the map must hold the same contents, route in-format keys through
    /// the same specialized hash as before, and report counters that
    /// exactly match the transcript.
    #[test]
    fn escalation_round_trip_restores_the_specialized_hasher(seed in any::<u64>()) {
        let (format, dist, family) = cell(seed);
        let pattern = Regex::compile(&format.regex()).expect("evaluated formats compile");
        let pool = keygen_pool(format, dist, seed, 96);
        let hasher = GuardedHash::from_pattern(&pattern, family, sepe_baselines::CityHash::new());
        let mut map: UnorderedMap<Vec<u8>, u64, _> = UnorderedMap::with_hasher(hasher);
        let mut twin: HashMap<Vec<u8>, u64> = HashMap::new();
        for (i, k) in pool.iter().enumerate() {
            map.insert(k.clone(), i as u64);
            twin.insert(k.clone(), i as u64);
        }
        let probes: Vec<&Vec<u8>> = pool.iter().step_by(13).collect();
        let before: Vec<u64> = probes.iter().map(|k| map.hash_of(k)).collect();

        // Up: degrade, key, rotate — each rung an incremental re-key.
        let seeds = FixedSeedSource::new(seed | 1);
        for expect in [GuardMode::Degraded, GuardMode::Keyed, GuardMode::Keyed] {
            map.escalate_now(&seeds);
            prop_assert_eq!(map.guard_mode(), expect);
            map.finish_migration();
        }
        for k in &pool {
            prop_assert_eq!(map.get(k.as_slice()), twin.get(k.as_slice()), "keyed rung lost {:?}", k);
        }

        // Down: a quiet window re-arms the specialized route in one step.
        let policy = AttackPolicy { quiet_streak: 2, ..AttackPolicy::default() };
        let mut rearmed = false;
        for _ in 0..4 {
            if map.maybe_deescalate(&policy) {
                rearmed = true;
                break;
            }
        }
        prop_assert!(rearmed, "quiet window never re-armed the hasher");
        prop_assert_eq!(map.guard_mode(), GuardMode::Guarded);
        map.finish_migration();

        let after: Vec<u64> = probes.iter().map(|k| map.hash_of(k)).collect();
        prop_assert_eq!(before, after, "de-escalation must restore the specialized routing");
        prop_assert_eq!(map.len(), twin.len());
        for (k, v) in &twin {
            prop_assert_eq!(map.get(k.as_slice()), Some(v), "round trip lost {:?}", k);
        }
        if sepe_obs::enabled() {
            prop_assert_eq!(
                (map.escalations(), map.seed_rotations(), map.deescalations()),
                (3, 1, 1),
                "counters must match the transcript"
            );
        }
    }
}
