//! A self-contained, offline drop-in for the subset of the
//! [criterion](https://crates.io/crates/criterion) API this workspace
//! uses.
//!
//! The real criterion cannot be resolved in the offline build
//! environment, so this crate provides the same surface — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, `criterion_group!` /
//! `criterion_main!` — backed by a simple wall-clock median-of-samples
//! harness. Each `b.iter(..)` run reports median and min time per
//! iteration on stdout. Statistical analysis, plots, and baselines are
//! intentionally not implemented; the benches exist to *rank* the hash
//! functions, and a median over samples is enough for that.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/value` id from just the parameter value.
    #[must_use]
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// `group/name/value` id.
    #[must_use]
    pub fn new<N: Into<String>, P: std::fmt::Display>(name: N, parameter: P) -> Self {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }
}

/// Throughput annotation (recorded, displayed per sample).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_millis(800),
            warm_up_time: Duration::from_millis(200),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut group = self.benchmark_group("bench");
        group.run_one(name, &mut f);
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let label = id.0.clone();
        self.run_one(&label, &mut f);
    }

    /// Ends the group (parity with the real API; nothing to flush).
    pub fn finish(self) {}

    fn run_one(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Warm-up: run the closure until the warm-up budget is spent.
        let warm_until = Instant::now() + self.warm_up_time;
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        while Instant::now() < warm_until {
            f(&mut bencher);
        }
        // Calibrate iterations per sample from the last warm-up run.
        let per_iter = bencher
            .elapsed
            .checked_div(u32::try_from(bencher.iters).unwrap_or(1));
        let per_iter = per_iter
            .unwrap_or(Duration::from_nanos(1))
            .max(Duration::from_nanos(1));
        let budget = self.measurement_time.checked_div(self.sample_size as u32);
        let budget = budget.unwrap_or(Duration::from_millis(10));
        let iters = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let tp = match self.throughput {
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  {:>10.1} MiB/s", n as f64 / median / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  {:>10.1} Kelem/s", n as f64 / median / 1000.0)
            }
            _ => String::new(),
        };
        println!(
            "{}/{label:<32} median {:>12}  min {:>12}{tp}",
            self.name,
            format_time(median),
            format_time(min),
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it a calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a bench target's group functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench target's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like `--bench`; a real
            // argument parser is not needed to ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(4));
        let mut runs = 0u64;
        group.bench_function(BenchmarkId::from_parameter("x"), |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::from_parameter(42).0, "42");
        assert_eq!(BenchmarkId::new("name", "p").0, "name/p");
    }
}
