//! `keybuilder` — reads example keys from stdin, one per line, and prints
//! the inferred regular expression (Figure 5a of the paper):
//!
//! ```text
//! keysynth "$(keybuilder < file_with_keys.txt)"
//! ```

use sepe_core::infer::{example_quality, infer_regex};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: keybuilder [--report] [FILE]\n\n\
             Reads example keys (one per line) from FILE or stdin and prints a\n\
             regular expression recognizing the inferred key format.\n\
             --report additionally lists byte positions the examples may\n\
             under-exercise (Example 3.6 of the paper: good examples cover\n\
             every bit combination that can occur)."
        );
        return ExitCode::SUCCESS;
    }
    let report = args.iter().any(|a| a == "--report" || a == "-r");
    args.retain(|a| a != "--report" && a != "-r");

    let mut input = String::new();
    let read = match args.first() {
        Some(path) => std::fs::read_to_string(path).map(|s| {
            input = s;
        }),
        None => std::io::stdin()
            .lock()
            .read_to_string(&mut input)
            .map(|_| ()),
    };
    if let Err(e) = read {
        eprintln!("keybuilder: cannot read input: {e}");
        return ExitCode::FAILURE;
    }

    let keys: Vec<&[u8]> = input
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty())
        .map(str::as_bytes)
        .collect();

    match infer_regex(keys.iter().copied()) {
        Ok(regex) => {
            println!("{regex}");
            if report {
                let reports =
                    example_quality(keys.iter().copied()).expect("non-empty checked above");
                let flagged: Vec<_> = reports.iter().filter(|r| r.suspicious).collect();
                if flagged.is_empty() {
                    eprintln!("report: every position looks well exercised");
                } else {
                    eprintln!(
                        "report: {} position(s) may be under-exercised (add examples \
                         varying these bytes):",
                        flagged.len()
                    );
                    for r in flagged {
                        eprintln!(
                            "  byte {:>3}: {} distinct example value(s), pattern accepts {}",
                            r.position, r.distinct_examples, r.cardinality
                        );
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("keybuilder: {e}");
            ExitCode::FAILURE
        }
    }
}
