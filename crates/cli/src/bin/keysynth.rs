//! `keysynth` — synthesizes specialized hash functions from a regular
//! expression (Figure 5b of the paper) and prints their source code.
//!
//! ```text
//! keysynth '(([0-9]{3})\.){3}[0-9]{3}'                 # all four families, C++
//! keysynth --family pext --lang rust '\d{3}-\d{2}-\d{4}'
//! keysynth --family pext --emit-plan '\d{16}' > plan.json
//! keysynth --plan plan.json --lang rust               # re-emit without re-synthesis
//! keysynth --jobs 4 '[0-9]{100}'                      # parallel candidate search
//! ```
//!
//! `--jobs N` runs the candidate search on up to `N` scoped worker
//! threads. The emitted code is bit-identical at any thread count — the
//! search winner is selected under a schedule-independent total order.

use sepe_cli::{parse_family, parse_language, CliError, Context as _};
use sepe_core::codegen::{emit, Language};
use sepe_core::plan_io::{bundle_from_str, bundle_to_string, SynthBundle};
use sepe_core::regex::Regex;
use sepe_core::synth::{synthesize, synthesize_parallel, Family, Plan};
use sepe_core::KeyPattern;
use std::process::ExitCode;

struct Options {
    families: Vec<Family>,
    language: Language,
    name: Option<String>,
    explain: bool,
    emit_plan: bool,
    plan_path: Option<String>,
    regex: Option<String>,
    jobs: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut families = Vec::new();
    let mut language = Language::Cpp;
    let mut name = None;
    let mut explain = false;
    let mut emit_plan = false;
    let mut plan_path = None;
    let mut regex = None;
    let mut jobs = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                return Err(String::new());
            }
            "--family" | "-f" => {
                let v = args.next().ok_or("--family needs a value")?;
                families.push(parse_family(&v)?);
            }
            "--lang" | "-l" => {
                let v = args.next().ok_or("--lang needs a value")?;
                language = parse_language(&v)?;
            }
            "--name" | "-n" => {
                name = Some(args.next().ok_or("--name needs a value")?);
            }
            "--explain" | "-e" => {
                explain = true;
            }
            "--emit-plan" => {
                emit_plan = true;
            }
            "--plan" | "-p" => {
                plan_path = Some(args.next().ok_or("--plan needs a file path")?);
            }
            "--jobs" | "-j" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                jobs = v.parse().map_err(|e| format!("--jobs: {e}"))?;
            }
            other if regex.is_none() && !other.starts_with('-') => {
                regex = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    if families.is_empty() {
        families = Family::ALL.to_vec();
    }
    if plan_path.is_none() && regex.is_none() {
        return Err("missing the key-format regular expression".to_owned());
    }
    if plan_path.is_some() && regex.is_some() {
        return Err("--plan replaces the regular expression; give one or the other".to_owned());
    }
    Ok(Options {
        families,
        language,
        name,
        explain,
        emit_plan,
        plan_path,
        regex,
        jobs,
    })
}

/// Renders one synthesized plan according to the output options.
fn render(opts: &Options, pattern: &KeyPattern, family: Family, plan: &Plan) {
    if opts.emit_plan {
        let bundle = SynthBundle {
            pattern: pattern.clone(),
            family,
            plan: plan.clone(),
        };
        println!("{}", bundle_to_string(&bundle));
        return;
    }
    if opts.explain {
        println!("{}", sepe_cli::explain_plan(pattern, family, plan));
        return;
    }
    let default_name = match opts.language {
        Language::Cpp | Language::CppAarch64 => format!("Synthesized{family}Hash"),
        Language::Rust => format!("synthesized_{}_hash", family.name().to_lowercase()),
    };
    let name = opts.name.clone().unwrap_or(default_name);
    println!("{}", emit(plan, family, opts.language, &name));
}

fn run(opts: &Options) -> Result<(), CliError> {
    if let Some(path) = &opts.plan_path {
        let text =
            std::fs::read_to_string(path).with_context(|| format!("cannot read plan {path}"))?;
        let bundle =
            bundle_from_str(&text).with_context(|| format!("{path} is not a synthesis bundle"))?;
        render(opts, &bundle.pattern, bundle.family, &bundle.plan);
        return Ok(());
    }
    let regex = opts.regex.as_deref().unwrap_or_default();
    let pattern = Regex::compile(regex).context("bad regular expression")?;
    for family in &opts.families {
        let plan = if opts.jobs > 1 {
            synthesize_parallel(&pattern, *family, opts.jobs)
        } else {
            synthesize(&pattern, *family)
        };
        render(opts, &pattern, *family, &plan);
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("keysynth: {msg}");
            }
            eprintln!(
                "usage: keysynth [--family naive|offxor|aes|pext]... \
                 [--lang cpp|rust] [--name NAME] [--explain] [--emit-plan] \
                 [--jobs N] (REGEX | --plan FILE)"
            );
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("keysynth: {e}");
            ExitCode::FAILURE
        }
    }
}
