//! `keysynth` — synthesizes specialized hash functions from a regular
//! expression (Figure 5b of the paper) and prints their source code.
//!
//! ```text
//! keysynth '(([0-9]{3})\.){3}[0-9]{3}'                 # all four families, C++
//! keysynth --family pext --lang rust '\d{3}-\d{2}-\d{4}'
//! ```

use sepe_cli::{parse_family, parse_language};
use sepe_core::codegen::{emit, Language};
use sepe_core::regex::Regex;
use sepe_core::synth::{synthesize, Family};
use std::process::ExitCode;

struct Options {
    families: Vec<Family>,
    language: Language,
    name: Option<String>,
    explain: bool,
    regex: String,
}

fn parse_args() -> Result<Options, String> {
    let mut families = Vec::new();
    let mut language = Language::Cpp;
    let mut name = None;
    let mut explain = false;
    let mut regex = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                return Err(String::new());
            }
            "--family" | "-f" => {
                let v = args.next().ok_or("--family needs a value")?;
                families.push(parse_family(&v)?);
            }
            "--lang" | "-l" => {
                let v = args.next().ok_or("--lang needs a value")?;
                language = parse_language(&v)?;
            }
            "--name" | "-n" => {
                name = Some(args.next().ok_or("--name needs a value")?);
            }
            "--explain" | "-e" => {
                explain = true;
            }
            other if regex.is_none() && !other.starts_with('-') => {
                regex = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    if families.is_empty() {
        families = Family::ALL.to_vec();
    }
    Ok(Options {
        families,
        language,
        name,
        explain,
        regex: regex.ok_or("missing the key-format regular expression")?,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("keysynth: {msg}");
            }
            eprintln!(
                "usage: keysynth [--family naive|offxor|aes|pext]... \
                 [--lang cpp|rust] [--name NAME] [--explain] REGEX"
            );
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    let pattern = match Regex::compile(&opts.regex) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("keysynth: {e}");
            return ExitCode::FAILURE;
        }
    };

    for family in &opts.families {
        let plan = synthesize(&pattern, *family);
        if opts.explain {
            println!("{}", sepe_cli::explain_plan(&pattern, *family, &plan));
            continue;
        }
        let default_name = match opts.language {
            Language::Cpp | Language::CppAarch64 => format!("Synthesized{family}Hash"),
            Language::Rust => format!("synthesized_{}_hash", family.name().to_lowercase()),
        };
        let name = opts.name.clone().unwrap_or(default_name);
        println!("{}", emit(&plan, *family, opts.language, &name));
    }
    ExitCode::SUCCESS
}
