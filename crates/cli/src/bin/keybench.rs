//! `keybench` — benchmark synthesized and baseline hash functions on *your*
//! keys: the end-to-end tool a downstream user actually wants.
//!
//! ```text
//! keybench my_keys.txt             # one key per line
//! keybench --iterations 200000 my_keys.txt
//! ```
//!
//! Infers the key format, synthesizes all four SEPE families, and reports
//! hashing time (latency-chained), true collisions and bucket collisions
//! against the general-purpose baselines.

use sepe_baselines::CityHash;
use sepe_containers::{DriftPolicy, UnorderedMap};
use sepe_core::guard::GuardedHash;
use sepe_core::hash::SynthesizedHash;
use sepe_core::infer::{infer_pattern, infer_regex};
use sepe_core::multi::LengthDispatchHash;
use sepe_core::synth::Family;
use sepe_core::{ByteHash, Isa, KeyPattern};
use sepe_driver::measure::collisions_of;
use sepe_driver::HashId;
use std::io::Read;
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    iterations: usize,
    guard: bool,
    drift_threshold: Option<f64>,
    batch: Option<usize>,
    churn: Option<usize>,
    threads: Option<usize>,
    resynth: bool,
    metrics: bool,
    adversarial: bool,
    synth: bool,
    path: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut iterations = 100_000;
    let mut guard = false;
    let mut drift_threshold = None;
    let mut batch = None;
    let mut churn = None;
    let mut threads = None;
    let mut resynth = false;
    let mut metrics = false;
    let mut adversarial = false;
    let mut synth = false;
    let mut path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--iterations" | "-n" => {
                iterations = args
                    .next()
                    .ok_or("--iterations needs a value")?
                    .parse()
                    .map_err(|e| format!("bad iteration count: {e}"))?;
            }
            "--threads" | "-t" => {
                let n: usize = args
                    .next()
                    .ok_or("--threads needs a count")?
                    .parse()
                    .map_err(|e| format!("bad thread count: {e}"))?;
                if n == 0 {
                    return Err("thread count must be positive".to_owned());
                }
                threads = Some(n);
            }
            "--batch" | "-b" => {
                let w: usize = args
                    .next()
                    .ok_or("--batch needs a width")?
                    .parse()
                    .map_err(|e| format!("bad batch width: {e}"))?;
                if w < 2 {
                    return Err(format!("batch width {w} must be at least 2"));
                }
                batch = Some(w);
            }
            "--churn" => {
                let n: usize = args
                    .next()
                    .ok_or("--churn needs an op count")?
                    .parse()
                    .map_err(|e| format!("bad churn op count: {e}"))?;
                if n == 0 {
                    return Err("churn op count must be positive".to_owned());
                }
                churn = Some(n);
            }
            "--guard" | "-g" => guard = true,
            "--resynth" => resynth = true,
            "--metrics" => metrics = true,
            "--adversarial" => adversarial = true,
            "--synth" => synth = true,
            "--drift-threshold" => {
                let t: f64 = args
                    .next()
                    .ok_or("--drift-threshold needs a value")?
                    .parse()
                    .map_err(|e| format!("bad drift threshold: {e}"))?;
                if !(0.0..=1.0).contains(&t) {
                    return Err(format!("drift threshold {t} is outside 0..=1"));
                }
                drift_threshold = Some(t);
            }
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(Options {
        iterations,
        guard,
        drift_threshold,
        batch,
        churn,
        threads,
        resynth,
        metrics,
        adversarial,
        synth,
        path,
    })
}

/// `--threads N`: machine-readable thread-scaling report. Prints a
/// pure-JSON `sepe-keybench/v1` document with a `concurrency` array in the
/// bench-json row schema: the churn workload (get/insert/remove mix over
/// the user's keys) fanned across 1, 2, 4, … up to `N` worker threads over
/// a lock-striped `ShardedMap`, with aggregate ns/op, Mops/s, and speedup
/// relative to the single-thread row.
fn threads_report(pattern: &KeyPattern, keys: &[String], max_threads: usize, iterations: usize) {
    use sepe_containers::ShardedMap;
    use sepe_core::plan_io::Json;
    use sepe_keygen::SplitMix64;
    use std::collections::BTreeMap;

    type Map = ShardedMap<String, usize, SynthesizedHash, CityHash>;
    let shards = 8usize;

    let churn = |map: &Map, seed: u64, ops: usize| {
        let mut rng = SplitMix64::new(seed);
        for i in 0..ops {
            let key = &keys[(rng.next_u64() % keys.len() as u64) as usize];
            match rng.next_u64() % 10 {
                0..=4 => {
                    std::hint::black_box(map.get(key.as_str()));
                }
                5..=7 => {
                    map.insert(key.clone(), i);
                }
                _ => {
                    map.remove(key.as_str());
                    map.insert(key.clone(), i);
                }
            }
        }
    };

    // Doubling thread counts up to the requested maximum (always ending on
    // the maximum itself, so `--threads 6` measures 1, 2, 4, 6).
    let mut counts = vec![1usize];
    while counts.last().copied().unwrap_or(1) * 2 < max_threads {
        counts.push(counts.last().unwrap() * 2);
    }
    if max_threads > 1 {
        counts.push(max_threads);
    }

    let mut rows = Vec::new();
    let mut baseline_ns = None;
    for threads in counts {
        let hasher = GuardedHash::from_pattern(pattern, Family::OffXor, CityHash::new());
        let map: Map = ShardedMap::with_hasher(hasher, shards);
        for (i, key) in keys.iter().enumerate() {
            map.insert(key.clone(), i);
        }
        let per_thread_ops = (iterations / threads).max(256);
        churn(&map, 0x5EED, per_thread_ops.min(10_000)); // warm-up
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let map = &map;
                let churn = &churn;
                s.spawn(move || churn(map, 0xC4A0 ^ t as u64, per_thread_ops));
            }
        });
        let ns = start.elapsed().as_secs_f64() * 1e9 / (per_thread_ops * threads) as f64;
        let baseline = *baseline_ns.get_or_insert(ns);
        let mut row = BTreeMap::new();
        row.insert("threads".to_string(), Json::Num(threads as f64));
        row.insert("shards".to_string(), Json::Num(shards as f64));
        row.insert("ns_per_op".to_string(), Json::Num(ns));
        row.insert(
            "throughput_mops".to_string(),
            Json::Num(if ns > 0.0 { 1e3 / ns } else { 0.0 }),
        );
        row.insert(
            "speedup".to_string(),
            Json::Num(if ns > 0.0 { baseline / ns } else { 0.0 }),
        );
        rows.push(Json::Obj(row));
    }
    let mut doc = BTreeMap::new();
    doc.insert(
        "schema".to_string(),
        Json::Str("sepe-keybench/v1".to_string()),
    );
    doc.insert("max_threads".to_string(), Json::Num(max_threads as f64));
    doc.insert("keys".to_string(), Json::Num(keys.len() as f64));
    doc.insert("concurrency".to_string(), Json::Arr(rows));
    println!("{}", Json::Obj(doc));
}

/// `--batch W`: machine-readable batched-vs-scalar comparison. Prints a
/// pure-JSON `sepe-keybench/v1` document (no prose, so the output pipes
/// straight into tooling): per family, ns/key at width 1 (latency-chained)
/// and width `W` (interleaved kernels).
fn batch_report(pattern: &KeyPattern, key_bytes: &[&[u8]], width: usize, iterations: usize) {
    use sepe_core::plan_io::Json;
    use sepe_driver::bench_json::{batched_ns_per_key, scalar_ns_per_key};
    use std::collections::BTreeMap;

    // The chained measurements mask indices, so use the largest
    // power-of-two prefix of the key pool.
    let pot = if key_bytes.len().is_power_of_two() {
        key_bytes.len()
    } else {
        (key_bytes.len().next_power_of_two() / 2).max(1)
    };
    let pool = &key_bytes[..pot];

    let mut rows = Vec::new();
    for family in Family::ALL {
        let hash = SynthesizedHash::from_pattern(pattern, family);
        for w in [1usize, width] {
            let ns = if w <= 1 {
                scalar_ns_per_key(&hash, pool, iterations)
            } else {
                batched_ns_per_key(&hash, pool, w, iterations)
            };
            let mut row = BTreeMap::new();
            row.insert(
                "family".to_string(),
                Json::Str(family.to_string().to_ascii_lowercase()),
            );
            row.insert("width".to_string(), Json::Num(w as f64));
            row.insert("ns_per_key".to_string(), Json::Num(ns));
            row.insert(
                "throughput_mkeys".to_string(),
                Json::Num(if ns > 0.0 { 1e3 / ns } else { 0.0 }),
            );
            rows.push(Json::Obj(row));
        }
    }
    let mut doc = BTreeMap::new();
    doc.insert(
        "schema".to_string(),
        Json::Str("sepe-keybench/v1".to_string()),
    );
    doc.insert("batch_width".to_string(), Json::Num(width as f64));
    doc.insert("keys".to_string(), Json::Num(pool.len() as f64));
    doc.insert("records".to_string(), Json::Arr(rows));
    println!("{}", Json::Obj(doc));
}

/// Latency-chained hashing time over the key set.
fn chained_time(hash: &dyn ByteHash, keys: &[&[u8]], iterations: usize) -> f64 {
    let pot = if keys.len().is_power_of_two() {
        keys.len()
    } else {
        (keys.len().next_power_of_two() / 2).max(1)
    };
    let mask = pot - 1;
    let mut idx = 0usize;
    let mut acc = 0u64;
    let start = Instant::now();
    for _ in 0..iterations {
        let h = hash.hash_bytes(keys[idx]);
        acc ^= h;
        idx = (h as usize) & mask;
    }
    std::hint::black_box(acc);
    start.elapsed().as_secs_f64() * 1e9 / iterations as f64
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("keybench: {msg}");
            }
            eprintln!(
                "usage: keybench [--iterations N] [--guard] [--drift-threshold T] \
                 [--batch W] [--churn N] [--threads N] [--resynth] [--metrics] \
                 [--adversarial] [FILE]\n\
                 \x20      (keys on stdin or FILE, one per line)"
            );
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    let mut input = String::new();
    let read = match &opts.path {
        Some(p) => std::fs::read_to_string(p).map(|s| {
            input = s;
        }),
        None => std::io::stdin()
            .lock()
            .read_to_string(&mut input)
            .map(|_| ()),
    };
    if let Err(e) = read {
        eprintln!("keybench: cannot read keys: {e}");
        return ExitCode::FAILURE;
    }

    let mut keys: Vec<&str> = input
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty())
        .collect();
    keys.sort_unstable();
    keys.dedup();
    if keys.is_empty() {
        eprintln!("keybench: no keys given");
        return ExitCode::FAILURE;
    }
    let key_bytes: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
    let key_strings: Vec<String> = keys.iter().map(|k| (*k).to_owned()).collect();

    let pattern = match infer_pattern(key_bytes.iter().copied()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("keybench: cannot infer a key format: {e}");
            return ExitCode::FAILURE;
        }
    };
    let regex = match infer_regex(key_bytes.iter().copied()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("keybench: cannot infer a key format: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(width) = opts.batch {
        batch_report(&pattern, &key_bytes, width, opts.iterations);
        return ExitCode::SUCCESS;
    }
    if let Some(n_ops) = opts.churn {
        churn_report(&pattern, &key_strings, n_ops);
        return ExitCode::SUCCESS;
    }
    if let Some(n_threads) = opts.threads {
        threads_report(&pattern, &key_strings, n_threads, opts.iterations);
        return ExitCode::SUCCESS;
    }
    if opts.resynth {
        resynth_report(&pattern, &key_strings, opts.iterations);
        return ExitCode::SUCCESS;
    }
    if opts.metrics {
        metrics_report(&pattern, &key_strings, opts.iterations);
        return ExitCode::SUCCESS;
    }
    if opts.adversarial {
        adversarial_report(&pattern, &key_strings, opts.iterations);
        return ExitCode::SUCCESS;
    }
    if opts.synth {
        synth_report(&pattern, opts.iterations);
        return ExitCode::SUCCESS;
    }

    println!("{} distinct keys, inferred format: {}", keys.len(), regex);
    println!(
        "length {}..={}, {} variable bits{}\n",
        pattern.min_len(),
        pattern.max_len(),
        pattern.variable_bits(),
        if pattern.variable_bits() <= 64 && pattern.is_fixed_len() {
            " (Pext bijection possible)"
        } else {
            ""
        }
    );

    println!(
        "{:<22} {:>12} {:>10} {:>12}",
        "function", "ns/hash", "T-Coll", "B-Coll"
    );
    let report = |name: &str, hash: &dyn ByteHash| {
        let ns = chained_time(hash, &key_bytes, opts.iterations);
        let (b_coll, t_coll) =
            collisions_of(hash, &key_strings, sepe_containers::BucketPolicy::Modulo);
        println!("{name:<22} {ns:>12.1} {t_coll:>10} {b_coll:>12}");
    };

    for family in Family::ALL {
        let hash = SynthesizedHash::from_pattern(&pattern, family);
        report(&format!("sepe/{family}"), &hash);
    }
    let mut drift_line = None;
    if opts.guard {
        for family in Family::ALL {
            let hash = GuardedHash::from_pattern(&pattern, family, CityHash::new());
            report(&format!("sepe/{family}+guard"), &hash);
            if family == Family::OffXor {
                let stats = hash.stats();
                drift_line = Some(format!(
                    "guard drift: {} in-format, {} off-format of {} keys seen ({:.1}% drift)",
                    stats.in_format(),
                    stats.off_format(),
                    stats.total(),
                    stats.off_rate() * 100.0
                ));
            }
        }
    }
    if !pattern.is_fixed_len() {
        if let Ok(dispatch) =
            LengthDispatchHash::from_examples(key_bytes.iter().copied(), Family::OffXor)
        {
            report("sepe/OffXor+dispatch", &dispatch);
        }
    }
    // Related work: entropy-learned hashing (Hentschel et al.), trained on
    // the same keys with a byte budget matching the variable region.
    let budget = key_bytes
        .iter()
        .map(|k| k.len())
        .max()
        .unwrap_or(1)
        .clamp(1, 16);
    let elh = sepe_baselines::EntropyLearnedHash::train(&key_bytes, budget);
    report(
        &format!("related/ELH({} bytes)", elh.positions().len()),
        &elh,
    );

    for id in [HashId::Stl, HashId::City, HashId::Abseil, HashId::Fnv] {
        // Baselines are format-independent; any format argument works.
        let hash = id.build(sepe_keygen::KeyFormat::Ssn, Isa::Native);
        report(&format!("baseline/{}", id.name()), hash.as_ref());
    }
    if let Some(line) = drift_line {
        println!("\n{line}");
    }
    if let Some(threshold) = opts.drift_threshold {
        println!();
        drift_demo(&pattern, &key_strings, threshold);
    }
    ExitCode::SUCCESS
}

/// `--churn N`: measures the latency-cliff fix. Fills a guarded map with
/// the user's keys, runs `N` churn operations (get/insert/remove mix) at
/// steady state, then triggers `degrade_now()` and keeps churning while
/// the epoch migration drains incrementally — reporting ops/sec at steady
/// state, ops/sec while the migration is in flight, and how many
/// operations the amortized drain took.
fn churn_report(pattern: &KeyPattern, keys: &[String], n_ops: usize) {
    use sepe_keygen::SplitMix64;

    let hasher = GuardedHash::from_pattern(pattern, Family::OffXor, CityHash::new());
    let mut map: UnorderedMap<String, usize, _> = UnorderedMap::with_hasher(hasher);
    for (i, key) in keys.iter().enumerate() {
        map.insert(key.clone(), i);
    }
    let mut rng = SplitMix64::new(0xC4A0_5EED);
    let mut churn = |map: &mut UnorderedMap<String, usize, _>, ops: usize| -> f64 {
        let start = Instant::now();
        for i in 0..ops {
            let key = &keys[(rng.next_u64() % keys.len() as u64) as usize];
            match rng.next_u64() % 10 {
                0..=4 => {
                    std::hint::black_box(map.get(key.as_str()));
                }
                5..=7 => {
                    map.insert(key.clone(), i);
                }
                _ => {
                    map.remove(key.as_str());
                    map.insert(key.clone(), i);
                }
            }
        }
        start.elapsed().as_secs_f64() * 1e9 / ops as f64
    };

    println!(
        "churn workload: {} keys resident, {} ops per phase, mode {:?}",
        map.len(),
        n_ops,
        map.guard_mode()
    );
    // Warm-up pass, then the measured steady-state phase.
    churn(&mut map, n_ops.min(10_000));
    let steady_ns = churn(&mut map, n_ops);
    println!(
        "  steady state          {steady_ns:>10.1} ns/op  ({:.2} Mops/s)",
        1e3 / steady_ns
    );

    map.degrade_now();
    let entries = map.len();
    // Measure while the epoch is actually in flight: churn in small slices
    // until the amortized drain completes.
    let mut inflight_ops = 0usize;
    let start = Instant::now();
    while map.migration_in_flight() && inflight_ops < n_ops {
        churn(&mut map, 64);
        inflight_ops += 64;
    }
    let inflight_ns = start.elapsed().as_secs_f64() * 1e9 / inflight_ops.max(1) as f64;
    let drained = !map.migration_in_flight();
    println!(
        "  migration in flight   {inflight_ns:>10.1} ns/op  ({:.2} Mops/s)",
        1e3 / inflight_ns
    );
    match drained {
        true => println!(
            "  drain: {entries} entries re-filed across {inflight_ops} ops \
             (progress 100%, no stop-the-world rebuild)"
        ),
        false => println!(
            "  drain: still in flight after {inflight_ops} ops \
             (progress {:.0}%)",
            map.migration_progress() * 100.0
        ),
    }

    let after_ns = churn(&mut map, n_ops);
    println!(
        "  degraded steady state {after_ns:>10.1} ns/op  ({:.2} Mops/s)",
        1e3 / after_ns
    );
}

/// `--resynth`: measures the tail-latency fix for drift-triggered
/// resynthesis. Fills a guarded map with the user's keys, samples drift
/// from shadow keys, then runs the same mutating workload twice: once with
/// the resynthesis running *inline* on the serving thread (the op that
/// triggers it absorbs the whole synthesis search) and once handed to a
/// background [`ResynthSupervisor`] worker, where the serving thread only
/// enqueues the job and later applies the completed plan. Reports
/// p50/p99/max per-op latency for both modes.
///
/// [`ResynthSupervisor`]: sepe_core::ResynthSupervisor
fn resynth_report(pattern: &KeyPattern, keys: &[String], iterations: usize) {
    use sepe_core::{ResynthSupervisor, SupervisorConfig, SystemClock};
    use sepe_keygen::SplitMix64;
    use std::sync::Arc;

    let ops = iterations.clamp(512, 65_536);
    let run = |supervised: bool| -> (f64, f64, f64) {
        let hasher = GuardedHash::from_pattern(pattern, Family::OffXor, CityHash::new());
        let mut map: UnorderedMap<String, usize, _> = UnorderedMap::with_hasher(hasher);
        for (i, key) in keys.iter().enumerate() {
            map.insert(key.clone(), i);
        }
        // Shadow keys one byte off-format: the reservoir needs sampled
        // drift before a resynthesis has anything to widen over.
        for key in keys.iter().take(32) {
            map.insert(format!("{key}~"), 0);
        }
        let mut supervisor =
            ResynthSupervisor::new(SupervisorConfig::default(), Arc::new(SystemClock::new()));
        let mut rng = SplitMix64::new(0xC4A0_5EED);
        let trigger_at = ops / 2;
        let mut latencies = Vec::with_capacity(ops);
        for op in 0..ops {
            let key = &keys[(rng.next_u64() % keys.len() as u64) as usize];
            let start = Instant::now();
            if rng.next_u64().is_multiple_of(2) {
                map.insert(key.clone(), op);
            } else {
                map.remove(key.as_str());
                map.insert(key.clone(), op);
            }
            if op == trigger_at {
                if supervised {
                    if let Some(req) = map.resynth_request(0) {
                        supervisor.enqueue(req);
                    }
                } else {
                    std::hint::black_box(map.resynthesize());
                }
            } else if supervised && op > trigger_at {
                supervisor.pump();
                for ready in supervisor.take_ready() {
                    map.apply_resynthesized(&ready);
                }
            }
            latencies.push(start.elapsed().as_secs_f64() * 1e9);
        }
        let drain_until = Instant::now() + std::time::Duration::from_secs(5);
        while supervised && supervisor.active_jobs() > 0 && Instant::now() < drain_until {
            supervisor.pump();
            for ready in supervisor.take_ready() {
                map.apply_resynthesized(&ready);
            }
            std::thread::yield_now();
        }
        latencies.sort_by(f64::total_cmp);
        let pick = |p: f64| latencies[(((latencies.len() - 1) as f64) * p).round() as usize];
        (pick(0.50), pick(0.99), *latencies.last().unwrap())
    };

    println!(
        "resynthesis trigger: {} keys resident, {ops} mutating ops per mode, \
         drift sampled from 32 shadow keys",
        keys.len()
    );
    let (inline_p50, inline_p99, inline_max) = run(false);
    println!(
        "  inline      p50 {inline_p50:>8.1} ns  p99 {inline_p99:>10.1} ns  \
         max {inline_max:>12.1} ns   (synthesis on the serving thread)"
    );
    let (sup_p50, sup_p99, sup_max) = run(true);
    println!(
        "  supervised  p50 {sup_p50:>8.1} ns  p99 {sup_p99:>10.1} ns  \
         max {sup_max:>12.1} ns   (synthesis on a worker thread)"
    );
    if sup_max > 0.0 {
        println!(
            "  worst mutating op: {:.1}x cheaper supervised — the serving \
             thread never runs the synthesis search",
            inline_max / sup_max
        );
    }
}

/// `--metrics`: machine-readable observability snapshot. Runs a
/// deterministic, seeded, single-threaded workload over the user's keys —
/// fill a guarded map, churn (get/insert/remove mix), degrade, drain the
/// epoch migration with seeded strides, churn again — with the table and
/// guard metrics exported into a [`sepe_obs::Registry`], then prints the
/// canonical `sepe-metrics/v1` snapshot as pure JSON. The same keys and
/// iteration count always print byte-identical output, so the snapshot
/// diffs cleanly and pipes into `sepe-repro --check-metrics`.
fn metrics_report(pattern: &KeyPattern, keys: &[String], iterations: usize) {
    use sepe_keygen::SplitMix64;

    let registry = sepe_obs::Registry::new();
    let hasher = GuardedHash::from_pattern(pattern, Family::OffXor, CityHash::new());
    let mut map: UnorderedMap<String, usize, _> = UnorderedMap::with_hasher(hasher);
    map.export_metrics(&registry, &[])
        .expect("fresh registry accepts the first export");
    for (i, key) in keys.iter().enumerate() {
        map.insert(key.clone(), i);
    }
    let ops = iterations.clamp(512, 65_536);
    let mut rng = SplitMix64::new(0x0B5E_C4A0);
    let mut churn = |map: &mut UnorderedMap<String, usize, _>, ops: usize| {
        for i in 0..ops {
            let key = &keys[(rng.next_u64() % keys.len() as u64) as usize];
            match rng.next_u64() % 10 {
                0..=4 => {
                    std::hint::black_box(map.get(key.as_str()));
                }
                5..=7 => {
                    map.insert(key.clone(), i);
                }
                _ => {
                    map.remove(key.as_str());
                    map.insert(key.clone(), i);
                }
            }
        }
    };
    churn(&mut map, ops);
    map.degrade_now();
    let mut drain_rng = SplitMix64::new(0x0B5E_D8A1);
    while map.migration_in_flight() {
        map.migrate(1 + (drain_rng.next_u64() % 32) as usize);
    }
    churn(&mut map, ops);
    println!("{}", registry.snapshot().render());
}

/// `--adversarial`: demonstrates the HashDoS defense on the user's keys.
/// Fills a guarded map, measures benign churn at steady state (ticking the
/// collision-storm detector, which must stay quiet), then brute-forces a
/// collision flood against the map's own hash — the strongest attacker
/// model for the unkeyed rungs — and lets the detector climb the
/// escalation ladder to the keyed hasher. Reports ns/op benign vs. under
/// attack vs. after escalation, the flooded-chain lengths, the wall-clock
/// escalation latency (detector ticks plus the incremental re-key drain),
/// and the quiet-window recovery back to the specialized hasher.
fn adversarial_report(pattern: &KeyPattern, keys: &[String], iterations: usize) {
    use sepe_containers::AttackPolicy;
    use sepe_core::guard::GuardMode;
    use sepe_core::hash::FixedSeedSource;
    use sepe_keygen::SplitMix64;
    use sepe_verify::attacker::bucket_flood;

    const FLOOD_KEYS: usize = 64;
    let ops = iterations.clamp(512, 65_536);
    let policy = AttackPolicy {
        min_len: 32,
        trip_streak: 2,
        quiet_streak: 2,
        ..AttackPolicy::default()
    };
    let seeds = FixedSeedSource::new(0xADE5_EED5);

    let hasher = GuardedHash::from_pattern(pattern, Family::OffXor, CityHash::new());
    let mut map: UnorderedMap<String, usize, _> = UnorderedMap::with_hasher(hasher);
    for (i, key) in keys.iter().enumerate() {
        map.insert(key.clone(), i);
    }
    // Pin the bucket count before forging: the flood collides modulo the
    // *current* table size, so the attack inserts must never resize it.
    map.reserve(FLOOD_KEYS + 16);

    let mut rng = SplitMix64::new(0xADE5_C4A0);
    let mut churn = |map: &mut UnorderedMap<String, usize, _>, ops: usize| -> f64 {
        let start = Instant::now();
        for i in 0..ops {
            let key = &keys[(rng.next_u64() % keys.len() as u64) as usize];
            match rng.next_u64() % 10 {
                0..=4 => {
                    std::hint::black_box(map.get(key.as_str()));
                }
                5..=7 => {
                    map.insert(key.clone(), i);
                }
                _ => {
                    map.remove(key.as_str());
                    map.insert(key.clone(), i);
                }
            }
        }
        start.elapsed().as_secs_f64() * 1e9 / ops as f64
    };
    let probe = |map: &UnorderedMap<String, usize, _>, flood: &[String], iters: usize| -> f64 {
        let mut acc = 0usize;
        let start = Instant::now();
        for i in 0..iters {
            if map.get(flood[i % flood.len()].as_str()).is_some() {
                acc += 1;
            }
        }
        std::hint::black_box(acc);
        start.elapsed().as_secs_f64() * 1e9 / iters as f64
    };

    println!(
        "adversarial workload: {} keys resident, {ops} ops per phase, \
         flood of {FLOOD_KEYS} forged collisions",
        map.len()
    );
    churn(&mut map, ops.min(10_000)); // warm-up
    let steady_ns = churn(&mut map, ops);
    let benign_chain = map.max_bucket_len();
    let mut benign_trips = 0usize;
    for _ in 0..4 {
        if map.maybe_escalate(&policy, &seeds) {
            benign_trips += 1;
        }
    }
    println!(
        "  benign steady state   {steady_ns:>10.1} ns/op  ({:.2} Mops/s), \
         max chain {benign_chain}, detector trips {benign_trips}/4 ticks",
        1e3 / steady_ns
    );

    // The flood: distinct keys brute-forced onto one bucket of this map.
    let flood: Vec<String> = bucket_flood(
        |k| map.hash_of(k),
        map.bucket_count() as u64,
        FLOOD_KEYS,
        0xADE5,
    )
    .into_iter()
    .map(|k| String::from_utf8(k).expect("forged keys are ascii"))
    .collect();
    for (i, key) in flood.iter().enumerate() {
        map.insert(key.clone(), 1_000_000 + i);
    }
    let attack_chain = map.max_bucket_len();
    let attack_probe_ns = probe(&map, &flood, ops);
    let attack_churn_ns = churn(&mut map, ops);
    println!(
        "  under attack          {attack_churn_ns:>10.1} ns/op  ({:.2} Mops/s), \
         max chain {attack_chain}, forged-key probe {attack_probe_ns:.1} ns/get",
        1e3 / attack_churn_ns
    );

    // Let the detector climb the ladder; the off-format flood survives the
    // unkeyed fallback rung, so it must reach the keyed hasher.
    let start = Instant::now();
    let mut rungs = 0usize;
    let mut ticks = 0usize;
    while map.guard_mode() != GuardMode::Keyed && ticks < 16 {
        ticks += 1;
        if map.maybe_escalate(&policy, &seeds) {
            rungs += 1;
            while map.migration_in_flight() {
                map.migrate(1024);
            }
        }
    }
    let escalation_us = start.elapsed().as_secs_f64() * 1e6;
    let keyed_chain = map.max_bucket_len();
    let keyed_probe_ns = probe(&map, &flood, ops);
    let keyed_churn_ns = churn(&mut map, ops);
    println!(
        "  escalation: {rungs} rungs over {ticks} detector ticks to mode {:?} \
         in {escalation_us:.0} us (incremental re-key included)",
        map.guard_mode()
    );
    println!(
        "  keyed steady state    {keyed_churn_ns:>10.1} ns/op  ({:.2} Mops/s), \
         max chain {keyed_chain}, forged-key probe {keyed_probe_ns:.1} ns/get",
        1e3 / keyed_churn_ns
    );

    // Recovery: drop the flood and let a quiet window re-arm the
    // specialized hasher.
    for key in &flood {
        map.remove(key.as_str());
    }
    let mut rearm_ticks = 0usize;
    while map.guard_mode() != GuardMode::Guarded && rearm_ticks < 8 {
        rearm_ticks += 1;
        if map.maybe_deescalate(&policy) {
            while map.migration_in_flight() {
                map.migrate(1024);
            }
        }
    }
    println!(
        "  recovery: mode {:?} after {rearm_ticks} quiet ticks, \
         {} entries intact",
        map.guard_mode(),
        map.len()
    );
    if sepe_obs::enabled() {
        println!(
            "  counters: {} escalations, {} seed rotations, {} de-escalations",
            map.escalations(),
            map.seed_rotations(),
            map.deescalations()
        );
    }
}

/// `--synth`: machine-readable synthesis-search report. Prints a pure-JSON
/// `sepe-keybench/v1` document with a `synthesis` array — per family, the
/// candidate-search wall time at 1/2/4/8 worker threads (with speedup
/// relative to the single-thread row, plus the deterministic search
/// statistics, which must not vary with the thread count) — and a
/// `plan_cache` array comparing a cold search against a memoized
/// [`PlanCache`] hit on the same pattern.
///
/// [`PlanCache`]: sepe_core::PlanCache
fn synth_report(pattern: &KeyPattern, iterations: usize) {
    use sepe_core::plan_io::Json;
    use sepe_core::synth::synthesize_parallel_with_stats;
    use sepe_core::PlanCache;
    use std::collections::BTreeMap;

    let reps = (iterations / 1_000).clamp(8, 256);
    let time_synth = |family: Family, jobs: usize| -> (f64, sepe_core::SearchStats) {
        let mut stats = sepe_core::SearchStats::default();
        let start = Instant::now();
        for _ in 0..reps {
            let (plan, s) = synthesize_parallel_with_stats(pattern, family, jobs);
            std::hint::black_box(plan);
            stats = s;
        }
        (start.elapsed().as_secs_f64() * 1e9 / reps as f64, stats)
    };

    let mut rows = Vec::new();
    for family in Family::ALL {
        let mut baseline_ns = None;
        for jobs in [1usize, 2, 4, 8] {
            let (ns, stats) = time_synth(family, jobs);
            let baseline = *baseline_ns.get_or_insert(ns);
            let mut row = BTreeMap::new();
            row.insert(
                "family".to_string(),
                Json::Str(family.to_string().to_ascii_lowercase()),
            );
            row.insert("jobs".to_string(), Json::Num(jobs as f64));
            row.insert("ns_per_synth".to_string(), Json::Num(ns));
            row.insert(
                "speedup".to_string(),
                Json::Num(if ns > 0.0 { baseline / ns } else { 0.0 }),
            );
            row.insert(
                "candidates".to_string(),
                Json::Num(stats.candidates_considered as f64),
            );
            row.insert("work_units".to_string(), Json::Num(stats.work_units as f64));
            rows.push(Json::Obj(row));
        }
    }

    let cache = PlanCache::new(Family::ALL.len());
    let mut cache_rows = Vec::new();
    for family in Family::ALL {
        let (cold_ns, _) = time_synth(family, 1);
        cache.insert(pattern, family, sepe_core::synthesize(pattern, family));
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(cache.lookup(pattern, family));
        }
        let warm_ns = start.elapsed().as_secs_f64() * 1e9 / reps as f64;
        let mut row = BTreeMap::new();
        row.insert(
            "family".to_string(),
            Json::Str(family.to_string().to_ascii_lowercase()),
        );
        row.insert("cold_ns".to_string(), Json::Num(cold_ns));
        row.insert("warm_ns".to_string(), Json::Num(warm_ns));
        row.insert(
            "speedup".to_string(),
            Json::Num(if warm_ns > 0.0 {
                cold_ns / warm_ns
            } else {
                0.0
            }),
        );
        cache_rows.push(Json::Obj(row));
    }

    let mut doc = BTreeMap::new();
    doc.insert(
        "schema".to_string(),
        Json::Str("sepe-keybench/v1".to_string()),
    );
    doc.insert("reps".to_string(), Json::Num(reps as f64));
    doc.insert("synthesis".to_string(), Json::Arr(rows));
    doc.insert("plan_cache".to_string(), Json::Arr(cache_rows));
    println!("{}", Json::Obj(doc));
}

/// Demonstrates the degradation state machine: fills a guarded map with the
/// user's keys, then streams progressively off-format traffic through it
/// until the drift policy flips the table to the fallback hasher.
fn drift_demo(pattern: &KeyPattern, keys: &[String], threshold: f64) {
    let policy = DriftPolicy::with_threshold(threshold);
    let hasher = GuardedHash::from_pattern(pattern, Family::OffXor, CityHash::new());
    let mut map: UnorderedMap<String, usize, _> = UnorderedMap::with_hasher(hasher);
    for (i, key) in keys.iter().enumerate() {
        map.insert(key.clone(), i);
    }
    println!(
        "drift demo: {} keys inserted, mode {:?}, threshold {:.0}%",
        map.len(),
        map.guard_mode(),
        threshold * 100.0
    );
    // Off-format traffic: the same keys with a marker byte appended.
    let mut flipped_at = None;
    for (i, key) in keys.iter().enumerate() {
        map.insert(format!("{key}!"), i);
        if map.maybe_degrade(&policy) {
            flipped_at = Some(i + 1);
            break;
        }
    }
    let stats = map.drift_stats();
    match flipped_at {
        Some(n) => println!(
            "degraded to the fallback hasher after {n} off-format keys \
             ({:.1}% drift over {} observations); table rehashed, mode {:?}",
            stats.off_rate() * 100.0,
            stats.total(),
            map.guard_mode()
        ),
        None => println!(
            "threshold never exceeded ({:.1}% drift over {} observations); mode {:?}",
            stats.off_rate() * 100.0,
            stats.total(),
            map.guard_mode()
        ),
    }
}
