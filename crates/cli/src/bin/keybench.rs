//! `keybench` — benchmark synthesized and baseline hash functions on *your*
//! keys: the end-to-end tool a downstream user actually wants.
//!
//! ```text
//! keybench my_keys.txt             # one key per line
//! keybench --iterations 200000 my_keys.txt
//! ```
//!
//! Infers the key format, synthesizes all four SEPE families, and reports
//! hashing time (latency-chained), true collisions and bucket collisions
//! against the general-purpose baselines.

use sepe_core::hash::SynthesizedHash;
use sepe_core::infer::{infer_pattern, infer_regex};
use sepe_core::multi::LengthDispatchHash;
use sepe_core::synth::Family;
use sepe_core::{ByteHash, Isa};
use sepe_driver::measure::collisions_of;
use sepe_driver::HashId;
use std::io::Read;
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    iterations: usize,
    path: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut iterations = 100_000;
    let mut path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--iterations" | "-n" => {
                iterations = args
                    .next()
                    .ok_or("--iterations needs a value")?
                    .parse()
                    .map_err(|e| format!("bad iteration count: {e}"))?;
            }
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(Options { iterations, path })
}

/// Latency-chained hashing time over the key set.
fn chained_time(hash: &dyn ByteHash, keys: &[&[u8]], iterations: usize) -> f64 {
    let pot = if keys.len().is_power_of_two() {
        keys.len()
    } else {
        (keys.len().next_power_of_two() / 2).max(1)
    };
    let mask = pot - 1;
    let mut idx = 0usize;
    let mut acc = 0u64;
    let start = Instant::now();
    for _ in 0..iterations {
        let h = hash.hash_bytes(keys[idx]);
        acc ^= h;
        idx = (h as usize) & mask;
    }
    std::hint::black_box(acc);
    start.elapsed().as_secs_f64() * 1e9 / iterations as f64
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("keybench: {msg}");
            }
            eprintln!(
                "usage: keybench [--iterations N] [FILE]   (keys on stdin or FILE, one per line)"
            );
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    let mut input = String::new();
    let read = match &opts.path {
        Some(p) => std::fs::read_to_string(p).map(|s| {
            input = s;
        }),
        None => std::io::stdin()
            .lock()
            .read_to_string(&mut input)
            .map(|_| ()),
    };
    if let Err(e) = read {
        eprintln!("keybench: cannot read keys: {e}");
        return ExitCode::FAILURE;
    }

    let mut keys: Vec<&str> = input
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty())
        .collect();
    keys.sort_unstable();
    keys.dedup();
    if keys.is_empty() {
        eprintln!("keybench: no keys given");
        return ExitCode::FAILURE;
    }
    let key_bytes: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
    let key_strings: Vec<String> = keys.iter().map(|k| (*k).to_owned()).collect();

    let pattern = infer_pattern(key_bytes.iter().copied()).expect("keys are non-empty");
    println!(
        "{} distinct keys, inferred format: {}",
        keys.len(),
        infer_regex(key_bytes.iter().copied()).expect("keys are non-empty")
    );
    println!(
        "length {}..={}, {} variable bits{}\n",
        pattern.min_len(),
        pattern.max_len(),
        pattern.variable_bits(),
        if pattern.variable_bits() <= 64 && pattern.is_fixed_len() {
            " (Pext bijection possible)"
        } else {
            ""
        }
    );

    println!(
        "{:<22} {:>12} {:>10} {:>12}",
        "function", "ns/hash", "T-Coll", "B-Coll"
    );
    let report = |name: &str, hash: &dyn ByteHash| {
        let ns = chained_time(hash, &key_bytes, opts.iterations);
        let (b_coll, t_coll) =
            collisions_of(hash, &key_strings, sepe_containers::BucketPolicy::Modulo);
        println!("{name:<22} {ns:>12.1} {t_coll:>10} {b_coll:>12}");
    };

    for family in Family::ALL {
        let hash = SynthesizedHash::from_pattern(&pattern, family);
        report(&format!("sepe/{family}"), &hash);
    }
    if !pattern.is_fixed_len() {
        if let Ok(dispatch) =
            LengthDispatchHash::from_examples(key_bytes.iter().copied(), Family::OffXor)
        {
            report("sepe/OffXor+dispatch", &dispatch);
        }
    }
    // Related work: entropy-learned hashing (Hentschel et al.), trained on
    // the same keys with a byte budget matching the variable region.
    let budget = key_bytes
        .iter()
        .map(|k| k.len())
        .max()
        .unwrap_or(1)
        .clamp(1, 16);
    let elh = sepe_baselines::EntropyLearnedHash::train(&key_bytes, budget);
    report(
        &format!("related/ELH({} bytes)", elh.positions().len()),
        &elh,
    );

    for id in [HashId::Stl, HashId::City, HashId::Abseil, HashId::Fnv] {
        // Baselines are format-independent; any format argument works.
        let hash = id.build(sepe_keygen::KeyFormat::Ssn, Isa::Native);
        report(&format!("baseline/{}", id.name()), hash.as_ref());
    }
    ExitCode::SUCCESS
}
