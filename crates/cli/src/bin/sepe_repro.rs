//! `sepe-repro` — regenerates the tables and figures of the paper's
//! evaluation section.
//!
//! ```text
//! sepe-repro table1                 # Table 1 at the default scale
//! sepe-repro --scale smoke all      # everything, fast
//! sepe-repro --scale paper fig13    # the paper's full counts (slow)
//! ```

use sepe_cli::repro;
use sepe_driver::analysis::RunScale;
use std::process::ExitCode;

const ARTIFACTS: [&str; 18] = [
    "table1",
    "table2",
    "table3",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "gradual",
    "significance",
    "avalanche",
    "bykey",
    "guard",
    "bench-json",
    "metrics",
];

fn scale_of(name: &str) -> Result<RunScale, String> {
    match name {
        "smoke" => Ok(RunScale::smoke()),
        "quick" => Ok(RunScale {
            affectations: 4000,
            samples: 1,
            ..RunScale::default()
        }),
        "default" => Ok(RunScale::default()),
        "paper" => Ok(RunScale {
            affectations: 10_000,
            samples: 10,
            ..RunScale::default()
        }),
        other => Err(format!(
            "unknown scale {other:?}; expected smoke|quick|default|paper"
        )),
    }
}

fn run(
    artifact: &str,
    scale: &RunScale,
    drift_threshold: f64,
    bundle: Option<&sepe_core::plan_io::SynthBundle>,
) -> Option<String> {
    let out = match artifact {
        "table1" => repro::table1(scale),
        "table2" => repro::table2(scale),
        "table3" => repro::table3(scale),
        "fig13" => repro::fig13(scale),
        "fig14" => repro::fig14(scale),
        "fig15" => repro::fig15(scale),
        "fig16" => repro::fig16(),
        "fig17" | "fig18" => repro::fig17_18(scale),
        "fig19" => repro::fig19(scale),
        "fig20" => repro::fig20(scale),
        "gradual" => repro::gradual(scale),
        "significance" => repro::significance(scale),
        "avalanche" => repro::avalanche(scale),
        "bykey" => repro::bykey(scale),
        "guard" => repro::guard(scale, drift_threshold, bundle),
        "bench-json" => repro::bench_json(scale),
        "metrics" => repro::metrics(scale),
        _ => return None,
    };
    Some(out)
}

fn main() -> ExitCode {
    let mut scale = RunScale::default();
    let mut artifacts: Vec<String> = Vec::new();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut drift_threshold = 0.10;
    let mut plan_path: Option<String> = None;
    let mut check_metrics: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                eprintln!(
                    "usage: sepe-repro [--scale smoke|quick|default|paper] [--out DIR] \
                     [--drift-threshold T] [--plan FILE] [--check-metrics FILE] ARTIFACT...\n\
                     artifacts: {} | all",
                    ARTIFACTS.join(" | ")
                );
                return ExitCode::SUCCESS;
            }
            "--check-metrics" => {
                let v = match args.next() {
                    Some(v) => v,
                    None => {
                        eprintln!("sepe-repro: --check-metrics needs a file");
                        return ExitCode::FAILURE;
                    }
                };
                check_metrics = Some(v);
            }
            "--plan" => {
                let v = match args.next() {
                    Some(v) => v,
                    None => {
                        eprintln!("sepe-repro: --plan needs a file");
                        return ExitCode::FAILURE;
                    }
                };
                plan_path = Some(v);
            }
            "--drift-threshold" => {
                let v = match args.next() {
                    Some(v) => v,
                    None => {
                        eprintln!("sepe-repro: --drift-threshold needs a value");
                        return ExitCode::FAILURE;
                    }
                };
                drift_threshold = match v.parse::<f64>() {
                    Ok(t) if (0.0..=1.0).contains(&t) => t,
                    _ => {
                        eprintln!("sepe-repro: bad drift threshold {v:?}; expected 0..=1");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--out" | "-o" => {
                let v = match args.next() {
                    Some(v) => v,
                    None => {
                        eprintln!("sepe-repro: --out needs a directory");
                        return ExitCode::FAILURE;
                    }
                };
                out_dir = Some(std::path::PathBuf::from(v));
            }
            "--scale" | "-s" => {
                let v = match args.next() {
                    Some(v) => v,
                    None => {
                        eprintln!("sepe-repro: --scale needs a value");
                        return ExitCode::FAILURE;
                    }
                };
                scale = match scale_of(&v) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("sepe-repro: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other => artifacts.push(other.to_owned()),
        }
    }
    // The snapshot trust boundary: a saved metrics file is re-parsed
    // through the strict `sepe-metrics/v1` parser. Any corruption —
    // malformed JSON, wrong schema, non-decimal values, bucket sums that
    // disagree with their count — is a typed error and a nonzero exit.
    if let Some(path) = &check_metrics {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sepe-repro: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match sepe_obs::Snapshot::parse(text.trim_end()) {
            Ok(snap) => {
                println!(
                    "{path}: valid {} snapshot ({} counters, {} gauges, {} histograms)",
                    sepe_obs::SCHEMA,
                    snap.counters.len(),
                    snap.gauges.len(),
                    snap.histograms.len()
                );
                if artifacts.is_empty() {
                    return ExitCode::SUCCESS;
                }
            }
            Err(e) => {
                eprintln!("sepe-repro: {path} is not a usable metrics snapshot: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if artifacts.is_empty() {
        eprintln!("sepe-repro: no artifact given; try `sepe-repro --scale quick all`");
        return ExitCode::FAILURE;
    }
    if artifacts.iter().any(|a| a == "all") {
        artifacts = ARTIFACTS.iter().map(|s| (*s).to_owned()).collect();
        // fig17 and fig18 print together.
        artifacts.retain(|a| a != "fig18");
    }

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("sepe-repro: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    // The plan trust boundary: a bundle is version-checked, checksummed and
    // semantically validated here, before any artifact evaluates a hash
    // with it. A corrupted or hostile file is a typed error and a nonzero
    // exit, never a panic and never a loaded plan.
    let bundle = match &plan_path {
        None => None,
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("sepe-repro: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match sepe_core::plan_io::bundle_from_str(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("sepe-repro: {path} is not a usable synthesis bundle: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    for artifact in &artifacts {
        match run(artifact, &scale, drift_threshold, bundle.as_ref()) {
            Some(out) => {
                println!("{out}");
                // bench-json is the machine-readable perf baseline: it goes
                // to BENCH_<date>.json (in --out or the working directory)
                // so successive runs build a dated trajectory.
                let path = if artifact == "bench-json" {
                    let name = format!("BENCH_{}.json", sepe_driver::bench_json::today_utc());
                    Some(match &out_dir {
                        Some(dir) => dir.join(name),
                        None => std::path::PathBuf::from(name),
                    })
                } else {
                    out_dir
                        .as_ref()
                        .map(|dir| dir.join(format!("{artifact}.txt")))
                };
                if let Some(path) = path {
                    if let Err(e) = std::fs::write(&path, &out) {
                        eprintln!("sepe-repro: cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => {
                eprintln!("sepe-repro: unknown artifact {artifact:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
