//! # sepe-cli
//!
//! The command-line surface of the reproduction:
//!
//! * `keybuilder` — reads example keys from stdin and prints the inferred
//!   regular expression (Figure 5a);
//! * `keysynth` — takes a regular expression and prints the synthesized
//!   hash-function source (Figure 5b/5c);
//! * `sepe-repro` — regenerates every table and figure of the paper's
//!   evaluation section.
//!
//! The table/figure generators live here (rather than in the binaries) so
//! they are unit-testable and reusable.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod repro;

use sepe_core::synth::Family;
use std::fmt;

/// A diagnostic error carried out of a CLI binary: the message the binary
/// prints (prefixed with its own name) before exiting nonzero.
///
/// Built either directly from a message or by attaching context to an
/// underlying error via the [`Context`] extension trait, anyhow-style:
/// `std::fs::read_to_string(p).context(format!("cannot read {p}"))` renders
/// as `cannot read FILE: No such file or directory`.
#[derive(Debug)]
pub struct CliError(String);

impl CliError {
    /// Wraps a plain diagnostic message.
    #[must_use]
    pub fn msg(message: impl Into<String>) -> Self {
        CliError(message.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError(message.to_owned())
    }
}

/// Extension trait attaching human-readable context to fallible operations
/// on user-input paths, so binaries report `context: cause` and exit
/// nonzero instead of panicking.
pub trait Context<T> {
    /// Converts the error to a [`CliError`] prefixed with `context`.
    ///
    /// # Errors
    ///
    /// Forwards the original error, rendered as `context: cause`.
    fn context(self, context: impl fmt::Display) -> Result<T, CliError>;

    /// Like [`Context::context`], but builds the context lazily.
    ///
    /// # Errors
    ///
    /// Forwards the original error, rendered as `context: cause`.
    fn with_context<C: fmt::Display>(self, f: impl FnOnce() -> C) -> Result<T, CliError>;
}

impl<T, E: fmt::Display> Context<T> for Result<T, E> {
    fn context(self, context: impl fmt::Display) -> Result<T, CliError> {
        self.map_err(|e| CliError(format!("{context}: {e}")))
    }

    fn with_context<C: fmt::Display>(self, f: impl FnOnce() -> C) -> Result<T, CliError> {
        self.map_err(|e| CliError(format!("{}: {e}", f())))
    }
}

/// Parses a `--family` argument.
///
/// # Errors
///
/// Returns a message listing the accepted names when `s` is not one.
pub fn parse_family(s: &str) -> Result<Family, String> {
    match s.to_ascii_lowercase().as_str() {
        "naive" => Ok(Family::Naive),
        "offxor" => Ok(Family::OffXor),
        "aes" => Ok(Family::Aes),
        "pext" => Ok(Family::Pext),
        other => Err(format!(
            "unknown family {other:?}; expected one of: naive, offxor, aes, pext"
        )),
    }
}

/// Parses a `--lang` argument.
///
/// # Errors
///
/// Returns a message listing the accepted names when `s` is not one.
pub fn parse_language(s: &str) -> Result<sepe_core::codegen::Language, String> {
    match s.to_ascii_lowercase().as_str() {
        "cpp" | "c++" | "cxx" => Ok(sepe_core::codegen::Language::Cpp),
        "cpp-arm" | "cpp-aarch64" | "arm" | "aarch64" => {
            Ok(sepe_core::codegen::Language::CppAarch64)
        }
        "rust" | "rs" => Ok(sepe_core::codegen::Language::Rust),
        other => Err(format!(
            "unknown language {other:?}; expected cpp, cpp-arm or rust"
        )),
    }
}

/// Renders a human-readable analysis of a synthesized plan: what the
/// pattern looks like, which loads/masks the function performs, and whether
/// the extraction is a provable bijection. Backs `keysynth --explain`.
#[must_use]
pub fn explain_plan(
    pattern: &sepe_core::KeyPattern,
    family: Family,
    plan: &sepe_core::Plan,
) -> String {
    use sepe_core::Plan;
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(out, "family: {family}");
    let _ = writeln!(
        out,
        "format: {} byte(s){}, {} variable bit(s), {} constant run(s)",
        pattern.max_len(),
        if pattern.is_fixed_len() {
            String::from(" fixed")
        } else {
            format!(" (min {})", pattern.min_len())
        },
        pattern.variable_bits(),
        pattern.constant_runs().len()
    );
    match plan {
        Plan::StlFallback => {
            let _ = writeln!(
                out,
                "plan:   STL fallback (formats under 8 bytes are not specialized)"
            );
        }
        Plan::FixedWords { ops, .. } | Plan::VarWords { ops, .. } => {
            let _ = writeln!(out, "plan:   {} unrolled 8-byte load(s)", ops.len());
            for (i, op) in ops.iter().enumerate() {
                if family == Family::Pext {
                    let _ = writeln!(
                        out,
                        "  load {i}: offset {:>3}, mask {:#018x} ({} bits), shift {}",
                        op.offset,
                        op.mask,
                        op.mask.count_ones(),
                        op.shift
                    );
                } else {
                    let _ = writeln!(out, "  load {i}: offset {:>3}", op.offset);
                }
            }
            if let Plan::VarWords { tail_start, .. } = plan {
                let _ = writeln!(out, "  tail:   byte loop from offset {tail_start}");
            }
            match plan.bijection_bits() {
                Some(bits) if bits as usize == pattern.variable_bits() => {
                    let _ = writeln!(
                        out,
                        "bijection: yes — distinct format keys map to distinct {bits}-bit values"
                    );
                }
                _ => {
                    let _ = writeln!(out, "bijection: no guarantee");
                }
            }
        }
        Plan::FixedBlocks { offsets, .. } | Plan::VarBlocks { offsets, .. } => {
            if offsets.is_empty() {
                let _ = writeln!(out, "plan:   one AES round over the replicated key block");
            } else {
                let _ = writeln!(
                    out,
                    "plan:   {} AES round(s) over 16-byte blocks at {:?}",
                    offsets.len(),
                    offsets
                );
            }
            if let Plan::VarBlocks { tail_start, .. } = plan {
                let _ = writeln!(out, "  tail:   block loop from offset {tail_start}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_reports_bijection_and_loads() {
        let pattern = sepe_core::regex::Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("compiles");
        let plan = sepe_core::synthesize(&pattern, Family::Pext);
        let text = explain_plan(&pattern, Family::Pext, &plan);
        assert!(text.contains("36 variable bit(s)"), "{text}");
        assert!(text.contains("bijection: yes"), "{text}");
        assert!(text.contains("mask 0x0f000f0f000f0f0f"), "{text}");
    }

    #[test]
    fn explain_reports_fallback() {
        let pattern = sepe_core::regex::Regex::compile(r"\d{4}").expect("compiles");
        let plan = sepe_core::synthesize(&pattern, Family::OffXor);
        let text = explain_plan(&pattern, Family::OffXor, &plan);
        assert!(text.contains("STL fallback"), "{text}");
    }

    #[test]
    fn explain_reports_aes_blocks() {
        let pattern =
            sepe_core::regex::Regex::compile(r"([0-9a-f]{4}:){7}[0-9a-f]{4}").expect("compiles");
        let plan = sepe_core::synthesize(&pattern, Family::Aes);
        let text = explain_plan(&pattern, Family::Aes, &plan);
        assert!(text.contains("AES round"), "{text}");
    }

    #[test]
    fn families_parse_case_insensitively() {
        assert_eq!(parse_family("PEXT").unwrap(), Family::Pext);
        assert_eq!(parse_family("OffXor").unwrap(), Family::OffXor);
        assert!(parse_family("md5").is_err());
    }

    #[test]
    fn languages_parse() {
        assert!(parse_language("cpp").is_ok());
        assert!(parse_language("rust").is_ok());
        assert!(parse_language("fortran").is_err());
    }

    #[test]
    fn context_chains_render_cause_after_context() {
        let err: Result<(), _> = Err("No such file or directory");
        let chained = err.context("cannot read keys.txt").unwrap_err();
        assert_eq!(
            chained.to_string(),
            "cannot read keys.txt: No such file or directory"
        );
        let lazy: Result<(), _> = Err("bad digit");
        let chained = lazy.with_context(|| format!("line {}", 3)).unwrap_err();
        assert_eq!(chained.to_string(), "line 3: bad digit");
    }
}
