//! Generators for every table and figure of the paper's evaluation.
//!
//! Each function returns the rendered text (the `sepe-repro` binary prints
//! it), and each corresponds to one artifact of Section 4 / Appendix A.
//! Boxplot figures print five-number summaries plus the mean — the exact
//! data the paper draws.

use sepe_core::synth::Family;
use sepe_core::{ByteHash, Isa};
use sepe_driver::analysis::{
    digits_hash, hashing_time, low_mixing_point, per_container_times, run_grid, synthesis_time,
    uniformity_chi2, RunScale,
};
use sepe_driver::HashId;
use sepe_keygen::{Distribution, KeyFormat};
use sepe_stats::{pearson_correlation, BoxplotSummary};
use std::fmt::Write as _;

/// Key sizes of the scaling experiments (2⁴ … 2¹⁴, Figures 16 and 19).
pub const SCALING_SIZES: [usize; 11] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384];

fn boxplot_row(name: &str, values: &[f64]) -> String {
    match BoxplotSummary::of(values) {
        Some(s) => format!(
            "{name:<8} min {:>9.4}  q1 {:>9.4}  med {:>9.4}  q3 {:>9.4}  max {:>9.4}  mean {:>9.4}\n",
            s.min, s.q1, s.median, s.q3, s.max, s.mean
        ),
        None => format!("{name:<8} (no data)\n"),
    }
}

/// **Table 1** — B-Time, H-Time, B-Coll and T-Coll per hash function under
/// the normal key distribution.
#[must_use]
pub fn table1(scale: &RunScale) -> String {
    let mut out = String::from(
        "Table 1: performance under normal key distribution\n\
         Function  B-Time(ms)  H-Time(ms)     B-Coll      T-Coll\n",
    );
    for id in HashId::ALL {
        let agg = run_grid(id, scale, Some(Distribution::Normal));
        let _ = writeln!(
            out,
            "{:<9} {:>10.3} {:>11.4} {:>10.1} {:>11}",
            id.name(),
            agg.b_time_geomean(),
            agg.h_time_geomean(),
            agg.b_coll,
            agg.t_coll
        );
    }
    out
}

/// **Figure 13** — boxplot of B-Time over the full grid, per function
/// (x86 / native ISA). Gperf is included as a row even though the paper
/// excludes it from the plot for being two orders of magnitude slower.
#[must_use]
pub fn fig13(scale: &RunScale) -> String {
    let mut out = String::from("Figure 13: B-Time distribution over the full grid (ms)\n");
    for id in HashId::ALL {
        let agg = run_grid(id, scale, None);
        out.push_str(&boxplot_row(id.name(), &agg.b_times_ms));
    }
    out
}

/// **Figure 14** — collision-count boxplots per function (bucket
/// collisions across key formats).
#[must_use]
pub fn fig14(scale: &RunScale) -> String {
    let mut out = String::from("Figure 14: bucket collisions per function (across key formats)\n");
    for id in HashId::ALL {
        let mut per_format = Vec::new();
        for &format in &scale.formats {
            let n = scale
                .collision_keys
                .min(usize::try_from(format.space()).unwrap_or(usize::MAX));
            let mut sampler = sepe_keygen::KeySampler::new(format, Distribution::Normal, 0xC011);
            let keys = sampler.distinct_pool(n);
            // Gperf trains on a prefix of the measured pool, like the tool.
            let hash = id.build_trained(format, scale.isa, &keys);
            let (b, _) = sepe_driver::measure::collisions_of(
                hash.as_ref(),
                &keys,
                sepe_containers::BucketPolicy::Modulo,
            );
            per_format.push(b as f64);
        }
        out.push_str(&boxplot_row(id.name(), &per_format));
    }
    out
}

/// **Figure 15** — the Figure 13 boxplot in the paper's aarch64
/// configuration: portable code paths only (no hardware `pext`/AES) and no
/// Pext family, since the evaluated machine lacks a bit-extract
/// instruction.
#[must_use]
pub fn fig15(scale: &RunScale) -> String {
    let mut portable = scale.clone();
    portable.isa = Isa::Portable;
    let mut out = String::from(
        "Figure 15: B-Time distribution, portable ISA (paper: aarch64; Pext excluded)\n",
    );
    for id in HashId::ALL {
        if id == HashId::Pext {
            continue;
        }
        let agg = run_grid(id, &portable, None);
        out.push_str(&boxplot_row(id.name(), &agg.b_times_ms));
    }
    out
}

/// **Table 2** — χ² uniformity, normalized by STL, per key distribution.
/// Values near 1 match STL's uniformity; large values mean a skewed
/// distribution.
#[must_use]
pub fn table2(scale: &RunScale) -> String {
    const BINS: usize = 1024;
    let mut out = String::from(
        "Table 2: chi-square uniformity normalized by STL (geomean over key formats)\n\
         Function        Inc      Normal     Uniform\n",
    );
    // Unlike the timing artifacts (which must run alone on the machine),
    // the uniformity analysis is pure computation: fan one thread out per
    // hash function.
    let chi_cells = |id: HashId| -> Vec<Vec<f64>> {
        Distribution::ALL
            .iter()
            .map(|&dist| {
                scale
                    .formats
                    .iter()
                    .map(|&format| {
                        let hash = id.build(format, scale.isa);
                        uniformity_chi2(
                            hash.as_ref(),
                            format,
                            dist,
                            scale.uniformity_keys,
                            BINS,
                            17,
                        )
                        .max(f64::MIN_POSITIVE)
                    })
                    .collect()
            })
            .collect()
    };
    let all: Vec<(HashId, Vec<Vec<f64>>)> = std::thread::scope(|s| {
        let handles: Vec<_> = HashId::ALL
            .iter()
            .map(|&id| s.spawn(move || (id, chi_cells(id))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chi2 worker joins"))
            .collect()
    });
    let stl_cells = &all
        .iter()
        .find(|(id, _)| *id == HashId::Stl)
        .expect("STL is in ALL")
        .1;
    for (id, cells) in &all {
        let normalized: Vec<f64> = cells
            .iter()
            .zip(stl_cells.iter())
            .map(|(per_format, stl_per_format)| {
                let ratios: Vec<f64> = per_format
                    .iter()
                    .zip(stl_per_format)
                    .map(|(c, s)| (c / s).max(1e-6))
                    .collect();
                sepe_stats::geometric_mean(&ratios).unwrap_or(f64::NAN)
            })
            .collect();
        let _ = writeln!(
            out,
            "{:<9} {:>10.2} {:>10.2} {:>10.2}",
            id.name(),
            normalized[0],
            normalized[2], // Normal is the third of Distribution::ALL
            normalized[1]
        );
    }
    out
}

/// **Table 3** — B-Time and T-Coll per key distribution (RQ5).
#[must_use]
pub fn table3(scale: &RunScale) -> String {
    let mut out = String::from(
        "Table 3: key-distribution impact\n\
         Function     Inc BT(ms)    Inc TC   Norm BT(ms)   Norm TC   Unif BT(ms)   Unif TC\n",
    );
    for id in HashId::ALL {
        let mut cells = String::new();
        for dist in [
            Distribution::Incremental,
            Distribution::Normal,
            Distribution::Uniform,
        ] {
            let agg = run_grid(id, scale, Some(dist));
            let _ = write!(cells, " {:>12.3} {:>9}", agg.b_time_geomean(), agg.t_coll);
        }
        let _ = writeln!(out, "{:<9}{}", id.name(), cells);
    }
    out
}

/// **Figure 16** — synthesis time versus key size (RQ6), with the Pearson
/// correlation that establishes linearity.
#[must_use]
pub fn fig16() -> String {
    let mut out = String::from(
        "Figure 16: synthesis time vs key size (seconds)\n\
         size        Pext        OffXor      Aes\n",
    );
    let families = [Family::Pext, Family::OffXor, Family::Aes];
    let mut per_family: Vec<Vec<f64>> = vec![Vec::new(); families.len()];
    for size in SCALING_SIZES {
        let mut row = format!("{size:<8}");
        for (fi, &family) in families.iter().enumerate() {
            // Median of a few runs to steady the tiny timings.
            let mut times: Vec<f64> = (0..5)
                .map(|_| synthesis_time(family, size).as_secs_f64())
                .collect();
            times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let t = times[times.len() / 2];
            per_family[fi].push(t);
            let _ = write!(row, " {t:>11.6}");
        }
        let _ = writeln!(out, "{row}");
    }
    let sizes_f: Vec<f64> = SCALING_SIZES.iter().map(|&s| s as f64).collect();
    for (fi, &family) in families.iter().enumerate() {
        let r = pearson_correlation(&sizes_f, &per_family[fi]).unwrap_or(f64::NAN);
        let _ = writeln!(out, "Pearson(size, time) {family}: {r:.4}");
    }
    out
}

/// **Figures 17 and 18** — bucket and true collisions under a low-mixing
/// container, as a function of the number X of discarded low bits, plus
/// the four-digit-integer worst case of RQ7.
#[must_use]
pub fn fig17_18(scale: &RunScale) -> String {
    let discards = [0u32, 8, 16, 24, 32, 40, 48, 56];
    let format = KeyFormat::Ssn;
    let n = scale.collision_keys;
    let mut out = format!(
        "Figures 17/18: low-mixing container, {} distinct {} keys\n\
         Function   X:      {}\n",
        n,
        format.name(),
        discards.map(|d| format!("{d:>8}")).join(" ")
    );
    let mut rows_bc = String::new();
    let mut rows_tc = String::new();
    // The low-mixing sweep measures a uniform distinct pool with seed 23
    // (see `low_mixing_point`); Gperf trains on a prefix of the same pool.
    let training = sepe_keygen::KeySampler::new(format, Distribution::Uniform, 23)
        .distinct_pool(sepe_driver::registry::GPERF_TRAINING_KEYS.min(n));
    for id in HashId::ALL {
        let hash = id.build_trained(format, scale.isa, &training);
        let mut bc_row = format!("{:<9} BC:", id.name());
        let mut tc_row = format!("{:<9} TC:", id.name());
        for &x in &discards {
            let (bc, tc) = low_mixing_point(hash.as_ref(), format, x, n, 23);
            let _ = write!(bc_row, " {bc:>8}");
            let _ = write!(tc_row, " {tc:>8}");
        }
        rows_bc.push_str(&bc_row);
        rows_bc.push('\n');
        rows_tc.push_str(&tc_row);
        rows_tc.push('\n');
    }
    out.push_str("-- Figure 17 (bucket collisions) --\n");
    out.push_str(&rows_bc);
    out.push_str("-- Figure 18 (true collisions of the retained bits) --\n");
    out.push_str(&rows_tc);
    out.push_str(&four_digit_worst_case());
    out
}

/// The four-digit-integer worst case of RQ7: keys below eight bytes with
/// high-bit bucket indexing. SEPE normally refuses such keys (it falls
/// back to STL), so the Pext plan is force-synthesized here, exactly as
/// the paper's experiment does.
#[must_use]
pub fn four_digit_worst_case() -> String {
    use sepe_core::hash::SynthesizedHash;
    use sepe_core::regex::Regex;
    use sepe_core::synth::synthesize_unchecked;

    let pattern = Regex::compile(r"\d{4}").expect("regex compiles");
    let plan = synthesize_unchecked(&pattern, Family::Pext);
    let pext = SynthesizedHash::new(plan, Family::Pext, Isa::Native);
    let stl = HashId::Stl.build(KeyFormat::FourDigits, Isa::Native);

    let mut out = String::from("-- RQ7 worst case: four-digit keys, 32 discarded bits --\n");
    for (name, hash) in [("STL", stl.as_ref()), ("Pext", &pext as &dyn ByteHash)] {
        let (bc_hi, tc_hi) = low_mixing_point(hash, KeyFormat::FourDigits, 32, 10_000, 29);
        let (bc_lo, tc_lo) = low_mixing_point(hash, KeyFormat::FourDigits, 0, 10_000, 29);
        let _ = writeln!(
            out,
            "{name:<5} top-32-bit indexing: BC {bc_hi:>6}, TC {tc_hi:>6}; \
             full-hash indexing: BC {bc_lo:>6}, TC {tc_lo:>6}"
        );
    }
    out
}

/// **Figure 19** — hashing time versus key size (RQ8), with Pearson
/// correlations establishing linearity.
#[must_use]
pub fn fig19(scale: &RunScale) -> String {
    const ITERS: usize = 20_000;
    let ids = [
        HashId::Pext,
        HashId::Stl,
        HashId::City,
        HashId::Fnv,
        HashId::Abseil,
    ];
    let mut out = format!(
        "Figure 19: hashing time vs key size ({ITERS} hashes, seconds)\n\
         size     {}\n",
        ids.map(|i| format!("{:>11}", i.name())).join(" ")
    );
    let mut per_id: Vec<Vec<f64>> = vec![Vec::new(); ids.len()];
    for size in SCALING_SIZES {
        let mut row = format!("{size:<8}");
        for (ii, &id) in ids.iter().enumerate() {
            let hash: Box<dyn ByteHash> = match id.family() {
                Some(family) => Box::new(digits_hash(family, size, scale.isa)),
                None => id.build(KeyFormat::Digits(size), scale.isa),
            };
            let t = hashing_time(hash.as_ref(), size, ITERS).as_secs_f64();
            per_id[ii].push(t);
            let _ = write!(row, " {t:>11.6}");
        }
        let _ = writeln!(out, "{row}");
    }
    let sizes_f: Vec<f64> = SCALING_SIZES.iter().map(|&s| s as f64).collect();
    for (ii, &id) in ids.iter().enumerate() {
        let r = pearson_correlation(&sizes_f, &per_id[ii]).unwrap_or(f64::NAN);
        let _ = writeln!(out, "Pearson(size, time) {id}: {r:.4}");
    }
    out
}

/// **Figure 20** — B-Time grouped by container (RQ9), aggregated over a
/// representative set of hash functions.
#[must_use]
pub fn fig20(scale: &RunScale) -> String {
    let ids = [HashId::Stl, HashId::OffXor, HashId::Pext, HashId::City];
    let format = scale.formats.first().copied().unwrap_or(KeyFormat::Ssn);
    let mut per_container: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
    for id in ids {
        for (container, times) in per_container_times(id, format, scale) {
            per_container
                .entry(container.name())
                .or_default()
                .extend(times);
        }
    }
    let mut out = format!(
        "Figure 20: B-Time by container ({} keys, ms)\n",
        format.name()
    );
    for (name, times) in per_container {
        out.push_str(&boxplot_row(name, &times));
    }
    out
}

/// **Per-key-type B-Time improvement** over STL — the paper's RQ1 claim
/// "performance improvements ranging from 3.78% to 9.5% for MAC/SSN and
/// URL1, respectively", regenerated per format.
#[must_use]
pub fn bykey(scale: &RunScale) -> String {
    let mut out = String::from(
        "Per-key-type B-Time (geomean ms) and improvement of the best synthetic over STL\n\
         Key      STL        Naive      OffXor     Pext       best-improvement\n",
    );
    for &format in &scale.formats {
        let mut fscale = scale.clone();
        fscale.formats = vec![format];
        let stl = run_grid(HashId::Stl, &fscale, None).b_time_geomean();
        let naive = run_grid(HashId::Naive, &fscale, None).b_time_geomean();
        let offxor = run_grid(HashId::OffXor, &fscale, None).b_time_geomean();
        let pext = run_grid(HashId::Pext, &fscale, None).b_time_geomean();
        let best = naive.min(offxor).min(pext);
        let improvement = (stl - best) / stl * 100.0;
        let _ = writeln!(
            out,
            "{:<8} {stl:<10.4} {naive:<10.4} {offxor:<10.4} {pext:<10.4} {improvement:>6.2}%",
            format.name()
        );
    }
    out
}

/// **Avalanche analysis** (Section 2's property list): how far each hash
/// function is from the cryptographic ideal of flipping half the output
/// bits per input-bit flip. SEPE functions trade this away by design.
#[must_use]
pub fn avalanche(scale: &RunScale) -> String {
    use sepe_stats::avalanche as run_avalanche;
    let format = scale.formats.first().copied().unwrap_or(KeyFormat::Ssn);
    let mut sampler = sepe_keygen::KeySampler::new(format, Distribution::Uniform, 41);
    let keys: Vec<Vec<u8>> = sampler
        .distinct_pool(64)
        .into_iter()
        .map(String::into_bytes)
        .collect();
    let mut out = format!(
        "Avalanche on {} keys (ideal: bias 0, flip rate 0.5, no dead bits)\n\
         Function      bias   flip-rate   dead-output-bits\n",
        format.name()
    );
    for id in HashId::ALL {
        let hash = id.build(format, scale.isa);
        let s = run_avalanche(|k| hash.hash_bytes(k), &keys);
        let _ = writeln!(
            out,
            "{:<9} {:>8.3} {:>11.3} {:>15.0}",
            id.name(),
            s.bias,
            s.mean_flip_rate,
            s.dead_output_fraction * 64.0
        );
    }
    out
}

/// **RQ1 significance tests** — pairwise Mann–Whitney U on the B-Time
/// samples, reproducing the paper's claims that OffXor ≈ Naive (p ≈ 0.51),
/// City ≈ STL (p ≈ 0.44), and synthesized ≠ STL (significant).
#[must_use]
pub fn significance(scale: &RunScale) -> String {
    use sepe_stats::mann_whitney_u;
    let pairs = [
        (HashId::OffXor, HashId::Naive),
        (HashId::City, HashId::Stl),
        (HashId::OffXor, HashId::Stl),
        (HashId::Naive, HashId::Stl),
        (HashId::Pext, HashId::Stl),
        (HashId::Aes, HashId::City),
        (HashId::OffXor, HashId::Pext),
    ];
    let mut cache: std::collections::BTreeMap<HashId, Vec<f64>> = Default::default();
    let mut out = String::from(
        "Mann-Whitney U tests on B-Time samples (two-sided)\n\
         Pair                      U            z       p-value   verdict\n",
    );
    for (a, b) in pairs {
        for id in [a, b] {
            cache
                .entry(id)
                .or_insert_with(|| run_grid(id, scale, None).b_times_ms);
        }
        let r = mann_whitney_u(&cache[&a], &cache[&b]);
        let verdict = if r.is_significant_at(0.05) {
            "different"
        } else {
            "equivalent"
        };
        let _ = writeln!(
            out,
            "{:<8} vs {:<8} {:>12.1} {:>12.3} {:>12.4}   {verdict}",
            a.name(),
            b.name(),
            r.u,
            r.z,
            r.p_value
        );
    }
    out
}

/// **RQ7, "Gradual Specialization"** — the Naive → OffXor → Pext ladder:
/// under ordinary modulo containers the three run alike, so the simpler
/// OffXor suffices; only low-mixing containers justify Pext/Aes.
#[must_use]
pub fn gradual(scale: &RunScale) -> String {
    let format = scale.formats.first().copied().unwrap_or(KeyFormat::Ssn);
    let ids = [HashId::Naive, HashId::OffXor, HashId::Pext, HashId::Aes];
    let mut out = format!(
        "Gradual specialization ({} keys): each row adds one constraint\n\
         Family    B-Time(ms)  H-Time(ms)   TC(mod)   TC(top-16-bits)\n",
        format.name()
    );
    for id in ids {
        let mut fscale = scale.clone();
        fscale.formats = vec![format];
        let agg = run_grid(id, &fscale, Some(Distribution::Uniform));
        let hash = id.build(format, scale.isa);
        let (_, tc_mod) = low_mixing_point(hash.as_ref(), format, 0, scale.collision_keys, 3);
        let (_, tc_low) = low_mixing_point(hash.as_ref(), format, 48, scale.collision_keys, 3);
        let _ = writeln!(
            out,
            "{:<9} {:>10.3} {:>11.4} {:>9} {:>16}",
            id.name(),
            agg.b_time_geomean(),
            agg.h_time_geomean(),
            tc_mod,
            tc_low
        );
    }
    out.push_str(
        "(Paper: \"except for low-mixing containers, there is no performance benefit\n\
         from using our most constrained function, Pext, over the simpler OffXor\".)\n",
    );
    out
}

/// **Robustness artifact** — the format-drift degradation state machine:
/// per key format, a guarded OffXor map absorbs clean traffic, then
/// off-format traffic (one marker byte appended) until the drift policy
/// flips the table to the CityHash fallback. The table reports the flip
/// point and the observed drift rate at the transition.
///
/// When a validated [`SynthBundle`] is supplied (`sepe-repro --plan FILE
/// guard`), an extra row drives the *loaded* plan — specialized hash,
/// guard pattern and family all from the bundle — through the same drill,
/// on keys sampled from the bundle's own pattern.
///
/// [`SynthBundle`]: sepe_core::plan_io::SynthBundle
#[must_use]
pub fn guard(
    scale: &RunScale,
    threshold: f64,
    bundle: Option<&sepe_core::plan_io::SynthBundle>,
) -> String {
    use sepe_baselines::CityHash;
    use sepe_containers::{DriftPolicy, UnorderedMap};
    use sepe_core::guard::GuardedHash;
    use sepe_core::regex::Regex;

    let policy = DriftPolicy::with_threshold(threshold);
    let clean_keys = scale.collision_keys.clamp(64, 4096);
    let mut out = format!(
        "Format-drift degradation (threshold {:.0}%, {clean_keys} clean keys per format)\n\
         Format    clean-drift  flip-after  drift-at-flip  mode-after\n",
        threshold * 100.0
    );
    for format in &scale.formats {
        let pattern = Regex::compile(&format.regex()).expect("paper formats compile");
        let hasher = GuardedHash::from_pattern(&pattern, Family::OffXor, CityHash::new());
        let mut map: UnorderedMap<String, u64, _> = UnorderedMap::with_hasher(hasher);
        let step = (format.space() / clean_keys as u128).max(1);
        for i in 0..clean_keys {
            map.insert(format.materialize(i as u128 * step), i as u64);
        }
        let clean_drift = map.drift_stats().off_rate();
        let mut flip_after = None;
        for i in 0..clean_keys * 2 {
            let key = format!(
                "{}!",
                format.materialize((i as u128 * step) % format.space())
            );
            map.insert(key, i as u64);
            if map.maybe_degrade(&policy) {
                flip_after = Some(i + 1);
                break;
            }
        }
        let stats = map.drift_stats();
        let _ = writeln!(
            out,
            "{:<9} {:>10.1}% {:>11} {:>13.1}% {:>11}",
            format.name(),
            clean_drift * 100.0,
            flip_after.map_or_else(|| "never".to_owned(), |n| n.to_string()),
            stats.off_rate() * 100.0,
            format!("{:?}", map.guard_mode())
        );
    }
    if let Some(b) = bundle {
        use sepe_core::hash::SynthesizedHash;
        let spec = SynthesizedHash::new(b.plan.clone(), b.family, Isa::Native);
        let hasher = GuardedHash::new(&b.pattern, spec, CityHash::new());
        let mut map: UnorderedMap<Vec<u8>, u64, _> = UnorderedMap::with_hasher(hasher);
        let mut rng = sepe_keygen::SplitMix64::new(0x91A4);
        let sample = |rng: &mut sepe_keygen::SplitMix64| -> Vec<u8> {
            (0..b.pattern.max_len())
                .map(|i| {
                    let choices: Vec<u8> = b.pattern.bytes()[i].possible_bytes().collect();
                    choices[(rng.next_u64() % choices.len() as u64) as usize]
                })
                .collect()
        };
        for i in 0..clean_keys {
            map.insert(sample(&mut rng), i as u64);
        }
        let clean_drift = map.drift_stats().off_rate();
        let mut flip_after = None;
        for i in 0..clean_keys * 2 {
            // Lengthening past the pattern's maximum is off-format for any
            // loaded bundle, whatever bytes its format admits.
            let mut key = sample(&mut rng);
            key.resize(b.pattern.max_len() + 1 + i % 3, b'!');
            map.insert(key, i as u64);
            if map.maybe_degrade(&policy) {
                flip_after = Some(i + 1);
                break;
            }
        }
        let stats = map.drift_stats();
        let _ = writeln!(
            out,
            "{:<9} {:>10.1}% {:>11} {:>13.1}% {:>11}",
            format!("plan/{}", b.family),
            clean_drift * 100.0,
            flip_after.map_or_else(|| "never".to_owned(), |n| n.to_string()),
            stats.off_rate() * 100.0,
            format!("{:?}", map.guard_mode())
        );
    }
    out.push_str(
        "(Off-format keys route to CityHash under a separated tag until the drift\n\
         threshold trips; then the table re-files its entries to the fallback\n\
         hasher through an incremental epoch migration — no stop-the-world rebuild.)\n",
    );
    out
}

/// **Benchmark baseline** — the `sepe-bench/v1` JSON document: batched vs
/// scalar ns/key for every family × format × width cell, plus the
/// migration scenario (churn ops/sec at steady state, while an epoch
/// drain is in flight, and after it completes) and the concurrency
/// scenario (the same churn fanned over a lock-striped [`ShardedMap`] at
/// 1/2/4/8 threads) and the resynthesis scenario (p50/p99/max mutating-op
/// latency across a resynthesis trigger, synthesis inline on the serving
/// thread vs handed to the background supervisor) and the adversarial
/// scenario (churn ns/op and worst chain length benign, under a
/// brute-forced collision flood, and after the collision-storm detector
/// escalates to the keyed hasher, plus the escalation latency) and the
/// synthesis scenario (ns per candidate search at 1/2/4/8 worker threads
/// per family, plus the memoized plan-cache hit as the `jobs = 0` row).
/// `sepe-repro` writes it as `BENCH_<date>.json`, the machine-readable
/// perf trajectory.
///
/// [`ShardedMap`]: sepe_containers::ShardedMap
#[must_use]
pub fn bench_json(scale: &RunScale) -> String {
    use sepe_driver::bench_json::{
        adversarial_records, concurrency_records, metrics_snapshot, migration_records,
        resynth_records, run_suite, synthesis_records, to_json, today_utc, BenchConfig,
    };
    let config = BenchConfig::from_scale(scale);
    let records = run_suite(scale, &config);
    let migration = migration_records(scale, &config);
    let concurrency = concurrency_records(scale, &config);
    let resynthesis = resynth_records(scale, &config);
    let adversarial = adversarial_records(scale, &config);
    let synthesis = synthesis_records(scale, &config);
    let metrics = metrics_snapshot(scale, &config);
    to_json(
        &today_utc(),
        &records,
        &migration,
        &concurrency,
        &resynthesis,
        &adversarial,
        &synthesis,
        &metrics,
    )
    .to_string()
}

/// **Metrics snapshot** — the `sepe-metrics/v1` registry export of a
/// deterministic, seeded, single-threaded workload (fill, churn, degrade,
/// drain, churn again — per paper format). Two runs at the same scale
/// print byte-identical snapshots; `sepe-repro --check-metrics FILE`
/// re-parses a saved snapshot through the strict typed parser.
#[must_use]
pub fn metrics(scale: &RunScale) -> String {
    use sepe_driver::bench_json::{metrics_snapshot, BenchConfig};
    let config = BenchConfig::from_scale(scale);
    metrics_snapshot(scale, &config).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> RunScale {
        let mut s = RunScale::smoke();
        s.affectations = 300;
        s.collision_keys = 400;
        s.uniformity_keys = 3000;
        s.formats = vec![KeyFormat::Ssn];
        s
    }

    #[test]
    fn table1_lists_all_functions() {
        let t = table1(&tiny_scale());
        for id in HashId::ALL {
            assert!(t.contains(id.name()), "{t}");
        }
    }

    #[test]
    fn fig15_excludes_pext() {
        let t = fig15(&tiny_scale());
        assert!(!t.lines().any(|l| l.starts_with("Pext")), "{t}");
        assert!(t.contains("OffXor"));
    }

    #[test]
    fn table2_normalizes_stl_to_one() {
        let t = table2(&tiny_scale());
        let stl_line = t.lines().find(|l| l.starts_with("STL")).expect("STL row");
        for cell in stl_line.split_whitespace().skip(1) {
            let v: f64 = cell.parse().expect("numeric cell");
            assert!((v - 1.0).abs() < 1e-9, "{stl_line}");
        }
    }

    #[test]
    fn four_digit_worst_case_shows_pext_collapse() {
        let t = four_digit_worst_case();
        assert!(t.contains("Pext"));
        assert!(t.contains("STL"));
        // Pext with top-32-bit indexing must collide on essentially all
        // 10 000 four-digit keys (the paper reports 9 999 TCs).
        let pext_line = t.lines().find(|l| l.starts_with("Pext")).expect("Pext row");
        let tc: u64 = pext_line
            .split("TC")
            .nth(1)
            .and_then(|s| s.split([',', ';']).next())
            .and_then(|s| s.trim().parse().ok())
            .expect("TC value");
        assert!(tc > 9000, "{pext_line}");
    }

    #[test]
    fn guard_artifact_reports_a_flip_for_every_format() {
        let mut s = tiny_scale();
        s.formats = vec![KeyFormat::Ssn, KeyFormat::Ipv4];
        s.collision_keys = 200;
        let t = guard(&s, 0.10, None);
        assert!(t.contains("Format-drift degradation"), "{t}");
        for line in t.lines().filter(|l| l.contains("Degraded")) {
            assert!(!line.contains("never"), "{line}");
        }
        assert!(t.contains("SSN") && t.contains("IPv4"), "{t}");
        assert!(t.matches("Degraded").count() == 2, "{t}");
    }

    #[test]
    fn fig17_18_has_rows_for_each_function() {
        let mut s = tiny_scale();
        s.collision_keys = 300;
        let t = fig17_18(&s);
        assert!(t.contains("OffXor    BC:"));
        assert!(t.contains("OffXor    TC:"));
    }
}
