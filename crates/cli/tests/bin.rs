//! End-to-end tests of the command-line binaries, including the composed
//! `keysynth "$(keybuilder < keys)"` workflow of Figure 5a.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn keybuilder() -> Command {
    Command::new(env!("CARGO_BIN_EXE_keybuilder"))
}

fn keysynth() -> Command {
    Command::new(env!("CARGO_BIN_EXE_keysynth"))
}

fn sepe_repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sepe-repro"))
}

fn run_with_stdin(mut cmd: Command, input: &str) -> (String, String, bool) {
    let mut child = cmd
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    // A child that rejects its arguments exits before reading stdin; the
    // resulting BrokenPipe is expected, not a test failure.
    match child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(input.as_bytes())
    {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {}
        Err(e) => panic!("write stdin: {e}"),
    }
    let out = child.wait_with_output().expect("binary finishes");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn keybuilder_infers_ssn_regex() {
    let (stdout, _, ok) = run_with_stdin(keybuilder(), "000-00-0000\n555-55-5555\n");
    assert!(ok);
    assert_eq!(stdout.trim(), r"[0-9]{3}-[0-9]{2}-[0-9]{4}");
}

#[test]
fn keybuilder_rejects_empty_input() {
    let (_, stderr, ok) = run_with_stdin(keybuilder(), "");
    assert!(!ok);
    assert!(stderr.contains("zero example keys"), "{stderr}");
}

#[test]
fn keysynth_emits_all_four_families_by_default() {
    let out = keysynth()
        .arg(r"(([0-9]{3})\.){3}[0-9]{3}")
        .output()
        .expect("keysynth runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for family in ["Naive", "OffXor", "Aes", "Pext"] {
        assert!(
            stdout.contains(&format!("Synthesized{family}Hash")),
            "{family} missing"
        );
    }
}

#[test]
fn keysynth_rust_output_for_one_family() {
    let out = keysynth()
        .args([
            "--family", "offxor", "--lang", "rust", "--name", "my_hash", r"\d{16}",
        ])
        .output()
        .expect("keysynth runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pub fn my_hash(key: &[u8]) -> u64"));
    assert!(!stdout.contains("Pext"));
}

#[test]
fn keysynth_reports_regex_errors() {
    let out = keysynth().arg("a|b").output().expect("keysynth runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("alternation"), "{stderr}");
}

#[test]
fn keysynth_plan_round_trips_through_a_file() {
    let out = keysynth()
        .args(["--family", "pext", "--emit-plan", r"\d{16}"])
        .output()
        .expect("keysynth runs");
    assert!(out.status.success());
    let bundle = String::from_utf8_lossy(&out.stdout);
    assert!(bundle.contains("\"family\""), "{bundle}");

    let path = std::env::temp_dir().join(format!("keysynth-plan-{}.json", std::process::id()));
    std::fs::write(&path, bundle.trim()).expect("plan written");
    let out = keysynth()
        .args(["--lang", "rust", "--name", "replayed", "--plan"])
        .arg(&path)
        .output()
        .expect("keysynth runs");
    let _ = std::fs::remove_file(&path);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("pub fn replayed(key: &[u8]) -> u64"),
        "{stdout}"
    );
}

#[test]
fn keysynth_reports_unreadable_plan_files() {
    let out = keysynth()
        .args(["--plan", "/nonexistent/plan.json"])
        .output()
        .expect("keysynth runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read plan"), "{stderr}");
}

#[test]
fn keysynth_reports_malformed_plan_files() {
    let path = std::env::temp_dir().join(format!("keysynth-bad-plan-{}.json", std::process::id()));
    std::fs::write(&path, "{\"pattern\": 42}").expect("file written");
    let out = keysynth()
        .args(["--plan"])
        .arg(&path)
        .output()
        .expect("keysynth runs");
    let _ = std::fs::remove_file(&path);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not a synthesis bundle"), "{stderr}");
}

#[test]
fn figure_5a_pipeline_composes() {
    // keysynth "$(keybuilder < keys)"
    let (regex, _, ok) = run_with_stdin(keybuilder(), "000.000.000.000\n555.555.555.555\n");
    assert!(ok);
    let out = keysynth()
        .args(["--family", "pext", regex.trim()])
        .output()
        .expect("keysynth runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("_pext_u64"), "{stdout}");
}

#[test]
fn keybuilder_report_flags_thin_examples() {
    let mut cmd = keybuilder();
    cmd.arg("--report");
    let (stdout, stderr, ok) = run_with_stdin(cmd, "101\n121\n");
    assert!(ok);
    assert!(!stdout.trim().is_empty());
    assert!(stderr.contains("under-exercised"), "{stderr}");
}

#[test]
fn keybuilder_report_praises_good_examples() {
    let mut cmd = keybuilder();
    cmd.arg("--report");
    let (_, stderr, ok) =
        run_with_stdin(cmd, "000-00-0000\n555-55-5555\n912-83-1234\n384-67-6789\n");
    assert!(ok);
    assert!(stderr.contains("well exercised"), "{stderr}");
}

#[test]
fn sepe_repro_out_writes_artifact_files() {
    let dir = std::env::temp_dir().join(format!("sepe-repro-out-{}", std::process::id()));
    let out = sepe_repro()
        .args(["--scale", "smoke", "--out"])
        .arg(&dir)
        .arg("gradual")
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(dir.join("gradual.txt")).expect("artifact written");
    assert!(written.contains("Gradual specialization"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn keybench_reports_all_families_on_stdin_keys() {
    let keys: String = (0..256)
        .map(|i| format!("{:03}-{:02}-{:04}\n", i % 999, i % 97, i))
        .collect();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_keybench"));
    cmd.args(["--iterations", "2000"]);
    let (stdout, stderr, ok) = run_with_stdin(cmd, &keys);
    assert!(ok, "{stderr}");
    for row in [
        "sepe/Naive",
        "sepe/OffXor",
        "sepe/Aes",
        "sepe/Pext",
        "baseline/STL",
    ] {
        assert!(stdout.contains(row), "{row} missing from:\n{stdout}");
    }
    assert!(stdout.contains("Pext bijection possible"), "{stdout}");
}

#[test]
fn keybench_guard_reports_guarded_rows_and_drift_transition() {
    let keys: String = (0..256)
        .map(|i| format!("{:03}-{:02}-{:04}\n", i % 999, i % 97, i))
        .collect();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_keybench"));
    cmd.args([
        "--iterations",
        "2000",
        "--guard",
        "--drift-threshold",
        "0.1",
    ]);
    let (stdout, stderr, ok) = run_with_stdin(cmd, &keys);
    assert!(ok, "{stderr}");
    for row in ["sepe/Naive+guard", "sepe/OffXor+guard", "sepe/Pext+guard"] {
        assert!(stdout.contains(row), "{row} missing from:\n{stdout}");
    }
    assert!(stdout.contains("guard drift:"), "{stdout}");
    assert!(
        stdout.contains("degraded to the fallback hasher"),
        "{stdout}"
    );
    assert!(stdout.contains("mode Degraded"), "{stdout}");
}

#[test]
fn sepe_repro_guard_artifact_shows_the_state_machine() {
    let out = sepe_repro()
        .args(["--scale", "smoke", "--drift-threshold", "0.2", "guard"])
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Format-drift degradation"), "{stdout}");
    assert!(stdout.contains("Degraded"), "{stdout}");
}

#[test]
fn keybench_rejects_empty_input() {
    let (_, stderr, ok) = run_with_stdin(Command::new(env!("CARGO_BIN_EXE_keybench")), "\n\n");
    assert!(!ok);
    assert!(stderr.contains("no keys"), "{stderr}");
}

#[test]
fn sepe_repro_lists_usage_and_rejects_unknowns() {
    let out = sepe_repro().arg("--help").output().expect("repro runs");
    assert!(out.status.success());
    let usage = String::from_utf8_lossy(&out.stderr);
    assert!(usage.contains("table1"));

    let out = sepe_repro()
        .args(["--scale", "smoke", "nosuch"])
        .output()
        .expect("repro runs");
    assert!(!out.status.success());
}

#[test]
fn sepe_repro_smoke_gradual_runs() {
    let out = sepe_repro()
        .args(["--scale", "smoke", "gradual"])
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Gradual specialization"));
    assert!(stdout.contains("OffXor"));
}

#[test]
fn keybench_batch_emits_valid_keybench_json() {
    let keys: String = (0..256)
        .map(|i| format!("{:03}-{:02}-{:04}\n", i % 999, i % 97, i))
        .collect();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_keybench"));
    cmd.args(["--iterations", "2000", "--batch", "8"]);
    let (stdout, stderr, ok) = run_with_stdin(cmd, &keys);
    assert!(ok, "{stderr}");

    let doc = sepe_core::plan_io::Json::parse(&stdout).expect("stdout is pure JSON");
    assert_eq!(doc.get("schema").as_str(), Some("sepe-keybench/v1"));
    assert_eq!(doc.get("batch_width").as_u64(), Some(8));
    assert_eq!(doc.get("keys").as_u64(), Some(256));
    let records = doc.get("records").as_arr().expect("records array");
    // Every family, at widths 1 and 8.
    assert_eq!(records.len(), 4 * 2);
    for rec in records {
        let family = rec.get("family").as_str().expect("family string");
        assert!(
            ["naive", "offxor", "aes", "pext"].contains(&family),
            "unexpected family {family}"
        );
        let width = rec.get("width").as_u64().expect("width number");
        assert!(width == 1 || width == 8, "unexpected width {width}");
        for field in ["ns_per_key", "throughput_mkeys"] {
            let v = match rec.get(field) {
                sepe_core::plan_io::Json::Num(n) => *n,
                other => panic!("{field} is not a number: {other:?}"),
            };
            assert!(v > 0.0 && v.is_finite(), "{field} = {v} not positive");
        }
    }
}

#[test]
fn keybench_batch_rejects_width_below_two() {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_keybench"));
    cmd.args(["--batch", "1"]);
    let (_, stderr, ok) = run_with_stdin(cmd, "000-00-0000\n");
    assert!(!ok);
    assert!(stderr.contains("at least 2"), "{stderr}");
}

#[test]
fn sepe_repro_bench_json_writes_a_dated_parseable_baseline() {
    let dir = std::env::temp_dir().join(format!("sepe-bench-json-{}", std::process::id()));
    let out = sepe_repro()
        .args(["--scale", "smoke", "--out"])
        .arg(&dir)
        .arg("bench-json")
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let bench_file = std::fs::read_dir(&dir)
        .expect("out dir exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .expect("a BENCH_<date>.json was written");
    let text = std::fs::read_to_string(&bench_file).expect("baseline readable");
    let doc = sepe_core::plan_io::Json::parse(&text).expect("baseline is valid JSON");

    // Golden schema fixture: the emitted document must carry exactly the
    // fields the fixture pins, so downstream consumers can rely on them.
    let fixture = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/bench_schema.json"
    ))
    .expect("fixture readable");
    let schema = sepe_core::plan_io::Json::parse(&fixture).expect("fixture is valid JSON");

    assert_eq!(doc.get("schema").as_str(), schema.get("schema").as_str());
    if let sepe_core::plan_io::Json::Obj(map) = &doc {
        let keys: Vec<&str> = map.keys().map(String::as_str).collect();
        let want: Vec<&str> = schema
            .get("top_level")
            .as_arr()
            .expect("top_level list")
            .iter()
            .filter_map(|j| j.as_str())
            .collect();
        assert_eq!(keys, want, "top-level fields drifted from the fixture");
    } else {
        panic!("baseline is not a JSON object");
    }
    let date = doc.get("date").as_str().expect("date string");
    assert_eq!(date.len(), 10, "date {date} is not YYYY-MM-DD");
    let record_fields: Vec<&str> = schema
        .get("record_fields")
        .as_arr()
        .expect("record_fields list")
        .iter()
        .filter_map(|j| j.as_str())
        .collect();
    let records = doc.get("records").as_arr().expect("records array");
    assert!(!records.is_empty(), "baseline has no records");
    for rec in records {
        if let sepe_core::plan_io::Json::Obj(map) = rec {
            let keys: Vec<&str> = map.keys().map(String::as_str).collect();
            assert_eq!(
                keys, record_fields,
                "record fields drifted from the fixture"
            );
        } else {
            panic!("record is not a JSON object");
        }
        let ns = rec.get("ns_per_key");
        let tp = rec.get("throughput_mkeys");
        match (ns, tp) {
            (sepe_core::plan_io::Json::Num(ns), sepe_core::plan_io::Json::Num(tp)) => {
                assert!(*ns > 0.0 && ns.is_finite(), "ns_per_key {ns}");
                assert!(*tp > 0.0 && tp.is_finite(), "throughput {tp}");
            }
            other => panic!("non-numeric measurements: {other:?}"),
        }
    }

    // The migration scenario rides in the same document: three phases per
    // format, fields pinned by the fixture, all measurements positive.
    let migration_fields: Vec<&str> = schema
        .get("migration_fields")
        .as_arr()
        .expect("migration_fields list")
        .iter()
        .filter_map(|j| j.as_str())
        .collect();
    let migration = doc.get("migration").as_arr().expect("migration array");
    assert!(!migration.is_empty(), "baseline has no migration rows");
    assert_eq!(
        migration.len() % 3,
        0,
        "phases come in steady/migrating/drained triples"
    );
    for row in migration {
        if let sepe_core::plan_io::Json::Obj(map) = row {
            let keys: Vec<&str> = map.keys().map(String::as_str).collect();
            assert_eq!(
                keys, migration_fields,
                "migration fields drifted from the fixture"
            );
        } else {
            panic!("migration row is not a JSON object");
        }
        let phase = row.get("phase").as_str().expect("phase string");
        assert!(
            ["steady", "migrating", "drained"].contains(&phase),
            "unknown phase {phase}"
        );
        match row.get("ns_per_op") {
            sepe_core::plan_io::Json::Num(ns) => {
                assert!(*ns > 0.0 && ns.is_finite(), "ns_per_op {ns}");
            }
            other => panic!("non-numeric ns_per_op: {other:?}"),
        }
    }

    // The concurrency scenario rides in the same document: one row per
    // format x thread count, fields pinned by the fixture.
    let concurrency_fields: Vec<&str> = schema
        .get("concurrency_fields")
        .as_arr()
        .expect("concurrency_fields list")
        .iter()
        .filter_map(|j| j.as_str())
        .collect();
    let concurrency = doc.get("concurrency").as_arr().expect("concurrency array");
    assert!(!concurrency.is_empty(), "baseline has no concurrency rows");
    for row in concurrency {
        if let sepe_core::plan_io::Json::Obj(map) = row {
            let keys: Vec<&str> = map.keys().map(String::as_str).collect();
            assert_eq!(
                keys, concurrency_fields,
                "concurrency fields drifted from the fixture"
            );
        } else {
            panic!("concurrency row is not a JSON object");
        }
        match (row.get("threads"), row.get("ns_per_op"), row.get("speedup")) {
            (
                sepe_core::plan_io::Json::Num(threads),
                sepe_core::plan_io::Json::Num(ns),
                sepe_core::plan_io::Json::Num(speedup),
            ) => {
                assert!(*threads >= 1.0, "threads {threads}");
                assert!(*ns > 0.0 && ns.is_finite(), "ns_per_op {ns}");
                assert!(*speedup > 0.0 && speedup.is_finite(), "speedup {speedup}");
            }
            other => panic!("non-numeric concurrency measurements: {other:?}"),
        }
    }

    // The resynthesis scenario rides in the same document: an inline and a
    // supervised row per format, fields pinned by the fixture. The
    // latencies must be positive and internally ordered (p50 <= p99 <=
    // max); the inline/supervised *ratio* is machine-dependent and not
    // asserted here.
    let resynthesis_fields: Vec<&str> = schema
        .get("resynthesis_fields")
        .as_arr()
        .expect("resynthesis_fields list")
        .iter()
        .filter_map(|j| j.as_str())
        .collect();
    let resynthesis = doc.get("resynthesis").as_arr().expect("resynthesis array");
    assert!(!resynthesis.is_empty(), "baseline has no resynthesis rows");
    assert_eq!(
        resynthesis.len() % 2,
        0,
        "modes come in inline/supervised pairs"
    );
    for row in resynthesis {
        if let sepe_core::plan_io::Json::Obj(map) = row {
            let keys: Vec<&str> = map.keys().map(String::as_str).collect();
            assert_eq!(
                keys, resynthesis_fields,
                "resynthesis fields drifted from the fixture"
            );
        } else {
            panic!("resynthesis row is not a JSON object");
        }
        let mode = row.get("mode").as_str().expect("mode string");
        assert!(
            ["inline", "supervised"].contains(&mode),
            "unknown mode {mode}"
        );
        match (row.get("p50_ns"), row.get("p99_ns"), row.get("max_ns")) {
            (
                sepe_core::plan_io::Json::Num(p50),
                sepe_core::plan_io::Json::Num(p99),
                sepe_core::plan_io::Json::Num(max),
            ) => {
                assert!(*p50 > 0.0 && p50.is_finite(), "p50_ns {p50}");
                assert!(*p99 >= *p50, "p99_ns {p99} below p50_ns {p50}");
                assert!(*max >= *p99, "max_ns {max} below p99_ns {p99}");
            }
            other => panic!("non-numeric resynthesis measurements: {other:?}"),
        }
    }

    // The adversarial scenario rides in the same document: a benign, an
    // attack, and an escalated row per format, fields pinned by the
    // fixture. The attack row must show the flood landing (long chain),
    // the escalated row must show the keyed rung breaking it apart and
    // carry a positive escalation latency.
    let adversarial_fields: Vec<&str> = schema
        .get("adversarial_fields")
        .as_arr()
        .expect("adversarial_fields list")
        .iter()
        .filter_map(|j| j.as_str())
        .collect();
    let adversarial = doc.get("adversarial").as_arr().expect("adversarial array");
    assert!(!adversarial.is_empty(), "baseline has no adversarial rows");
    assert_eq!(
        adversarial.len() % 3,
        0,
        "phases come in benign/attack/escalated triples"
    );
    for row in adversarial {
        if let sepe_core::plan_io::Json::Obj(map) = row {
            let keys: Vec<&str> = map.keys().map(String::as_str).collect();
            assert_eq!(
                keys, adversarial_fields,
                "adversarial fields drifted from the fixture"
            );
        } else {
            panic!("adversarial row is not a JSON object");
        }
        let phase = row.get("phase").as_str().expect("phase string");
        assert!(
            ["benign", "attack", "escalated"].contains(&phase),
            "unknown phase {phase}"
        );
        match (
            row.get("ns_per_op"),
            row.get("max_chain"),
            row.get("escalation_us"),
        ) {
            (
                sepe_core::plan_io::Json::Num(ns),
                sepe_core::plan_io::Json::Num(chain),
                sepe_core::plan_io::Json::Num(esc),
            ) => {
                assert!(*ns > 0.0 && ns.is_finite(), "ns_per_op {ns}");
                assert!(*chain >= 1.0, "max_chain {chain}");
                match phase {
                    "attack" => assert!(*chain >= 64.0, "flood chain {chain}"),
                    "escalated" => assert!(*esc > 0.0, "escalation_us {esc}"),
                    _ => assert_eq!(*esc, 0.0, "benign rows carry no latency"),
                }
            }
            other => panic!("non-numeric adversarial measurements: {other:?}"),
        }
    }

    // The synthesis scenario rides in the same document: per (format,
    // family) a row at 1/2/4/8 worker threads plus the memoized plan-cache
    // row at jobs = 0, fields pinned by the fixture. The candidate count
    // must be identical at every thread count (the determinism claim) and
    // zero on the cache row (no search ran).
    let synthesis_fields: Vec<&str> = schema
        .get("synthesis_fields")
        .as_arr()
        .expect("synthesis_fields list")
        .iter()
        .filter_map(|j| j.as_str())
        .collect();
    let synthesis = doc.get("synthesis").as_arr().expect("synthesis array");
    assert!(!synthesis.is_empty(), "baseline has no synthesis rows");
    assert_eq!(
        synthesis.len() % 5,
        0,
        "jobs come in 0 (cached) / 1 / 2 / 4 / 8 quintuples"
    );
    let mut cell_candidates: std::collections::BTreeMap<(String, String), f64> =
        std::collections::BTreeMap::new();
    for row in synthesis {
        if let sepe_core::plan_io::Json::Obj(map) = row {
            let keys: Vec<&str> = map.keys().map(String::as_str).collect();
            assert_eq!(
                keys, synthesis_fields,
                "synthesis fields drifted from the fixture"
            );
        } else {
            panic!("synthesis row is not a JSON object");
        }
        match (
            row.get("jobs"),
            row.get("ns_per_synth"),
            row.get("speedup"),
            row.get("candidates"),
        ) {
            (
                sepe_core::plan_io::Json::Num(jobs),
                sepe_core::plan_io::Json::Num(ns),
                sepe_core::plan_io::Json::Num(speedup),
                sepe_core::plan_io::Json::Num(candidates),
            ) => {
                assert!([0.0, 1.0, 2.0, 4.0, 8.0].contains(jobs), "jobs {jobs}");
                assert!(*ns > 0.0 && ns.is_finite(), "ns_per_synth {ns}");
                assert!(*speedup > 0.0 && speedup.is_finite(), "speedup {speedup}");
                let format = row.get("format").as_str().expect("format").to_string();
                let family = row.get("family").as_str().expect("family").to_string();
                if *jobs == 0.0 {
                    assert_eq!(*candidates, 0.0, "cache row scores no candidates");
                } else {
                    let seen = cell_candidates
                        .entry((format, family))
                        .or_insert(*candidates);
                    assert!(
                        (*seen - *candidates).abs() < f64::EPSILON,
                        "candidate count varies with thread count"
                    );
                }
            }
            other => panic!("non-numeric synthesis measurements: {other:?}"),
        }
    }

    // The observability snapshot rides in the same document: a complete
    // `sepe-metrics/v1` subtree that must survive the strict typed parser.
    let metrics_schema = schema
        .get("metrics_schema")
        .as_str()
        .expect("metrics_schema string");
    let metrics = doc.get("metrics");
    assert_eq!(metrics.get("schema").as_str(), Some(metrics_schema));
    let snap = sepe_obs::Snapshot::parse(&metrics.to_string())
        .expect("metrics section is a valid sepe-metrics/v1 snapshot");
    assert!(
        snap.counter_family_total("guard_in_format") > 0,
        "the seeded workload hashed keys through the guard: {snap:?}"
    );
    assert_eq!(
        snap.counter_family_total("table_epochs_opened"),
        snap.counter_family_total("table_epochs_finished"),
        "the quiescent workload drains every epoch it opens"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The four corrupted-plan fixtures, each with the typed error its
/// corruption must produce. Paths are relative to the crate root.
const CORRUPTED_PLAN_FIXTURES: [(&str, &str); 4] = [
    ("plan_truncated.json", "malformed plan"),
    (
        "plan_wrong_version.json",
        "plan schema version 1 is not supported",
    ),
    ("plan_bad_checksum.json", "plan checksum mismatch"),
    ("plan_oob_offset.json", "reads past the 11-byte key"),
];

fn fixture_path(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn keysynth_rejects_every_corrupted_plan_fixture_with_a_typed_error() {
    for (name, needle) in CORRUPTED_PLAN_FIXTURES {
        let out = keysynth()
            .args(["--plan", &fixture_path(name), "--lang", "rust"])
            .output()
            .expect("keysynth runs");
        assert!(!out.status.success(), "{name}: corrupted plan was accepted");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(needle),
            "{name}: expected {needle:?} in stderr, got: {stderr}"
        );
        // Typed rejection, not a crash: the binary exits via its error
        // path, so stdout carries no generated code.
        assert!(
            !stderr.contains("panicked"),
            "{name}: the binary panicked: {stderr}"
        );
        assert!(out.stdout.is_empty(), "{name}: code was emitted anyway");
    }
}

#[test]
fn sepe_repro_guard_rejects_every_corrupted_plan_fixture() {
    for (name, needle) in CORRUPTED_PLAN_FIXTURES {
        let out = sepe_repro()
            .args(["--scale", "smoke", "--plan", &fixture_path(name), "guard"])
            .output()
            .expect("repro runs");
        assert!(!out.status.success(), "{name}: corrupted plan was accepted");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("is not a usable synthesis bundle") && stderr.contains(needle),
            "{name}: expected typed rejection with {needle:?}, got: {stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "{name}: the binary panicked: {stderr}"
        );
        // Rejected before any artifact ran: no guard table on stdout.
        assert!(out.stdout.is_empty(), "{name}: artifact ran anyway");
    }
}

#[test]
fn sepe_repro_guard_drives_a_valid_loaded_plan() {
    // Emit a pristine bundle, then feed it back through the guard artifact:
    // the loaded plan gets its own row in the drift table.
    let out = keysynth()
        .args(["--family", "offxor", "--emit-plan", r"\d{3}-\d{2}-\d{4}"])
        .output()
        .expect("keysynth runs");
    assert!(out.status.success());
    let dir = std::env::temp_dir().join(format!("sepe-plan-guard-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let plan = dir.join("plan.json");
    std::fs::write(&plan, &out.stdout).expect("plan written");

    let out = sepe_repro()
        .args(["--scale", "smoke", "--plan"])
        .arg(&plan)
        .arg("guard")
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let row = stdout
        .lines()
        .find(|l| l.starts_with("plan/OffXor"))
        .unwrap_or_else(|| panic!("no plan row in:\n{stdout}"));
    assert!(
        row.contains("Degraded"),
        "loaded plan never degraded: {row}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn keybench_resynth_reports_both_modes() {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_keybench"));
    cmd.args(["--resynth", "--iterations", "2000"]);
    let keys: String = (0..64)
        .map(|i| format!("{:03}-{:02}-{:04}\n", i * 7 % 1000, i % 100, i * 13 % 10000))
        .collect();
    let (stdout, stderr, ok) = run_with_stdin(cmd, &keys);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("resynthesis trigger"), "{stdout}");
    assert!(stdout.contains("inline"), "{stdout}");
    assert!(stdout.contains("supervised"), "{stdout}");
    assert!(
        stdout.contains("serving thread never runs the synthesis search"),
        "comparison line missing:\n{stdout}"
    );
}

#[test]
fn keybench_metrics_emits_a_deterministic_parseable_snapshot() {
    let keys: String = (0..128)
        .map(|i| format!("{:03}-{:02}-{:04}\n", i % 999, i % 97, i))
        .collect();
    let run = || {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_keybench"));
        cmd.args(["--metrics", "--iterations", "2000"]);
        let (stdout, stderr, ok) = run_with_stdin(cmd, &keys);
        assert!(ok, "{stderr}");
        stdout
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same keys, same seeds, same snapshot bytes");
    let snap = sepe_obs::Snapshot::parse(first.trim_end()).expect("stdout is a valid snapshot");
    assert_eq!(
        snap.counter("table_epochs_opened"),
        Some(1),
        "the workload degrades exactly once: {snap:?}"
    );
    assert_eq!(
        snap.counter("table_epochs_finished"),
        Some(1),
        "the drain loop retires the epoch before the snapshot: {snap:?}"
    );
    assert_eq!(
        snap.counter("table_drain_ops"),
        Some(128),
        "every resident entry moves exactly once: {snap:?}"
    );
    assert!(snap.counter("guard_in_format").unwrap_or(0) > 0, "{snap:?}");
    assert!(
        snap.histograms.contains_key("table_probe_len"),
        "probe lengths recorded: {snap:?}"
    );
}

#[test]
fn sepe_repro_metrics_artifact_is_byte_identical_across_runs() {
    let run = || {
        let out = sepe_repro()
            .args(["--scale", "smoke", "metrics"])
            .output()
            .expect("repro runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "snapshot export is deterministic");
    let snap = sepe_obs::Snapshot::parse(first.trim_end()).expect("artifact is a valid snapshot");
    assert_eq!(
        snap.counter_family_total("table_epochs_opened"),
        snap.counter_family_total("table_epochs_finished"),
        "{snap:?}"
    );
}

/// The corrupted-snapshot fixtures, each with the typed error its
/// corruption must produce from `--check-metrics`.
const CORRUPTED_METRICS_FIXTURES: [(&str, &str); 2] = [
    ("metrics_wrong_schema.json", "is not \"sepe-metrics/v1\""),
    (
        "metrics_bad_bucket_sum.json",
        "bucket counts sum to 2 but count claims 3",
    ),
];

#[test]
fn sepe_repro_check_metrics_validates_and_rejects() {
    // A freshly emitted snapshot round-trips through the checker.
    let out = sepe_repro()
        .args(["--scale", "smoke", "metrics"])
        .output()
        .expect("repro runs");
    assert!(out.status.success());
    let dir = std::env::temp_dir().join(format!("sepe-check-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("snapshot.json");
    std::fs::write(&path, &out.stdout).expect("snapshot written");
    let out = sepe_repro()
        .arg("--check-metrics")
        .arg(&path)
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("valid sepe-metrics/v1 snapshot"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);

    // Every corruption mode is a typed rejection and a nonzero exit.
    for (name, needle) in CORRUPTED_METRICS_FIXTURES {
        let out = sepe_repro()
            .args(["--check-metrics", &fixture_path(name)])
            .output()
            .expect("repro runs");
        assert!(
            !out.status.success(),
            "{name}: corrupted snapshot was accepted"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("is not a usable metrics snapshot") && stderr.contains(needle),
            "{name}: expected typed rejection with {needle:?}, got: {stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "{name}: the binary panicked: {stderr}"
        );
    }

    // A missing file is an I/O error, not a crash.
    let out = sepe_repro()
        .args(["--check-metrics", "/nonexistent/snapshot.json"])
        .output()
        .expect("repro runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot read"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn keybench_churn_reports_all_three_phases() {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_keybench"));
    cmd.args(["--churn", "5000"]);
    let keys: String = (0..64)
        .map(|i| format!("{:03}-{:02}-{:04}\n", i * 7 % 1000, i % 100, i * 13 % 10000))
        .collect();
    let (stdout, stderr, ok) = run_with_stdin(cmd, &keys);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("steady state"), "{stdout}");
    assert!(stdout.contains("migration in flight"), "{stdout}");
    assert!(stdout.contains("degraded steady state"), "{stdout}");
    assert!(
        stdout.contains("no stop-the-world rebuild"),
        "drain never completed:\n{stdout}"
    );
}
