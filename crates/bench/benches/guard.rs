//! **Robustness overhead** — guarded vs. unguarded hashing speed for all
//! four synthesized families on the paper key formats, latency-chained as
//! a hash-table consumer would be. The acceptance bar for the format-guard
//! fast path is <2x the unguarded specialized hash on in-format keys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepe_baselines::CityHash;
use sepe_bench::key_pool;
use sepe_core::guard::GuardedHash;
use sepe_core::hash::SynthesizedHash;
use sepe_core::regex::Regex;
use sepe_core::synth::Family;
use sepe_core::ByteHash;
use sepe_keygen::KeyFormat;
use std::hint::black_box;

fn chain(hash: &dyn ByteHash, keys: &[&[u8]]) -> u64 {
    // Dependent chain across 256 keys per iteration.
    let mut idx = 0usize;
    let mut acc = 0u64;
    for _ in 0..256 {
        let h = hash.hash_bytes(black_box(keys[idx]));
        acc ^= h;
        idx = (h as usize) & 1023;
    }
    acc
}

fn bench_guard(c: &mut Criterion) {
    for format in [KeyFormat::Ssn, KeyFormat::Ipv4, KeyFormat::Uuid] {
        let mut group = c.benchmark_group(format!("guard/{}", format.name()));
        group
            .sample_size(20)
            .measurement_time(std::time::Duration::from_millis(800))
            .warm_up_time(std::time::Duration::from_millis(300));
        let pattern = Regex::compile(&format.regex()).expect("paper formats compile");
        let pool = key_pool(format, 1024);
        let keys: Vec<&[u8]> = pool.iter().map(|s| s.as_bytes()).collect();
        for family in Family::ALL {
            let plain = SynthesizedHash::from_pattern(&pattern, family);
            group.bench_function(BenchmarkId::from_parameter(format!("{family}")), |b| {
                b.iter(|| chain(&plain, &keys));
            });
            let guarded = GuardedHash::from_pattern(&pattern, family, CityHash::new());
            group.bench_function(
                BenchmarkId::from_parameter(format!("{family}+guard")),
                |b| {
                    b.iter(|| chain(&guarded, &keys));
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_guard);
criterion_main!(benches);
