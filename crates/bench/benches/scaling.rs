//! **Figure 19 (RQ8)** — hashing time versus key size for Pext and the
//! standard baselines; all curves should be linear in the key length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sepe_core::{ByteHash, Isa};
use sepe_driver::analysis::digits_hash;
use sepe_driver::HashId;
use sepe_keygen::KeyFormat;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    for id in [
        HashId::Pext,
        HashId::Stl,
        HashId::City,
        HashId::Fnv,
        HashId::Abseil,
    ] {
        let mut group = c.benchmark_group(format!("scaling/{}", id.name()));
        group
            .sample_size(15)
            .measurement_time(std::time::Duration::from_millis(700))
            .warm_up_time(std::time::Duration::from_millis(300));
        for exp in [4u32, 7, 10, 14] {
            let size = 1usize << exp;
            let hash: Box<dyn ByteHash> = match id.family() {
                Some(family) => Box::new(digits_hash(family, size, Isa::Native)),
                None => id.build(KeyFormat::Digits(size), Isa::Native),
            };
            let key = KeyFormat::Digits(size).materialize(123_456_789);
            group.throughput(Throughput::Bytes(size as u64));
            group.bench_function(BenchmarkId::from_parameter(size), |b| {
                b.iter(|| hash.hash_bytes(black_box(key.as_bytes())));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
