//! Ablations over the design choices DESIGN.md calls out:
//!
//! * hardware vs software parallel bit extraction (the `pext` substitution
//!   story of RQ4);
//! * hardware vs software AES rounds;
//! * the gradual-specialization ladder Naive → OffXor → Pext on one format
//!   (RQ7's closing discussion);
//! * gperf training cost as the keyword-set size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepe_baselines::GperfHash;
use sepe_core::hash::SynthesizedHash;
use sepe_core::synth::Family;
use sepe_core::{ByteHash, Isa};
use sepe_keygen::{Distribution, KeyFormat, KeySampler};
use std::hint::black_box;

fn chained(hash: &dyn ByteHash, keys: &[&[u8]]) -> u64 {
    let mut idx = 0usize;
    let mut acc = 0u64;
    let mask = keys.len() - 1;
    for _ in 0..256 {
        let h = hash.hash_bytes(black_box(keys[idx]));
        acc ^= h;
        idx = (h as usize) & mask;
    }
    acc
}

fn bench_isa_ablation(c: &mut Criterion) {
    let pool: Vec<String> =
        KeySampler::new(KeyFormat::Ints, Distribution::Uniform, 3).distinct_pool(256);
    let keys: Vec<&[u8]> = pool.iter().map(|s| s.as_bytes()).collect();

    let mut group = c.benchmark_group("ablation/isa");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(300));
    for family in [Family::Pext, Family::Aes] {
        for (label, isa) in [("hw", Isa::Native), ("sw", Isa::Portable)] {
            let hash = SynthesizedHash::from_regex(&KeyFormat::Ints.regex(), family)
                .expect("ints regex compiles")
                .with_isa(isa);
            group.bench_function(
                BenchmarkId::from_parameter(format!("{family}/{label}")),
                |b| b.iter(|| chained(&hash, &keys)),
            );
        }
    }
    group.finish();
}

fn bench_gradual_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/gradual");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(300));
    for format in [KeyFormat::Ssn, KeyFormat::Url2] {
        let pool: Vec<String> =
            KeySampler::new(format, Distribution::Uniform, 3).distinct_pool(256);
        let keys: Vec<&[u8]> = pool.iter().map(|s| s.as_bytes()).collect();
        for family in Family::ALL {
            let hash = SynthesizedHash::from_regex(&format.regex(), family)
                .expect("format regex compiles");
            group.bench_function(
                BenchmarkId::from_parameter(format!("{}/{family}", format.name())),
                |b| b.iter(|| chained(&hash, &keys)),
            );
        }
    }
    group.finish();
}

fn bench_gperf_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/gperf-training");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    for n in [50usize, 200, 1000] {
        let pool: Vec<String> =
            KeySampler::new(KeyFormat::Ssn, Distribution::Uniform, 3).distinct_pool(n);
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| GperfHash::train(pool.iter().map(String::as_bytes)));
        });
    }
    group.finish();
}

fn bench_related_work(c: &mut Criterion) {
    // SEPE's OffXor vs entropy-learned hashing vs the general STL hash on
    // the URL workload both specializations are built for (long constant
    // prefix, short variable suffix).
    use sepe_baselines::{EntropyLearnedHash, StlHash};
    let pool: Vec<String> =
        KeySampler::new(KeyFormat::Url1, Distribution::Uniform, 3).distinct_pool(256);
    let keys: Vec<&[u8]> = pool.iter().map(|s| s.as_bytes()).collect();
    let offxor = SynthesizedHash::from_regex(&KeyFormat::Url1.regex(), Family::OffXor)
        .expect("url regex compiles");
    let elh = EntropyLearnedHash::train(&keys, 16);
    let stl = StlHash::new();

    let mut group = c.benchmark_group("ablation/related-work");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function(BenchmarkId::from_parameter("sepe-offxor"), |b| {
        b.iter(|| chained(&offxor, &keys));
    });
    group.bench_function(BenchmarkId::from_parameter("entropy-learned"), |b| {
        b.iter(|| chained(&elh, &keys));
    });
    group.bench_function(BenchmarkId::from_parameter("stl"), |b| {
        b.iter(|| chained(&stl, &keys));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_isa_ablation,
    bench_gradual_ladder,
    bench_gperf_training,
    bench_related_work
);
criterion_main!(benches);
