//! **Table 2** — the χ² uniformity pipeline (hash 10 000 keys, histogram,
//! goodness-of-fit) per hash function and key distribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepe_core::Isa;
use sepe_driver::analysis::uniformity_chi2;
use sepe_driver::HashId;
use sepe_keygen::{Distribution, KeyFormat};

fn bench_uniformity(c: &mut Criterion) {
    let format = KeyFormat::Ssn;
    for dist in Distribution::ALL {
        let mut group = c.benchmark_group(format!("uniformity/{dist}"));
        group
            .sample_size(10)
            .measurement_time(std::time::Duration::from_millis(800))
            .warm_up_time(std::time::Duration::from_millis(300));
        for id in [
            HashId::Stl,
            HashId::Pext,
            HashId::OffXor,
            HashId::Aes,
            HashId::City,
        ] {
            let hash = id.build(format, Isa::Native);
            group.bench_function(BenchmarkId::from_parameter(id.name()), |b| {
                b.iter(|| uniformity_chi2(hash.as_ref(), format, dist, 10_000, 256, 5));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_uniformity);
criterion_main!(benches);
