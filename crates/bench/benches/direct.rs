//! Extension benchmark: the `DirectMap` (bijective Pext index, no buckets)
//! against the bucketed `UnorderedMap` and `std::collections::HashMap` on
//! SSN-keyed lookups — quantifying the paper's future-work direction of
//! specializing storage, not just hashing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepe_containers::{DirectMap, UnorderedMap};
use sepe_core::hash::SynthesizedHash;
use sepe_core::regex::Regex;
use sepe_core::synth::Family;
use sepe_keygen::{Distribution, KeyFormat, KeySampler};
use std::hint::black_box;

fn bench_direct(c: &mut Criterion) {
    let pattern = Regex::compile(&KeyFormat::Ssn.regex()).expect("ssn regex compiles");
    let keys: Vec<String> =
        KeySampler::new(KeyFormat::Ssn, Distribution::Uniform, 4).distinct_pool(10_000);

    let mut direct: DirectMap<u32> = DirectMap::new(&pattern).expect("ssn is bijective");
    let hash = SynthesizedHash::from_pattern(&pattern, Family::Pext);
    let mut bucketed = UnorderedMap::with_hasher(hash);
    let mut std_map: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
    for (i, k) in keys.iter().enumerate() {
        direct.insert(k.as_bytes(), i as u32);
        bucketed.insert(k.clone(), i as u32);
        std_map.insert(k.clone(), i as u32);
    }

    let mut group = c.benchmark_group("direct/lookup");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(900))
        .warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function(BenchmarkId::from_parameter("DirectMap"), |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for k in &keys[..1000] {
                acc ^= *direct.get(black_box(k.as_bytes())).expect("present");
            }
            acc
        });
    });
    group.bench_function(BenchmarkId::from_parameter("UnorderedMap+Pext"), |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for k in &keys[..1000] {
                acc ^= *bucketed.get(black_box(k.as_str())).expect("present");
            }
            acc
        });
    });
    group.bench_function(BenchmarkId::from_parameter("std HashMap"), |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for k in &keys[..1000] {
                acc ^= *std_map.get(black_box(k.as_str())).expect("present");
            }
            acc
        });
    });
    group.finish();

    // A narrow format (20 variable bits): DirectMap switches to one flat
    // array — the dense "key as offset" case Kraska et al. argue for,
    // where a lookup is the hash plus a single indexed load.
    let zip_pattern = Regex::compile(r"\d{5}-us").expect("zip regex compiles");
    let zips: Vec<String> = (0..10_000u32)
        .map(|i| format!("{:05}-us", i * 7 % 100_000))
        .collect();
    let mut direct2: DirectMap<u32> = DirectMap::new(&zip_pattern).expect("zip is bijective");
    assert!(direct2.is_flat());
    let hash2 = SynthesizedHash::from_pattern(&zip_pattern, Family::Pext);
    let mut bucketed2 = UnorderedMap::with_hasher(hash2);
    for (i, k) in zips.iter().enumerate() {
        direct2.insert(k.as_bytes(), i as u32);
        bucketed2.insert(k.clone(), i as u32);
    }
    let mut group = c.benchmark_group("direct/lookup-flat");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(900))
        .warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function(BenchmarkId::from_parameter("DirectMap(flat)"), |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for k in &zips[..1000] {
                acc ^= *direct2.get(black_box(k.as_bytes())).expect("present");
            }
            acc
        });
    });
    group.bench_function(BenchmarkId::from_parameter("UnorderedMap+Pext"), |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for k in &zips[..1000] {
                acc ^= *bucketed2.get(black_box(k.as_str())).expect("present");
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_direct);
criterion_main!(benches);
