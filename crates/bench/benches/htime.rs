//! **Table 1, H-Time column** — pure hashing speed per function, on the
//! SSN and URL1 key formats, latency-chained as a hash-table consumer
//! would be.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepe_bench::{build, key_pool, TIMED_HASHES};
use sepe_driver::HashId;
use sepe_keygen::KeyFormat;
use std::hint::black_box;

fn bench_htime(c: &mut Criterion) {
    for format in [KeyFormat::Ssn, KeyFormat::Url1, KeyFormat::Ints] {
        let mut group = c.benchmark_group(format!("htime/{}", format.name()));
        group
            .sample_size(20)
            .measurement_time(std::time::Duration::from_millis(800))
            .warm_up_time(std::time::Duration::from_millis(300));
        let pool = key_pool(format, 1024);
        let keys: Vec<&[u8]> = pool.iter().map(|s| s.as_bytes()).collect();
        for id in TIMED_HASHES.into_iter().chain([HashId::Gperf]) {
            let hash = build(id, format);
            group.bench_function(BenchmarkId::from_parameter(id.name()), |b| {
                b.iter(|| {
                    // Dependent chain across 256 keys per iteration.
                    let mut idx = 0usize;
                    let mut acc = 0u64;
                    for _ in 0..256 {
                        let h = hash.hash_bytes(black_box(keys[idx]));
                        acc ^= h;
                        idx = (h as usize) & 1023;
                    }
                    acc
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_htime);
criterion_main!(benches);
