//! **Figure 20 (RQ9)** — B-Time grouped by container kind: the multi
//! variants pay an extra indirection, maps and sets behave alike.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepe_core::Isa;
use sepe_driver::measure::time_affectations;
use sepe_driver::{ContainerKind, ExperimentConfig, HashId, Mode};
use sepe_keygen::{Distribution, KeyFormat, KeySampler};

fn bench_containers(c: &mut Criterion) {
    let format = KeyFormat::Ssn;
    let hash = HashId::OffXor.build(format, Isa::Native);
    let mut group = c.benchmark_group("containers");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    for container in ContainerKind::ALL {
        for mode in [
            Mode::Batched,
            Mode::Interweaved {
                p_insert: 0.6,
                p_search: 0.2,
            },
        ] {
            let cfg = ExperimentConfig {
                container,
                mode,
                affectations: 3000,
                ..ExperimentConfig::quick(format, Distribution::Uniform)
            };
            let pool = KeySampler::new(cfg.format, cfg.distribution, cfg.seed).pool(cfg.spread);
            let label = format!("{}/{}", container.name(), mode.label());
            group.bench_function(BenchmarkId::from_parameter(label), |b| {
                b.iter(|| time_affectations(&cfg, hash.as_ref(), &pool));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_containers);
criterion_main!(benches);
