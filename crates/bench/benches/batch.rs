//! **Batch hashing** — batched vs scalar ns/key for every synthesized
//! family on the paper's key formats, across batch widths 1/4/8/32.
//!
//! Width 1 is the latency-chained scalar reference (one dependency chain);
//! wider groups run that many independent chains through
//! `HashBatch::hash_batch`, the interleaved multi-stream kernels. The
//! ratio between the two is the win this subsystem exists to deliver —
//! `sepe-repro bench-json` records the same cells machine-readably.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sepe_bench::key_pool;
use sepe_core::hash::{ByteHash, HashBatch};
use sepe_core::synth::Family;
use sepe_core::SynthesizedHash;
use sepe_keygen::KeyFormat;
use std::hint::black_box;

const POOL: usize = 1024;
const MASK: u64 = (POOL - 1) as u64;
const WIDTHS: [usize; 3] = [4, 8, 32];

fn bench_batch(c: &mut Criterion) {
    for format in [
        KeyFormat::Ssn,
        KeyFormat::Ipv4,
        KeyFormat::Mac,
        KeyFormat::Url1,
    ] {
        let pool = key_pool(format, POOL);
        let keys: Vec<&[u8]> = pool.iter().map(|s| s.as_bytes()).collect();
        for family in Family::ALL {
            let Ok(hash) = SynthesizedHash::from_regex(&format.regex(), family) else {
                continue;
            };
            let mut group = c.benchmark_group(format!("batch/{}/{family}", format.name()));
            group
                .sample_size(20)
                .measurement_time(std::time::Duration::from_millis(800))
                .warm_up_time(std::time::Duration::from_millis(300));
            group.throughput(Throughput::Elements(256));
            // Scalar reference: one dependency chain, 256 keys/iter.
            group.bench_function(BenchmarkId::from_parameter("width-1"), |b| {
                b.iter(|| {
                    let mut idx = 0usize;
                    let mut acc = 0u64;
                    for _ in 0..256 {
                        let h = hash.hash_bytes(black_box(keys[idx]));
                        acc ^= h;
                        idx = (h & MASK) as usize;
                    }
                    acc
                });
            });
            for width in WIDTHS {
                group.bench_function(BenchmarkId::from_parameter(format!("width-{width}")), |b| {
                    let mut batch: Vec<&[u8]> = vec![keys[0]; width];
                    let mut out = vec![0u64; width];
                    let mut idx: Vec<usize> = (0..width).collect();
                    let steps = 256 / width;
                    b.iter(|| {
                        // `width` independent chains advance together.
                        let mut acc = 0u64;
                        for _ in 0..steps {
                            for lane in 0..width {
                                batch[lane] = keys[idx[lane]];
                            }
                            hash.hash_batch(black_box(&batch), &mut out);
                            for lane in 0..width {
                                acc ^= out[lane];
                                idx[lane] = (out[lane] & MASK) as usize;
                            }
                        }
                        acc
                    });
                });
            }
            group.finish();
        }
    }
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
