//! **Figure 16** — synthesis time versus key size (2⁴ … 2¹⁴ all-digit
//! keys), per synthesized family. The paper reports linear growth with
//! Pearson ≥ 0.993.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sepe_core::synth::Family;
use sepe_driver::analysis::synthesis_time;

fn bench_synthesis(c: &mut Criterion) {
    for family in [Family::Pext, Family::OffXor, Family::Aes] {
        let mut group = c.benchmark_group(format!("synthesis/{family}"));
        group
            .sample_size(10)
            .measurement_time(std::time::Duration::from_millis(600))
            .warm_up_time(std::time::Duration::from_millis(300));
        for exp in [4u32, 6, 8, 10, 12, 14] {
            let size = 1usize << exp;
            group.throughput(Throughput::Bytes(size as u64));
            group.bench_function(BenchmarkId::from_parameter(size), |b| {
                b.iter(|| synthesis_time(family, size));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
