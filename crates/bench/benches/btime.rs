//! **Table 1 B-Time / Figures 13 & 15** — the full affectation workload
//! (insert / search / remove against a bucketed container) per hash
//! function, on native and portable instruction sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sepe_bench::TIMED_HASHES;
use sepe_core::Isa;
use sepe_driver::measure::time_affectations;
use sepe_driver::{ExperimentConfig, HashId};
use sepe_keygen::{Distribution, KeyFormat, KeySampler};

fn bench_btime(c: &mut Criterion) {
    let format = KeyFormat::Ssn;
    let cfg = ExperimentConfig {
        affectations: 3000,
        ..ExperimentConfig::quick(format, Distribution::Normal)
    };
    let pool = KeySampler::new(cfg.format, cfg.distribution, cfg.seed).pool(cfg.spread);

    // Figure 13: x86 (native ISA).
    let mut group = c.benchmark_group("btime/native");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    for id in TIMED_HASHES {
        let hash = id.build(format, Isa::Native);
        group.bench_function(BenchmarkId::from_parameter(id.name()), |b| {
            b.iter(|| time_affectations(&cfg, hash.as_ref(), &pool));
        });
    }
    group.finish();

    // Figure 15: the paper's aarch64 configuration — portable code paths,
    // Pext excluded (no bit-extract hardware).
    let mut group = c.benchmark_group("btime/portable");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    for id in TIMED_HASHES.into_iter().filter(|&i| i != HashId::Pext) {
        let hash = id.build(format, Isa::Portable);
        group.bench_function(BenchmarkId::from_parameter(id.name()), |b| {
            b.iter(|| time_affectations(&cfg, hash.as_ref(), &pool));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_btime);
criterion_main!(benches);
