//! # sepe-bench
//!
//! Shared plumbing for the criterion benchmarks under `benches/`. Each
//! bench regenerates the measurements behind one table or figure of the
//! paper:
//!
//! | bench        | paper artifact |
//! |--------------|----------------|
//! | `htime`      | Table 1 H-Time (pure hashing speed) |
//! | `btime`      | Table 1 B-Time / Figures 13 & 15 (container workload) |
//! | `synthesis`  | Figure 16 (synthesis time vs key size) |
//! | `scaling`    | Figure 19 (hashing time vs key size) |
//! | `uniformity` | Table 2 (χ² uniformity pipeline) |
//! | `containers` | Figure 20 (per-container B-Time) |
//!
//! The absolute numbers of the paper were measured on a different machine
//! and through compiled C++; only the relative ordering is expected to
//! transfer. `sepe-repro` prints the same data as one-shot tables.

use sepe_core::Isa;
use sepe_driver::HashId;
use sepe_keygen::{Distribution, KeyFormat, KeySampler};

/// The hash functions benched head-to-head in the timing benches. Gperf is
/// excluded from container benches (the paper excludes it from Figure 13
/// for being two orders of magnitude slower).
pub const TIMED_HASHES: [HashId; 9] = [
    HashId::Abseil,
    HashId::Aes,
    HashId::City,
    HashId::Fnv,
    HashId::Gpt,
    HashId::Naive,
    HashId::OffXor,
    HashId::Pext,
    HashId::Stl,
];

/// A deterministic pool of distinct keys for a format.
#[must_use]
pub fn key_pool(format: KeyFormat, n: usize) -> Vec<String> {
    let n = n.min(usize::try_from(format.space()).unwrap_or(usize::MAX));
    KeySampler::new(format, Distribution::Uniform, 0xBEEF).distinct_pool(n)
}

/// Builds a hash for benching, with native instructions.
#[must_use]
pub fn build(id: HashId, format: KeyFormat) -> Box<dyn sepe_core::ByteHash> {
    id.build(format, Isa::Native)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_distinct_and_sized() {
        let pool = key_pool(KeyFormat::Ssn, 100);
        assert_eq!(pool.len(), 100);
        let set: std::collections::BTreeSet<_> = pool.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn timed_hashes_exclude_gperf() {
        assert!(!TIMED_HASHES.contains(&HashId::Gperf));
    }
}
