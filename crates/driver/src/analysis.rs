//! Higher-level analyses: the computations behind each table and figure,
//! shared by the `sepe-repro` binary and the criterion benches.

use crate::config::{ExperimentConfig, Mode, SPREADS};
use crate::measure::{collisions_of, run_experiment, time_affectations, Measurement};
use crate::registry::HashId;
use sepe_containers::BucketPolicy;
use sepe_core::codegen::{emit, Language};
use sepe_core::hash::SynthesizedHash;
use sepe_core::infer::infer_pattern;
use sepe_core::synth::{synthesize, Family};
use sepe_core::{ByteHash, Isa};
use sepe_keygen::{Distribution, KeyFormat, KeySampler};
use sepe_stats::{chi_square_gof, geometric_mean, hash_histogram_range};
use std::time::{Duration, Instant};

/// Scale knobs for the reproduction runs. The paper's full grid (10 000
/// affectations × 144 experiments × 10 samples × 8 key types × 10 hashes)
/// runs for hours; the default scale keeps every dimension but shrinks the
/// counts so the shapes reproduce in minutes.
#[derive(Debug, Clone)]
pub struct RunScale {
    /// Affectations per experiment (paper: 10 000).
    pub affectations: usize,
    /// Samples per experiment (paper: 10).
    pub samples: usize,
    /// Key formats to include (paper: all eight).
    pub formats: Vec<KeyFormat>,
    /// Keys for collision counting (paper: 10 000).
    pub collision_keys: usize,
    /// Keys for the uniformity analysis (paper: 100 000).
    pub uniformity_keys: usize,
    /// Instruction set for the synthesized functions.
    pub isa: Isa,
}

impl Default for RunScale {
    fn default() -> Self {
        RunScale {
            affectations: 10_000,
            samples: 3,
            formats: KeyFormat::EVALUATED.to_vec(),
            collision_keys: 10_000,
            uniformity_keys: 100_000,
            isa: Isa::Native,
        }
    }
}

impl RunScale {
    /// A fast scale for tests: one sample, two key formats, small counts.
    #[must_use]
    pub fn smoke() -> Self {
        RunScale {
            affectations: 2_000,
            samples: 1,
            formats: vec![KeyFormat::Ssn, KeyFormat::Ipv4],
            collision_keys: 2_000,
            uniformity_keys: 10_000,
            isa: Isa::Native,
        }
    }
}

/// Aggregate of one hash function over (a slice of) the grid — one row of
/// Table 1 / one box of Figure 13.
#[derive(Debug, Clone)]
pub struct GridAggregate {
    /// Which function was measured.
    pub id: HashId,
    /// Every per-experiment B-Time, in milliseconds.
    pub b_times_ms: Vec<f64>,
    /// Every per-experiment H-Time, in milliseconds.
    pub h_times_ms: Vec<f64>,
    /// Geometric-mean bucket collisions.
    pub b_coll: f64,
    /// Total true collisions (summed over formats, as Table 1 reports one
    /// number per function).
    pub t_coll: u64,
}

impl GridAggregate {
    /// Geometric-mean B-Time in milliseconds.
    #[must_use]
    pub fn b_time_geomean(&self) -> f64 {
        geometric_mean(&self.b_times_ms).unwrap_or(f64::NAN)
    }

    /// Geometric-mean H-Time in milliseconds.
    #[must_use]
    pub fn h_time_geomean(&self) -> f64 {
        geometric_mean(&self.h_times_ms).unwrap_or(f64::NAN)
    }
}

/// Runs the grid for one hash function, optionally restricted to one key
/// distribution (Table 1 uses the normal slice; Figure 13 uses all).
#[must_use]
pub fn run_grid(
    id: HashId,
    scale: &RunScale,
    only_distribution: Option<Distribution>,
) -> GridAggregate {
    let mut b_times_ms = Vec::new();
    let mut h_times_ms = Vec::new();
    let mut b_colls = Vec::new();
    let mut t_coll_total = 0u64;

    for &format in &scale.formats {
        // Collision counts depend only on (hash, format, distribution):
        // counted once per format, over distinct keys. The pool doubles as
        // the training set for the data-dependent Gperf baseline, the way
        // GNU gperf is handed the keywords it will serve.
        let dist = only_distribution.unwrap_or(Distribution::Normal);
        let n = scale
            .collision_keys
            .min(usize::try_from(format.space()).unwrap_or(usize::MAX));
        let mut sampler = KeySampler::new(format, dist, 0xC011);
        let keys = sampler.distinct_pool(n);
        let hash = id.build_trained(format, scale.isa, &keys);
        for cfg in ExperimentConfig::grid(format, scale.affectations, 7) {
            if only_distribution.is_some_and(|d| d != cfg.distribution) {
                continue;
            }
            for sample in 0..scale.samples {
                let cfg = ExperimentConfig {
                    seed: cfg.seed ^ (sample as u64) << 32,
                    ..cfg.clone()
                };
                let mut sampler = KeySampler::new(cfg.format, cfg.distribution, cfg.seed);
                let pool = sampler.pool(cfg.spread);
                let b = time_affectations(&cfg, hash.as_ref(), &pool);
                b_times_ms.push(b.as_secs_f64() * 1e3);
                let h = crate::measure::time_hashing(&cfg, hash.as_ref(), &pool);
                h_times_ms.push(h.as_secs_f64() * 1e3);
            }
        }
        let (b, t) = collisions_of(hash.as_ref(), &keys, BucketPolicy::Modulo);
        b_colls.push(b.max(1) as f64);
        t_coll_total += t;
    }

    GridAggregate {
        id,
        b_times_ms,
        h_times_ms,
        b_coll: geometric_mean(&b_colls).unwrap_or(f64::NAN),
        t_coll: t_coll_total,
    }
}

/// The χ² statistic of a hash function's output distribution over `bins`
/// equal slices of the 64-bit range (RQ3 methodology). Table 2 normalizes
/// these by the STL value.
#[must_use]
pub fn uniformity_chi2(
    hash: &dyn ByteHash,
    format: KeyFormat,
    distribution: Distribution,
    n_keys: usize,
    bins: usize,
    seed: u64,
) -> f64 {
    let mut sampler = KeySampler::new(format, distribution, seed);
    let hashes: Vec<u64> = (0..n_keys)
        .map(|_| hash.hash_bytes(sampler.next_key().as_bytes()))
        .collect();
    let histogram = hash_histogram_range(&hashes, bins);
    chi_square_gof(&histogram).statistic
}

/// Times one complete synthesis — example inference, plan construction and
/// C++ emission — for all-digit keys of `size` bytes (RQ6, Figure 16:
/// "keys are sequences of digits without constant subsequences").
#[must_use]
pub fn synthesis_time(family: Family, size: usize) -> Duration {
    let format = KeyFormat::Digits(size);
    let examples = format.good_examples();
    let refs: Vec<&[u8]> = examples.iter().map(String::as_bytes).collect();
    let start = Instant::now();
    let pattern = infer_pattern(refs.iter().copied()).expect("examples exist");
    let plan = synthesize(&pattern, family);
    let code = emit(&plan, family, Language::Cpp, "SynthesizedHash");
    std::hint::black_box(code);
    start.elapsed()
}

/// Times `iterations` hash computations over all-digit keys of `size`
/// bytes (RQ8, Figure 19).
#[must_use]
pub fn hashing_time(hash: &dyn ByteHash, size: usize, iterations: usize) -> Duration {
    let format = KeyFormat::Digits(size);
    let keys: Vec<String> = (0..64u128).map(|i| format.materialize(i * 997)).collect();
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..iterations {
        acc ^= hash.hash_bytes(keys[i % keys.len()].as_bytes());
    }
    std::hint::black_box(acc);
    start.elapsed()
}

/// One point of the RQ7 low-mixing sweep: bucket and true collisions when
/// buckets are indexed by the `64 - discard_low` most significant bits.
#[must_use]
pub fn low_mixing_point(
    hash: &dyn ByteHash,
    format: KeyFormat,
    discard_low: u32,
    n_keys: usize,
    seed: u64,
) -> (u64, u64) {
    let n = n_keys.min(usize::try_from(format.space()).unwrap_or(usize::MAX));
    let mut sampler = KeySampler::new(format, Distribution::Uniform, seed);
    let keys = sampler.distinct_pool(n);
    // True collisions under a low-mixing container are collisions of the
    // *retained* bits: hash >> discard_low (Figure 18).
    let mut truncated: Vec<u64> = keys
        .iter()
        .map(|k| hash.hash_bytes(k.as_bytes()) >> discard_low)
        .collect();
    truncated.sort_unstable();
    let t_coll = truncated.windows(2).filter(|w| w[0] == w[1]).count() as u64;
    let (b_coll, _) = collisions_of(hash, &keys, BucketPolicy::HighBits { discard_low });
    (b_coll, t_coll)
}

/// A [`SynthesizedHash`] for all-digit keys of `size` bytes, used by the
/// scaling experiments.
#[must_use]
pub fn digits_hash(family: Family, size: usize, isa: Isa) -> SynthesizedHash {
    SynthesizedHash::from_regex(&format!("[0-9]{{{size}}}"), family)
        .expect("digit regex compiles")
        .with_isa(isa)
}

/// Runs one full experiment per (container, mode) pair — the data behind
/// Figure 20 (RQ9).
#[must_use]
pub fn per_container_times(
    id: HashId,
    format: KeyFormat,
    scale: &RunScale,
) -> Vec<(crate::config::ContainerKind, Vec<f64>)> {
    let hash = id.build(format, scale.isa);
    crate::config::ContainerKind::ALL
        .iter()
        .map(|&container| {
            let mut times = Vec::new();
            for distribution in Distribution::ALL {
                for mode in Mode::ALL {
                    for spread in SPREADS {
                        let cfg = ExperimentConfig {
                            container,
                            distribution,
                            spread,
                            mode,
                            format,
                            affectations: scale.affectations,
                            policy: BucketPolicy::Modulo,
                            seed: 11,
                        };
                        let m: Measurement = run_fast(&cfg, hash.as_ref());
                        times.push(m.b_time.as_secs_f64() * 1e3);
                    }
                }
            }
            (container, times)
        })
        .collect()
}

/// Like [`run_experiment`] but skips the collision counting (which the
/// timing figures do not need).
fn run_fast(cfg: &ExperimentConfig, hash: &dyn ByteHash) -> Measurement {
    let mut sampler = KeySampler::new(cfg.format, cfg.distribution, cfg.seed);
    let pool = sampler.pool(cfg.spread);
    let b_time = time_affectations(cfg, hash, &pool);
    Measurement {
        b_time,
        h_time: Duration::ZERO,
        bucket_collisions: 0,
        true_collisions: 0,
    }
}

/// Convenience wrapper running the complete [`run_experiment`] for tests.
///
/// Gperf is trained on the prefix of the very key pool the experiment's
/// collision counts measure (see [`crate::measure::collision_pool`]).
#[must_use]
pub fn run_one(cfg: &ExperimentConfig, id: HashId, isa: Isa) -> Measurement {
    let training = crate::measure::collision_pool(
        cfg.format,
        cfg.distribution,
        crate::registry::GPERF_TRAINING_KEYS,
        cfg.seed,
    );
    let hash = id.build_trained(cfg.format, isa, &training);
    run_experiment(cfg, hash.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_produces_full_vectors() {
        let mut scale = RunScale::smoke();
        scale.affectations = 300;
        scale.collision_keys = 500;
        let agg = run_grid(HashId::OffXor, &scale, Some(Distribution::Normal));
        // 2 formats x (4 containers x 1 dist x 3 spreads x 4 modes) x 1 sample.
        assert_eq!(agg.b_times_ms.len(), 2 * 48);
        assert!(agg.b_time_geomean() > 0.0);
        assert!(agg.h_time_geomean() > 0.0);
        assert!(agg.b_coll >= 1.0);
    }

    #[test]
    fn uniformity_ranks_stl_far_better_than_pext_on_incremental_keys() {
        let stl = HashId::Stl.build(KeyFormat::Ssn, Isa::Native);
        let pext = HashId::Pext.build(KeyFormat::Ssn, Isa::Native);
        let c_stl = uniformity_chi2(
            stl.as_ref(),
            KeyFormat::Ssn,
            Distribution::Normal,
            20_000,
            256,
            1,
        );
        let c_pext = uniformity_chi2(
            pext.as_ref(),
            KeyFormat::Ssn,
            Distribution::Normal,
            20_000,
            256,
            1,
        );
        assert!(
            c_pext > c_stl * 10.0,
            "pext chi2 {c_pext} should dwarf stl chi2 {c_stl}"
        );
    }

    #[test]
    fn synthesis_time_is_positive_and_grows() {
        let small = synthesis_time(Family::Pext, 16);
        let large = synthesis_time(Family::Pext, 1 << 12);
        assert!(small.as_nanos() > 0);
        assert!(large > small);
    }

    #[test]
    fn low_mixing_hurts_offxor_more_than_stl() {
        let stl = HashId::Stl.build(KeyFormat::Ssn, Isa::Native);
        let offxor = HashId::OffXor.build(KeyFormat::Ssn, Isa::Native);
        let (_, t_stl) = low_mixing_point(stl.as_ref(), KeyFormat::Ssn, 48, 4000, 5);
        let (_, t_off) = low_mixing_point(offxor.as_ref(), KeyFormat::Ssn, 48, 4000, 5);
        assert!(
            t_off > t_stl,
            "offxor truncated collisions {t_off} should exceed stl {t_stl}"
        );
    }

    #[test]
    fn per_container_times_cover_all_kinds() {
        let mut scale = RunScale::smoke();
        scale.affectations = 200;
        let rows = per_container_times(HashId::Naive, KeyFormat::Ssn, &scale);
        assert_eq!(rows.len(), 4);
        for (_, times) in rows {
            assert_eq!(times.len(), 3 * 4 * 3);
            assert!(times.iter().all(|&t| t > 0.0));
        }
    }
}
