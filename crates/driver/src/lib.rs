//! # sepe-driver
//!
//! The experiment driver of the SEPE evaluation (Section 4, "Benchmarks"):
//! "a program that generates keys and operates on them, using some data
//! structure; an experiment is a parameterization of the driver".
//!
//! The driver grid multiplies four containers, three key distributions,
//! three spreads and four execution modes into the paper's 144 experiments
//! per (hash function × key type); every experiment runs 10 000
//! *affectations* (generate a key, then insert / search / remove it).
//!
//! Measurements mirror the paper's metrics:
//!
//! * **B-Time** — wall time of the whole affectation loop (hashing plus
//!   container work);
//! * **H-Time** — wall time of hashing alone;
//! * **B-Coll** — bucket collisions of a container filled with 10 000 keys;
//! * **T-Coll** — pairs of distinct keys sharing a 64-bit hash code.
//!
//! ## Examples
//!
//! ```
//! use sepe_driver::{ExperimentConfig, HashId, run_experiment};
//! use sepe_keygen::{Distribution, KeyFormat};
//!
//! let cfg = ExperimentConfig::quick(KeyFormat::Ssn, Distribution::Normal);
//! let hash = HashId::Pext.build(KeyFormat::Ssn, sepe_core::Isa::Native);
//! let m = run_experiment(&cfg, hash.as_ref());
//! assert!(m.b_time.as_nanos() > 0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod analysis;
pub mod bench_json;
pub mod config;
pub mod measure;
pub mod registry;

pub use config::{ContainerKind, ExperimentConfig, Mode};
pub use measure::{run_experiment, Measurement};
pub use registry::HashId;
