//! The registry of the ten hash functions the evaluation compares.

use sepe_baselines::gpt::{GptFormat, GptHash};
use sepe_baselines::{AbseilHash, CityHash, FnvHash, GperfHash, StlHash};
use sepe_core::hash::SynthesizedHash;
use sepe_core::synth::Family;
use sepe_core::{ByteHash, Isa};
use sepe_keygen::{Distribution, KeyFormat, KeySampler};

/// Number of training keys fed to the gperf generator, as in the paper
/// ("using 1000 random keys").
pub const GPERF_TRAINING_KEYS: usize = 1000;

/// One of the ten hash functions of the evaluation (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HashId {
    /// Google Abseil's low-level hash.
    Abseil,
    /// Synthesized: AES-round combination.
    Aes,
    /// Google's CityHash64.
    City,
    /// libstdc++ FNV-1a.
    Fnv,
    /// gperf-style perfect hash trained on 1000 random keys.
    Gperf,
    /// Handwritten per-format hash (the paper's ChatGPT stand-in).
    Gpt,
    /// Synthesized: unrolled xor over all bytes.
    Naive,
    /// Synthesized: unrolled xor over non-constant words.
    OffXor,
    /// Synthesized: parallel bit extraction of non-constant bits.
    Pext,
    /// libstdc++ default string hash (murmur-derived, Figure 1).
    Stl,
}

impl HashId {
    /// All ten functions, in the alphabetical order of the paper's tables.
    pub const ALL: [HashId; 10] = [
        HashId::Abseil,
        HashId::Aes,
        HashId::City,
        HashId::Fnv,
        HashId::Gperf,
        HashId::Gpt,
        HashId::Naive,
        HashId::OffXor,
        HashId::Pext,
        HashId::Stl,
    ];

    /// The four synthesized families.
    pub const SYNTHETIC: [HashId; 4] = [HashId::Aes, HashId::Naive, HashId::OffXor, HashId::Pext];

    /// The six baselines.
    pub const BASELINES: [HashId; 6] = [
        HashId::Abseil,
        HashId::City,
        HashId::Fnv,
        HashId::Gperf,
        HashId::Gpt,
        HashId::Stl,
    ];

    /// The name used in the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HashId::Abseil => "Abseil",
            HashId::Aes => "Aes",
            HashId::City => "City",
            HashId::Fnv => "FNV",
            HashId::Gperf => "Gperf",
            HashId::Gpt => "Gpt",
            HashId::Naive => "Naive",
            HashId::OffXor => "OffXor",
            HashId::Pext => "Pext",
            HashId::Stl => "STL",
        }
    }

    /// Whether this is one of the four synthesized families.
    #[must_use]
    pub fn is_synthetic(self) -> bool {
        matches!(
            self,
            HashId::Aes | HashId::Naive | HashId::OffXor | HashId::Pext
        )
    }

    /// The synthesized family, when [`HashId::is_synthetic`].
    #[must_use]
    pub fn family(self) -> Option<Family> {
        match self {
            HashId::Aes => Some(Family::Aes),
            HashId::Naive => Some(Family::Naive),
            HashId::OffXor => Some(Family::OffXor),
            HashId::Pext => Some(Family::Pext),
            _ => None,
        }
    }

    /// Builds the hash function, specialized (when applicable) to `format`.
    ///
    /// Synthesized functions are generated from the format's regular
    /// expression; gperf trains on [`GPERF_TRAINING_KEYS`] uniform keys;
    /// Gpt selects its handwritten per-format function. `isa` restricts
    /// the instruction set of the synthesized functions (RQ4).
    ///
    /// # Panics
    ///
    /// Panics if a format regex fails to compile, which would be a bug in
    /// [`KeyFormat::regex`].
    #[must_use]
    pub fn build(self, format: KeyFormat, isa: Isa) -> Box<dyn ByteHash> {
        match self {
            HashId::Stl => Box::new(StlHash::new()),
            HashId::Fnv => Box::new(FnvHash::new()),
            HashId::City => Box::new(CityHash::new()),
            HashId::Abseil => Box::new(AbseilHash::new()),
            HashId::Gperf => {
                let mut sampler = KeySampler::new(format, Distribution::Uniform, 0xC0FFEE);
                let keys = sampler.pool(GPERF_TRAINING_KEYS);
                Box::new(GperfHash::train(keys.iter().map(String::as_bytes)))
            }
            HashId::Gpt => Box::new(GptHash::new(gpt_format_of(format))),
            HashId::Naive | HashId::OffXor | HashId::Aes | HashId::Pext => {
                let family = self.family().expect("synthetic ids have a family");
                let hash = SynthesizedHash::from_regex(&format.regex(), family)
                    .expect("key-format regexes compile")
                    .with_isa(isa);
                Box::new(hash)
            }
        }
    }

    /// Like [`HashId::build`], but trains the data-dependent Gperf baseline
    /// on (the first [`GPERF_TRAINING_KEYS`] of) `training_keys` instead of
    /// a detached uniform pool.
    ///
    /// GNU gperf is handed the actual keyword set it will serve, so an
    /// experiment that measures a specific key pool must train over that
    /// pool — training on unrelated keys leaves the function near-constant
    /// on the measured set and produced the degenerate single-bucket
    /// numbers in `repro_output.txt`. Every other function is key-set
    /// independent and ignores `training_keys`.
    #[must_use]
    pub fn build_trained(
        self,
        format: KeyFormat,
        isa: Isa,
        training_keys: &[String],
    ) -> Box<dyn ByteHash> {
        match self {
            HashId::Gperf => {
                let n = GPERF_TRAINING_KEYS.min(training_keys.len());
                Box::new(GperfHash::train(
                    training_keys[..n].iter().map(String::as_bytes),
                ))
            }
            _ => self.build(format, isa),
        }
    }
}

impl std::fmt::Display for HashId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn gpt_format_of(format: KeyFormat) -> GptFormat {
    match format {
        KeyFormat::Ssn => GptFormat::Ssn,
        KeyFormat::Cpf => GptFormat::Cpf,
        KeyFormat::Mac => GptFormat::Mac,
        KeyFormat::Ipv4 => GptFormat::Ipv4,
        KeyFormat::Ipv6 => GptFormat::Ipv6,
        KeyFormat::Ints => GptFormat::Ints,
        KeyFormat::Url1 => GptFormat::Url {
            prefix_len: sepe_keygen::format::URL1_PREFIX.len(),
        },
        KeyFormat::Url2 => GptFormat::Url {
            prefix_len: sepe_keygen::format::URL2_PREFIX.len(),
        },
        KeyFormat::FourDigits | KeyFormat::Uuid | KeyFormat::Digits(_) => GptFormat::Generic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_builds_for_every_format() {
        for id in HashId::ALL {
            for format in KeyFormat::EVALUATED {
                let h = id.build(format, Isa::Native);
                let key = format.materialize(12345);
                // Deterministic and total.
                assert_eq!(h.hash_bytes(key.as_bytes()), h.hash_bytes(key.as_bytes()));
            }
        }
    }

    #[test]
    fn synthetic_ids_have_families() {
        for id in HashId::SYNTHETIC {
            assert!(id.is_synthetic());
            assert!(id.family().is_some());
        }
        for id in HashId::BASELINES {
            assert!(!id.is_synthetic());
            assert!(id.family().is_none());
        }
    }

    #[test]
    fn pext_build_is_collision_free_on_ssns() {
        let h = HashId::Pext.build(KeyFormat::Ssn, Isa::Native);
        let mut hashes: Vec<u64> = (0..5000u128)
            .map(|i| h.hash_bytes(KeyFormat::Ssn.materialize(i * 131).as_bytes()))
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 5000);
    }

    #[test]
    fn gperf_differs_from_general_hashes_in_range() {
        let g = HashId::Gperf.build(KeyFormat::Ssn, Isa::Native);
        let max = (0..1000u128)
            .map(|i| g.hash_bytes(KeyFormat::Ssn.materialize(i).as_bytes()))
            .max()
            .expect("non-empty");
        assert!(max < 1 << 24, "gperf values cluster near zero, got {max}");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = HashId::ALL.iter().map(|i| i.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), HashId::ALL.len());
    }
}
