//! Machine-readable benchmark pipeline: batched vs scalar hashing
//! throughput, emitted as `BENCH_<date>.json` so the perf trajectory of the
//! repository is diffable across commits.
//!
//! The scalar measurement is latency-chained (the next key index depends on
//! the previous hash), the way the H-Time measurements chain affectations:
//! it reports the true serial latency of one hash. The batched measurement
//! runs `width` independent chains that advance together through
//! [`HashBatch::hash_batch`], so it reports the throughput the interleaved
//! kernels reach when the out-of-order window has independent work. The
//! ratio of the two is the headline number of this subsystem.

use crate::analysis::RunScale;
use sepe_baselines::CityHash;
use sepe_containers::{AttackPolicy, ShardedMap, UnorderedMap};
use sepe_core::guard::{GuardMode, GuardedHash};
use sepe_core::hash::{ByteHash, FixedSeedSource, HashBatch};
use sepe_core::plan_io::Json;
use sepe_core::regex::Regex;
use sepe_core::synth::Family;
use sepe_core::SynthesizedHash;
use sepe_keygen::{Distribution, KeySampler, SplitMix64};
use std::collections::BTreeMap;
use std::time::Instant;

/// One (family, format, width) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Hash family name (`naive`, `offxor`, `aes`, `pext`).
    pub family: String,
    /// Key format name (`ssn`, `ipv4`, …).
    pub format: String,
    /// Batch width; 1 is the scalar latency-chained reference.
    pub width: usize,
    /// Nanoseconds per hashed key, median over the sample runs.
    pub ns_per_key: f64,
    /// Million keys per second (1000 / ns_per_key).
    pub throughput_mkeys: f64,
}

/// Iteration budget and sampling plan, derived from a [`RunScale`].
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Batch widths to measure (1 = scalar reference).
    pub widths: Vec<usize>,
    /// Thread counts for the concurrency scenario (1 = serial reference).
    pub threads: Vec<usize>,
    /// Shards of the [`ShardedMap`] in the concurrency scenario.
    pub shards: usize,
    /// Distinct keys in the measurement pool (power of two, so chaining can
    /// mask instead of mod).
    pub pool_size: usize,
    /// Keys hashed per sample run.
    pub iterations: usize,
    /// Timed sample runs per cell; the median is reported.
    pub samples: usize,
}

impl BenchConfig {
    /// Maps a reproduction scale onto an iteration budget: `smoke` stays
    /// under a second for the whole suite, `default` gives stable medians.
    #[must_use]
    pub fn from_scale(scale: &RunScale) -> Self {
        BenchConfig {
            widths: vec![1, 4, 8, 32],
            threads: vec![1, 2, 4, 8],
            shards: 8,
            pool_size: 1024,
            iterations: (scale.affectations * 16).max(1024),
            samples: (scale.samples * 2).clamp(3, 9) | 1,
        }
    }
}

/// Serial latency: nanoseconds per key when each lookup depends on the
/// previous hash (one dependency chain).
#[must_use]
pub fn scalar_ns_per_key<H: ByteHash>(hash: &H, pool: &[&[u8]], iterations: usize) -> f64 {
    debug_assert!(pool.len().is_power_of_two());
    let mask = (pool.len() - 1) as u64;
    let mut idx = 0usize;
    let mut acc = 0u64;
    let start = Instant::now();
    for _ in 0..iterations {
        let h = hash.hash_bytes(pool[idx]);
        acc ^= h;
        idx = (h & mask) as usize;
    }
    let elapsed = start.elapsed();
    std::hint::black_box(acc);
    elapsed.as_secs_f64() * 1e9 / iterations as f64
}

/// Batched throughput: `width` independent chains advance together through
/// one [`HashBatch::hash_batch`] call per step.
#[must_use]
pub fn batched_ns_per_key<H: HashBatch>(
    hash: &H,
    pool: &[&[u8]],
    width: usize,
    iterations: usize,
) -> f64 {
    debug_assert!(pool.len().is_power_of_two());
    let mask = (pool.len() - 1) as u64;
    let steps = (iterations / width).max(1);
    let mut idx: Vec<usize> = (0..width).collect();
    let mut out = vec![0u64; width];
    let mut keys: Vec<&[u8]> = vec![pool[0]; width];
    let start = Instant::now();
    for _ in 0..steps {
        for lane in 0..width {
            keys[lane] = pool[idx[lane]];
        }
        hash.hash_batch(&keys, &mut out);
        for lane in 0..width {
            idx[lane] = (out[lane] & mask) as usize;
        }
    }
    let elapsed = start.elapsed();
    std::hint::black_box(&out);
    elapsed.as_secs_f64() * 1e9 / (steps * width) as f64
}

/// Runs `measure` with one warmup pass plus `samples` timed passes and
/// returns the median.
fn median_of_k(samples: usize, mut measure: impl FnMut() -> f64) -> f64 {
    let _warmup = measure();
    let mut runs: Vec<f64> = (0..samples.max(1)).map(|_| measure()).collect();
    runs.sort_by(f64::total_cmp);
    runs[runs.len() / 2]
}

/// Measures every (family, format, width) cell of `config` over
/// `scale.formats`.
#[must_use]
pub fn run_suite(scale: &RunScale, config: &BenchConfig) -> Vec<BenchRecord> {
    let mut records = Vec::new();
    for &format in &scale.formats {
        let cap = usize::try_from(format.space()).unwrap_or(usize::MAX).max(1);
        let mut pool_size = config.pool_size.next_power_of_two().max(1);
        while pool_size > cap {
            pool_size /= 2;
        }
        let mut sampler = KeySampler::new(format, Distribution::Normal, 0xBE7C);
        let keys = sampler.distinct_pool(pool_size);
        let pool: Vec<&[u8]> = keys.iter().map(String::as_bytes).collect();
        for family in Family::ALL {
            let hash = SynthesizedHash::from_regex(&format.regex(), family)
                .map(|h| h.with_isa(scale.isa))
                .unwrap_or_else(|_| {
                    SynthesizedHash::from_examples(
                        format.good_examples().iter().map(String::as_bytes),
                        family,
                    )
                    .expect("formats have examples")
                });
            for &width in &config.widths {
                let ns = median_of_k(config.samples, || {
                    if width <= 1 {
                        scalar_ns_per_key(&hash, &pool, config.iterations)
                    } else {
                        batched_ns_per_key(&hash, &pool, width, config.iterations)
                    }
                });
                records.push(BenchRecord {
                    family: family.to_string().to_ascii_lowercase(),
                    format: format.name().to_string(),
                    width,
                    ns_per_key: ns,
                    throughput_mkeys: if ns > 0.0 { 1e3 / ns } else { 0.0 },
                });
            }
        }
    }
    records
}

/// One (format, phase) measurement of the migration scenario: the same
/// mixed get/insert/remove workload timed at steady state, while an epoch
/// migration is draining entries to the fallback hasher, and after the
/// drain completes. `migrating` vs `steady` is the amortization tax the
/// incremental scheme pays instead of a stop-the-world rebuild.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRecord {
    /// Key format name (`ssn`, `ipv4`, …).
    pub format: String,
    /// `steady`, `migrating` (epoch drain in flight) or `drained`.
    pub phase: String,
    /// Nanoseconds per map operation, median over the sample runs.
    pub ns_per_op: f64,
    /// Million operations per second (1000 / ns_per_op).
    pub throughput_mops: f64,
}

type GuardedMap = UnorderedMap<String, u64, GuardedHash<SynthesizedHash, CityHash>>;

/// Runs `ops` mixed operations against `map`: 50% lookups, 30% value
/// overwrites, 20% remove-then-reinsert, all over the shared key pool.
fn churn(map: &mut GuardedMap, keys: &[String], rng: &mut SplitMix64, ops: usize) {
    for _ in 0..ops {
        let r = rng.next_u64();
        let key = &keys[(r >> 8) as usize % keys.len()];
        match r % 10 {
            0..=4 => {
                std::hint::black_box(map.get(key));
            }
            5..=7 => {
                map.insert(key.clone(), r);
            }
            _ => {
                map.remove(key);
                map.insert(key.clone(), r);
            }
        }
    }
}

fn churn_ns_per_op(map: &mut GuardedMap, keys: &[String], rng: &mut SplitMix64, ops: usize) -> f64 {
    let start = Instant::now();
    churn(map, keys, rng, ops);
    start.elapsed().as_secs_f64() * 1e9 / ops as f64
}

/// Measures the three phases of the migration scenario for every format in
/// `scale.formats`. A migration is observable exactly once per degrade, so
/// every sample rebuilds the map and re-triggers the epoch flip; the
/// `migrating` phase times operations only while the drain is in flight.
#[must_use]
pub fn migration_records(scale: &RunScale, config: &BenchConfig) -> Vec<MigrationRecord> {
    let mut records = Vec::new();
    for &format in &scale.formats {
        let cap = usize::try_from(format.space()).unwrap_or(usize::MAX).max(1);
        let pool_size = config.pool_size.min(cap).max(1);
        let mut sampler = KeySampler::new(format, Distribution::Normal, 0x517A);
        let keys = sampler.distinct_pool(pool_size);
        let pattern = Regex::compile(&format.regex()).expect("paper formats compile");
        let mut phases: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for sample in 0..config.samples.max(1) {
            let hasher = GuardedHash::from_pattern(&pattern, Family::OffXor, CityHash::new());
            let mut map: GuardedMap = UnorderedMap::with_hasher(hasher);
            let mut rng = SplitMix64::new(0x9E1C ^ sample as u64);
            for (i, key) in keys.iter().enumerate() {
                map.insert(key.clone(), i as u64);
            }
            churn(&mut map, &keys, &mut rng, config.iterations.min(4096));
            phases[0].push(churn_ns_per_op(
                &mut map,
                &keys,
                &mut rng,
                config.iterations,
            ));
            map.degrade_now();
            let start = Instant::now();
            let mut ops = 0usize;
            while map.migration_in_flight() && ops < config.iterations {
                churn(&mut map, &keys, &mut rng, 64);
                ops += 64;
            }
            phases[1].push(start.elapsed().as_secs_f64() * 1e9 / ops as f64);
            map.finish_migration();
            phases[2].push(churn_ns_per_op(
                &mut map,
                &keys,
                &mut rng,
                config.iterations,
            ));
        }
        for (phase, runs) in ["steady", "migrating", "drained"]
            .iter()
            .zip(phases.iter_mut())
        {
            runs.sort_by(f64::total_cmp);
            let ns = runs[runs.len() / 2];
            records.push(MigrationRecord {
                format: format.name().to_string(),
                phase: (*phase).to_string(),
                ns_per_op: ns,
                throughput_mops: if ns > 0.0 { 1e3 / ns } else { 0.0 },
            });
        }
    }
    records
}

/// One (format, mode) measurement of the resynthesis scenario: per-op
/// latency of a mutating workload across a resynthesis trigger. In
/// `inline` mode the triggering operation runs synthesis on the serving
/// thread (the pre-supervisor behaviour), so the tail latency absorbs the
/// whole search; in `supervised` mode the trigger only enqueues a job on a
/// [`ResynthSupervisor`] worker thread and later ops pay a cheap
/// pump/apply poll. The `p99_ns` gap between the two modes is the headline
/// number of the supervisor subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct ResynthRecord {
    /// Key format name (`ssn`, `ipv4`, …).
    pub format: String,
    /// `inline` (synthesis on the serving thread) or `supervised`
    /// (background worker, serving thread only enqueues and applies).
    pub mode: String,
    /// Median mutating-op latency in nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile mutating-op latency in nanoseconds.
    pub p99_ns: f64,
    /// Worst single mutating-op latency in nanoseconds — in `inline` mode
    /// this is the op that ran synthesis.
    pub max_ns: f64,
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One timed pass of the resynthesis scenario: mutating ops over a guarded
/// map with sampled drift, with the resynthesis triggered halfway through —
/// inline on the serving thread, or through a background supervisor.
/// Returns the per-op latencies in nanoseconds.
fn resynth_latency_pass(
    keys: &[String],
    pattern: &sepe_core::pattern::KeyPattern,
    rng: &mut SplitMix64,
    ops: usize,
    supervised: bool,
) -> Vec<f64> {
    use sepe_core::{ResynthSupervisor, SupervisorConfig, SystemClock};
    use std::sync::Arc;

    let hasher = GuardedHash::from_pattern(pattern, Family::OffXor, CityHash::new());
    let mut map: GuardedMap = UnorderedMap::with_hasher(hasher);
    for (i, key) in keys.iter().enumerate() {
        map.insert(key.clone(), i as u64);
    }
    // Sampled drift: shadow keys one byte off-format, so the reservoir has
    // something for the resynthesis to widen over (setup, untimed).
    for key in keys.iter().take(32) {
        map.insert(format!("{key}~"), 0);
    }
    let mut supervisor =
        ResynthSupervisor::new(SupervisorConfig::default(), Arc::new(SystemClock::new()));
    let trigger_at = ops / 2;
    let mut latencies = Vec::with_capacity(ops);
    for op in 0..ops {
        let r = rng.next_u64();
        let key = &keys[(r >> 8) as usize % keys.len()];
        let start = Instant::now();
        if r.is_multiple_of(2) {
            map.insert(key.clone(), r);
        } else {
            map.remove(key);
            map.insert(key.clone(), r);
        }
        if op == trigger_at {
            if supervised {
                // The serving thread only builds the request and enqueues;
                // the search runs on the supervisor's worker thread.
                if let Some(req) = map.resynth_request(0) {
                    supervisor.enqueue(req);
                }
            } else {
                std::hint::black_box(map.resynthesize());
            }
        } else if supervised && op > trigger_at {
            // The steady-state tax of supervision: a non-blocking poll.
            supervisor.pump();
            for ready in supervisor.take_ready() {
                map.apply_resynthesized(&ready);
            }
        }
        latencies.push(start.elapsed().as_secs_f64() * 1e9);
    }
    // Drain the background job before the pass returns (untimed): the
    // measurement is about the serving thread, not worker lifetime.
    let drain_until = Instant::now() + std::time::Duration::from_secs(5);
    while supervised && supervisor.active_jobs() > 0 && Instant::now() < drain_until {
        supervisor.pump();
        for ready in supervisor.take_ready() {
            map.apply_resynthesized(&ready);
        }
        std::thread::yield_now();
    }
    latencies
}

/// Measures the resynthesis scenario for every format in `scale.formats`,
/// in both `inline` and `supervised` mode. Latencies are pooled across
/// sample runs before the percentiles are taken.
#[must_use]
pub fn resynth_records(scale: &RunScale, config: &BenchConfig) -> Vec<ResynthRecord> {
    let mut records = Vec::new();
    for &format in &scale.formats {
        let cap = usize::try_from(format.space()).unwrap_or(usize::MAX).max(1);
        let pool_size = config.pool_size.min(cap).max(1);
        let mut sampler = KeySampler::new(format, Distribution::Normal, 0x4E5F);
        let keys = sampler.distinct_pool(pool_size);
        let pattern = Regex::compile(&format.regex()).expect("paper formats compile");
        let ops = config.iterations.clamp(256, 4096);
        for (mode, supervised) in [("inline", false), ("supervised", true)] {
            let mut pooled = Vec::new();
            for sample in 0..config.samples.max(1) {
                let mut rng = SplitMix64::new(0xB0A7 ^ sample as u64);
                pooled.extend(resynth_latency_pass(
                    &keys, &pattern, &mut rng, ops, supervised,
                ));
            }
            pooled.sort_by(f64::total_cmp);
            records.push(ResynthRecord {
                format: format.name().to_string(),
                mode: mode.to_string(),
                p50_ns: percentile(&pooled, 0.50),
                p99_ns: percentile(&pooled, 0.99),
                max_ns: pooled.last().copied().unwrap_or(0.0),
            });
        }
    }
    records
}

/// One (format, family, jobs) measurement of the synthesis-search
/// scenario: wall time per candidate search at a given worker-thread
/// count, with speedup relative to the single-thread cell of the same
/// format and family. `jobs == 0` is the memoized row — a [`PlanCache`]
/// hit on the same pattern, whose speedup is cold-search / cache-hit. On
/// a single-core runner the threaded speedups hover near (or below) 1.0
/// — determinism is the point there, and the JSON records whatever the
/// machine actually delivers; the cache row's speedup is real on any
/// machine.
///
/// [`PlanCache`]: sepe_core::PlanCache
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisRecord {
    /// Key format name (`ssn`, `ipv4`, …).
    pub format: String,
    /// Family name, lowercase (`naive`, `offxor`, `aes`, `pext`).
    pub family: String,
    /// Worker threads the search ran on; `0` marks the plan-cache row.
    pub jobs: usize,
    /// Wall time per search (or per cache hit), in nanoseconds.
    pub ns_per_synth: f64,
    /// Speedup relative to the `jobs == 1` cell of the same format and
    /// family (for the cache row: cold search / memoized hit).
    pub speedup: f64,
    /// Candidate covers scored — identical at every `jobs` value (that is
    /// the determinism claim); `0` for the cache row (no search ran).
    pub candidates: u64,
}

/// Measures the candidate search for every format in `scale.formats`, all
/// four families, at 1/2/4/8 worker threads plus a memoized plan-cache
/// hit (`jobs == 0`).
#[must_use]
pub fn synthesis_records(scale: &RunScale, config: &BenchConfig) -> Vec<SynthesisRecord> {
    use sepe_core::synth::{synthesize, synthesize_parallel_with_stats};
    use sepe_core::PlanCache;

    let reps = (config.samples.max(1) * 8).clamp(8, 128);
    let mut records = Vec::new();
    for &format in &scale.formats {
        let pattern = Regex::compile(&format.regex()).expect("paper formats compile");
        for family in Family::ALL {
            let family_name = family.to_string().to_ascii_lowercase();
            let mut baseline_ns = None;
            for jobs in [1usize, 2, 4, 8] {
                let mut candidates = 0u64;
                let start = Instant::now();
                for _ in 0..reps {
                    let (plan, stats) = synthesize_parallel_with_stats(&pattern, family, jobs);
                    std::hint::black_box(plan);
                    candidates = stats.candidates_considered;
                }
                let ns = start.elapsed().as_secs_f64() * 1e9 / reps as f64;
                let baseline = *baseline_ns.get_or_insert(ns);
                records.push(SynthesisRecord {
                    format: format.name().to_string(),
                    family: family_name.clone(),
                    jobs,
                    ns_per_synth: ns,
                    speedup: if ns > 0.0 { baseline / ns } else { 0.0 },
                    candidates,
                });
            }
            let cache = PlanCache::new(1);
            cache.insert(&pattern, family, synthesize(&pattern, family));
            let start = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(cache.lookup(&pattern, family));
            }
            let warm_ns = start.elapsed().as_secs_f64() * 1e9 / reps as f64;
            let cold_ns = baseline_ns.unwrap_or(0.0);
            records.push(SynthesisRecord {
                format: format.name().to_string(),
                family: family_name,
                jobs: 0,
                ns_per_synth: warm_ns,
                speedup: if warm_ns > 0.0 {
                    cold_ns / warm_ns
                } else {
                    0.0
                },
                candidates: 0,
            });
        }
    }
    records
}

/// One (format, threads) measurement of the concurrency scenario: the
/// migration-style churn workload fanned across `threads` workers over a
/// shared [`ShardedMap`]. `speedup` is relative to the single-thread cell
/// of the same format; on a single-core runner it hovers near (or below)
/// 1.0 — the scenario is about lock-striping overhead and correctness
/// under contention, and the JSON records whatever the machine actually
/// delivers.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrencyRecord {
    /// Key format name (`ssn`, `ipv4`, …).
    pub format: String,
    /// Worker threads churning the shared map.
    pub threads: usize,
    /// Shard (lock stripe) count of the map.
    pub shards: usize,
    /// Nanoseconds per map operation across all threads, median over the
    /// sample runs.
    pub ns_per_op: f64,
    /// Million operations per second aggregate (1000 / ns_per_op).
    pub throughput_mops: f64,
    /// Aggregate throughput relative to the 1-thread cell.
    pub speedup: f64,
}

type GuardedSharded = ShardedMap<String, u64, SynthesizedHash, CityHash>;

/// The [`churn`] workload against a shared sharded map: same op mix, same
/// key-pool addressing, but through `&self` (lock-striped) entry points.
fn sharded_churn(map: &GuardedSharded, keys: &[String], seed: u64, ops: usize) {
    let mut rng = SplitMix64::new(seed);
    for _ in 0..ops {
        let r = rng.next_u64();
        let key = &keys[(r >> 8) as usize % keys.len()];
        match r % 10 {
            0..=4 => {
                std::hint::black_box(map.get(key.as_str()));
            }
            5..=7 => {
                map.insert(key.clone(), r);
            }
            _ => {
                map.remove(key.as_str());
                map.insert(key.clone(), r);
            }
        }
    }
}

/// Measures the concurrency scenario for every format in `scale.formats`
/// and every thread count in `config.threads`.
#[must_use]
pub fn concurrency_records(scale: &RunScale, config: &BenchConfig) -> Vec<ConcurrencyRecord> {
    let mut records = Vec::new();
    for &format in &scale.formats {
        let cap = usize::try_from(format.space()).unwrap_or(usize::MAX).max(1);
        let pool_size = config.pool_size.min(cap).max(1);
        let mut sampler = KeySampler::new(format, Distribution::Normal, 0xC0CC);
        let keys = sampler.distinct_pool(pool_size);
        let pattern = Regex::compile(&format.regex()).expect("paper formats compile");
        let mut baseline_ns = None;
        for &threads in &config.threads {
            let threads = threads.max(1);
            let per_thread_ops = (config.iterations / threads).max(256);
            let mut runs: Vec<f64> = Vec::with_capacity(config.samples.max(1));
            for sample in 0..config.samples.max(1) {
                let hasher = GuardedHash::from_pattern(&pattern, Family::OffXor, CityHash::new());
                let map: GuardedSharded = ShardedMap::with_hasher(hasher, config.shards);
                for (i, key) in keys.iter().enumerate() {
                    map.insert(key.clone(), i as u64);
                }
                let start = Instant::now();
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let map = &map;
                        let keys = keys.as_slice();
                        let seed = 0xCAB1 ^ (sample as u64) << 8 ^ t as u64;
                        s.spawn(move || sharded_churn(map, keys, seed, per_thread_ops));
                    }
                });
                let elapsed = start.elapsed();
                runs.push(elapsed.as_secs_f64() * 1e9 / (per_thread_ops * threads) as f64);
            }
            runs.sort_by(f64::total_cmp);
            let ns = runs[runs.len() / 2];
            let baseline = *baseline_ns.get_or_insert(ns);
            records.push(ConcurrencyRecord {
                format: format.name().to_string(),
                threads,
                shards: config.shards,
                ns_per_op: ns,
                throughput_mops: if ns > 0.0 { 1e3 / ns } else { 0.0 },
                speedup: if ns > 0.0 { baseline / ns } else { 0.0 },
            });
        }
    }
    records
}

/// One (format, phase) measurement of the HashDoS scenario: churn ns/op
/// and worst bucket-chain length at three points of the attack timeline —
/// `benign` (steady state before the flood), `attack` (a brute-forced
/// collision flood resident, the specialized route still serving), and
/// `escalated` (the collision-storm detector climbed the ladder to the
/// keyed hasher and the incremental re-key drained). The `attack` and
/// `escalated` phases churn over the benign pool *plus* the forged keys,
/// so their ns/op compare directly: the gap is what the defense buys
/// back. The keyed-fallback overhead is the `escalated` vs `benign` gap.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialRecord {
    /// Key format name (`ssn`, `ipv4`, …).
    pub format: String,
    /// `benign`, `attack`, or `escalated`.
    pub phase: String,
    /// Nanoseconds per map operation, median over the sample runs.
    pub ns_per_op: f64,
    /// Longest bucket chain at the end of the phase, median over samples.
    pub max_chain: usize,
    /// Wall-clock microseconds from the first detector tick under attack
    /// to the drained keyed table — median over samples, and zero on the
    /// `benign` and `attack` rows (nothing escalates there).
    pub escalation_us: f64,
}

/// Measures the HashDoS scenario for every format in `scale.formats`:
/// fill, churn at steady state, land a collision flood brute-forced
/// against the map's own hash with [`sepe_verify::attacker::bucket_flood`]
/// (the strongest attacker model for the unkeyed rungs), churn under
/// attack, then let the collision-storm detector escalate to the keyed
/// hasher and churn once more.
#[must_use]
pub fn adversarial_records(scale: &RunScale, config: &BenchConfig) -> Vec<AdversarialRecord> {
    const FLOOD_KEYS: usize = 64;
    let policy = AttackPolicy {
        min_len: 32,
        trip_streak: 2,
        quiet_streak: 2,
        ..AttackPolicy::default()
    };
    let mut records = Vec::new();
    for &format in &scale.formats {
        let cap = usize::try_from(format.space()).unwrap_or(usize::MAX).max(1);
        let pool_size = config.pool_size.min(cap).max(1);
        let mut sampler = KeySampler::new(format, Distribution::Normal, 0xADE5);
        let keys = sampler.distinct_pool(pool_size);
        let pattern = Regex::compile(&format.regex()).expect("paper formats compile");
        let mut phases: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut chains: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut esc_us: Vec<f64> = Vec::new();
        for sample in 0..config.samples.max(1) {
            let hasher = GuardedHash::from_pattern(&pattern, Family::OffXor, CityHash::new());
            let mut map: GuardedMap = UnorderedMap::with_hasher(hasher);
            let mut rng = SplitMix64::new(0xADE5 ^ sample as u64);
            for (i, key) in keys.iter().enumerate() {
                map.insert(key.clone(), i as u64);
            }
            // Pin the bucket count before forging: the flood collides
            // modulo the *current* table size, so the attack inserts must
            // never trigger a resize.
            map.reserve(FLOOD_KEYS + 16);
            churn(&mut map, &keys, &mut rng, config.iterations.min(4096));
            phases[0].push(churn_ns_per_op(
                &mut map,
                &keys,
                &mut rng,
                config.iterations,
            ));
            chains[0].push(map.max_bucket_len());

            let flood: Vec<String> = sepe_verify::attacker::bucket_flood(
                |k| map.hash_of(k),
                map.bucket_count() as u64,
                FLOOD_KEYS,
                0xADE5 ^ sample as u64,
            )
            .into_iter()
            .map(|k| String::from_utf8(k).expect("forged keys are ascii"))
            .collect();
            for (i, key) in flood.iter().enumerate() {
                map.insert(key.clone(), i as u64);
            }
            let mut attacked = keys.clone();
            attacked.extend(flood.iter().cloned());
            phases[1].push(churn_ns_per_op(
                &mut map,
                &attacked,
                &mut rng,
                config.iterations,
            ));
            chains[1].push(map.max_bucket_len());

            let seeds = FixedSeedSource::new(0x5EED_0001 ^ sample as u64);
            let start = Instant::now();
            let mut ticks = 0usize;
            while map.guard_mode() != GuardMode::Keyed && ticks < 16 {
                ticks += 1;
                if map.maybe_escalate(&policy, &seeds) {
                    while map.migration_in_flight() {
                        map.migrate(1024);
                    }
                }
            }
            esc_us.push(start.elapsed().as_secs_f64() * 1e6);
            assert_eq!(
                map.guard_mode(),
                GuardMode::Keyed,
                "the flood must force the keyed rung"
            );
            phases[2].push(churn_ns_per_op(
                &mut map,
                &attacked,
                &mut rng,
                config.iterations,
            ));
            chains[2].push(map.max_bucket_len());
        }
        esc_us.sort_by(f64::total_cmp);
        let esc_median = esc_us[esc_us.len() / 2];
        for (i, phase) in ["benign", "attack", "escalated"].iter().enumerate() {
            phases[i].sort_by(f64::total_cmp);
            chains[i].sort_unstable();
            records.push(AdversarialRecord {
                format: format.name().to_string(),
                phase: (*phase).to_string(),
                ns_per_op: phases[i][phases[i].len() / 2],
                max_chain: chains[i][chains[i].len() / 2],
                escalation_us: if *phase == "escalated" {
                    esc_median
                } else {
                    0.0
                },
            });
        }
    }
    records
}

/// Deterministic observability counts from a seeded, single-threaded
/// workload: per format, a guarded map is filled from the key pool,
/// churned at steady state, degraded (opening one epoch migration),
/// drained with seeded random strides, and churned again — with the
/// table and guard metrics exported into one [`sepe_obs::Registry`]
/// under a `format` label. Because the workload is single-threaded and
/// every input is seeded, the resulting [`sepe_obs::Snapshot`] is
/// byte-identical across runs at the same scale (with the `obs` feature
/// off the counters stay registered at zero, still deterministically).
#[must_use]
pub fn metrics_snapshot(scale: &RunScale, config: &BenchConfig) -> sepe_obs::Snapshot {
    let registry = sepe_obs::Registry::new();
    for &format in &scale.formats {
        let cap = usize::try_from(format.space()).unwrap_or(usize::MAX).max(1);
        let pool_size = config.pool_size.min(cap).max(1);
        let mut sampler = KeySampler::new(format, Distribution::Normal, 0x0B5E);
        let keys = sampler.distinct_pool(pool_size);
        let pattern = Regex::compile(&format.regex()).expect("paper formats compile");
        let hasher = GuardedHash::from_pattern(&pattern, Family::OffXor, CityHash::new());
        let mut map: GuardedMap = UnorderedMap::with_hasher(hasher);
        map.export_metrics(&registry, &[("format", format.name())])
            .expect("format labels are distinct");
        for (i, key) in keys.iter().enumerate() {
            map.insert(key.clone(), i as u64);
        }
        let ops = config.iterations.clamp(256, 4096);
        let mut rng = SplitMix64::new(0x0B5E_C0DE);
        churn(&mut map, &keys, &mut rng, ops);
        map.degrade_now();
        while map.migration_in_flight() {
            map.migrate(1 + (rng.next_u64() % 32) as usize);
        }
        churn(&mut map, &keys, &mut rng, ops);
    }
    registry.snapshot()
}

/// Renders records as the `sepe-bench/v1` JSON document.
///
/// Every section is emitted in a **canonical sort order** — `records` by
/// (family, format, width), `migration` by (format, phase), `concurrency`
/// by (format, threads), `resynthesis` by (format, mode), `adversarial`
/// by (format, phase), `synthesis` by (format, family, jobs), `metrics` in the
/// canonical `sepe-metrics/v1` spelling — and object keys
/// are alphabetical (`BTreeMap`),
/// so two runs over the same measurements produce byte-identical documents
/// regardless of measurement order, and dated bench files diff cleanly
/// across commits.
#[must_use]
// One positional slice per document section; a params struct would just
// restate the schema with extra ceremony.
#[allow(clippy::too_many_arguments)]
pub fn to_json(
    date: &str,
    records: &[BenchRecord],
    migration: &[MigrationRecord],
    concurrency: &[ConcurrencyRecord],
    resynthesis: &[ResynthRecord],
    adversarial: &[AdversarialRecord],
    synthesis: &[SynthesisRecord],
    metrics: &sepe_obs::Snapshot,
) -> Json {
    let mut records: Vec<&BenchRecord> = records.iter().collect();
    records.sort_by(|a, b| (&a.family, &a.format, a.width).cmp(&(&b.family, &b.format, b.width)));
    let mut migration: Vec<&MigrationRecord> = migration.iter().collect();
    migration.sort_by(|a, b| (&a.format, &a.phase).cmp(&(&b.format, &b.phase)));
    let mut concurrency: Vec<&ConcurrencyRecord> = concurrency.iter().collect();
    concurrency.sort_by(|a, b| (&a.format, a.threads).cmp(&(&b.format, b.threads)));
    let mut resynthesis: Vec<&ResynthRecord> = resynthesis.iter().collect();
    resynthesis.sort_by(|a, b| (&a.format, &a.mode).cmp(&(&b.format, &b.mode)));
    let mut adversarial: Vec<&AdversarialRecord> = adversarial.iter().collect();
    adversarial.sort_by(|a, b| (&a.format, &a.phase).cmp(&(&b.format, &b.phase)));
    let mut synthesis: Vec<&SynthesisRecord> = synthesis.iter().collect();
    synthesis.sort_by(|a, b| (&a.format, &a.family, a.jobs).cmp(&(&b.format, &b.family, b.jobs)));
    let rows: Vec<Json> = records
        .iter()
        .map(|r| {
            let mut obj = BTreeMap::new();
            obj.insert("family".to_string(), Json::Str(r.family.clone()));
            obj.insert("format".to_string(), Json::Str(r.format.clone()));
            obj.insert("width".to_string(), Json::Num(r.width as f64));
            obj.insert("ns_per_key".to_string(), Json::Num(r.ns_per_key));
            obj.insert(
                "throughput_mkeys".to_string(),
                Json::Num(r.throughput_mkeys),
            );
            Json::Obj(obj)
        })
        .collect();
    let migration_rows: Vec<Json> = migration
        .iter()
        .map(|m| {
            let mut obj = BTreeMap::new();
            obj.insert("format".to_string(), Json::Str(m.format.clone()));
            obj.insert("phase".to_string(), Json::Str(m.phase.clone()));
            obj.insert("ns_per_op".to_string(), Json::Num(m.ns_per_op));
            obj.insert("throughput_mops".to_string(), Json::Num(m.throughput_mops));
            Json::Obj(obj)
        })
        .collect();
    let concurrency_rows: Vec<Json> = concurrency
        .iter()
        .map(|c| {
            let mut obj = BTreeMap::new();
            obj.insert("format".to_string(), Json::Str(c.format.clone()));
            obj.insert("threads".to_string(), Json::Num(c.threads as f64));
            obj.insert("shards".to_string(), Json::Num(c.shards as f64));
            obj.insert("ns_per_op".to_string(), Json::Num(c.ns_per_op));
            obj.insert("throughput_mops".to_string(), Json::Num(c.throughput_mops));
            obj.insert("speedup".to_string(), Json::Num(c.speedup));
            Json::Obj(obj)
        })
        .collect();
    let resynthesis_rows: Vec<Json> = resynthesis
        .iter()
        .map(|r| {
            let mut obj = BTreeMap::new();
            obj.insert("format".to_string(), Json::Str(r.format.clone()));
            obj.insert("mode".to_string(), Json::Str(r.mode.clone()));
            obj.insert("p50_ns".to_string(), Json::Num(r.p50_ns));
            obj.insert("p99_ns".to_string(), Json::Num(r.p99_ns));
            obj.insert("max_ns".to_string(), Json::Num(r.max_ns));
            Json::Obj(obj)
        })
        .collect();
    let adversarial_rows: Vec<Json> = adversarial
        .iter()
        .map(|a| {
            let mut obj = BTreeMap::new();
            obj.insert("format".to_string(), Json::Str(a.format.clone()));
            obj.insert("phase".to_string(), Json::Str(a.phase.clone()));
            obj.insert("ns_per_op".to_string(), Json::Num(a.ns_per_op));
            obj.insert("max_chain".to_string(), Json::Num(a.max_chain as f64));
            obj.insert("escalation_us".to_string(), Json::Num(a.escalation_us));
            Json::Obj(obj)
        })
        .collect();
    let synthesis_rows: Vec<Json> = synthesis
        .iter()
        .map(|s| {
            let mut obj = BTreeMap::new();
            obj.insert("format".to_string(), Json::Str(s.format.clone()));
            obj.insert("family".to_string(), Json::Str(s.family.clone()));
            obj.insert("jobs".to_string(), Json::Num(s.jobs as f64));
            obj.insert("ns_per_synth".to_string(), Json::Num(s.ns_per_synth));
            obj.insert("speedup".to_string(), Json::Num(s.speedup));
            obj.insert("candidates".to_string(), Json::Num(s.candidates as f64));
            Json::Obj(obj)
        })
        .collect();
    let mut doc = BTreeMap::new();
    doc.insert("schema".to_string(), Json::Str("sepe-bench/v1".to_string()));
    doc.insert("date".to_string(), Json::Str(date.to_string()));
    doc.insert("records".to_string(), Json::Arr(rows));
    doc.insert("migration".to_string(), Json::Arr(migration_rows));
    doc.insert("concurrency".to_string(), Json::Arr(concurrency_rows));
    doc.insert("resynthesis".to_string(), Json::Arr(resynthesis_rows));
    doc.insert("adversarial".to_string(), Json::Arr(adversarial_rows));
    doc.insert("synthesis".to_string(), Json::Arr(synthesis_rows));
    // The snapshot's canonical spelling is itself JSON built from strings
    // and objects only, so it embeds as a subtree without re-encoding.
    doc.insert(
        "metrics".to_string(),
        Json::parse(&metrics.render()).expect("snapshot renders valid JSON"),
    );
    Json::Obj(doc)
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock (no chrono
/// dependency; Howard Hinnant's `civil_from_days`).
#[must_use]
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_core::Isa;
    use sepe_keygen::KeyFormat;

    fn tiny_scale() -> RunScale {
        RunScale {
            affectations: 64,
            samples: 1,
            formats: vec![KeyFormat::Ssn],
            collision_keys: 64,
            uniformity_keys: 64,
            isa: Isa::Native,
        }
    }

    #[test]
    fn suite_covers_every_cell_with_positive_numbers() {
        let scale = tiny_scale();
        let config = BenchConfig::from_scale(&scale);
        let records = run_suite(&scale, &config);
        assert_eq!(records.len(), Family::ALL.len() * config.widths.len());
        for r in &records {
            assert!(r.ns_per_key > 0.0, "{r:?}");
            assert!(r.throughput_mkeys > 0.0, "{r:?}");
        }
    }

    #[test]
    fn json_document_round_trips() {
        let records = vec![BenchRecord {
            family: "pext".to_string(),
            format: "ssn".to_string(),
            width: 8,
            ns_per_key: 1.25,
            throughput_mkeys: 800.0,
        }];
        let migration = vec![MigrationRecord {
            format: "ssn".to_string(),
            phase: "migrating".to_string(),
            ns_per_op: 42.0,
            throughput_mops: 1e3 / 42.0,
        }];
        let concurrency = vec![ConcurrencyRecord {
            format: "ssn".to_string(),
            threads: 4,
            shards: 8,
            ns_per_op: 100.0,
            throughput_mops: 10.0,
            speedup: 2.5,
        }];
        let resynthesis = vec![ResynthRecord {
            format: "ssn".to_string(),
            mode: "supervised".to_string(),
            p50_ns: 120.0,
            p99_ns: 480.0,
            max_ns: 950.0,
        }];
        let adversarial = vec![AdversarialRecord {
            format: "ssn".to_string(),
            phase: "escalated".to_string(),
            ns_per_op: 90.0,
            max_chain: 4,
            escalation_us: 35.0,
        }];
        let synthesis = vec![SynthesisRecord {
            format: "ssn".to_string(),
            family: "pext".to_string(),
            jobs: 4,
            ns_per_synth: 5_000.0,
            speedup: 1.1,
            candidates: 96,
        }];
        let mut metrics = sepe_obs::Snapshot::default();
        metrics.counters.insert("table_drain_ops".to_string(), 64);
        let doc = to_json(
            "2026-01-01",
            &records,
            &migration,
            &concurrency,
            &resynthesis,
            &adversarial,
            &synthesis,
            &metrics,
        );
        let parsed = Json::parse(&doc.to_string()).expect("emitted JSON parses");
        assert_eq!(parsed.get("schema").as_str(), Some("sepe-bench/v1"));
        assert_eq!(parsed.get("date").as_str(), Some("2026-01-01"));
        let rows = parsed.get("records").as_arr().expect("records array");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("width").as_u64(), Some(8));
        assert_eq!(rows[0].get("family").as_str(), Some("pext"));
        let migr = parsed.get("migration").as_arr().expect("migration array");
        assert_eq!(migr.len(), 1);
        assert_eq!(migr[0].get("phase").as_str(), Some("migrating"));
        assert_eq!(migr[0].get("format").as_str(), Some("ssn"));
        let conc = parsed
            .get("concurrency")
            .as_arr()
            .expect("concurrency array");
        assert_eq!(conc.len(), 1);
        assert_eq!(conc[0].get("threads").as_u64(), Some(4));
        assert_eq!(conc[0].get("shards").as_u64(), Some(8));
        assert_eq!(conc[0].get("format").as_str(), Some("ssn"));
        let resy = parsed
            .get("resynthesis")
            .as_arr()
            .expect("resynthesis array");
        assert_eq!(resy.len(), 1);
        assert_eq!(resy[0].get("mode").as_str(), Some("supervised"));
        assert_eq!(resy[0].get("format").as_str(), Some("ssn"));
        assert_eq!(resy[0].get("p99_ns").as_u64(), Some(480));
        let adv = parsed
            .get("adversarial")
            .as_arr()
            .expect("adversarial array");
        assert_eq!(adv.len(), 1);
        assert_eq!(adv[0].get("phase").as_str(), Some("escalated"));
        assert_eq!(adv[0].get("format").as_str(), Some("ssn"));
        assert_eq!(adv[0].get("max_chain").as_u64(), Some(4));
        assert_eq!(adv[0].get("escalation_us").as_u64(), Some(35));
        let synth = parsed.get("synthesis").as_arr().expect("synthesis array");
        assert_eq!(synth.len(), 1);
        assert_eq!(synth[0].get("format").as_str(), Some("ssn"));
        assert_eq!(synth[0].get("family").as_str(), Some("pext"));
        assert_eq!(synth[0].get("jobs").as_u64(), Some(4));
        assert_eq!(synth[0].get("candidates").as_u64(), Some(96));
        let met = parsed.get("metrics");
        assert_eq!(met.get("schema").as_str(), Some("sepe-metrics/v1"));
        assert_eq!(
            met.get("counters").get("table_drain_ops").as_str(),
            Some("64"),
            "counters ride as decimal strings for full u64 range"
        );
    }

    #[test]
    fn json_row_order_is_independent_of_measurement_order() {
        let mk = |family: &str, width: usize| BenchRecord {
            family: family.to_string(),
            format: "ssn".to_string(),
            width,
            ns_per_key: 1.0,
            throughput_mkeys: 1000.0,
        };
        let mkc = |threads: usize| ConcurrencyRecord {
            format: "ssn".to_string(),
            threads,
            shards: 8,
            ns_per_op: 1.0,
            throughput_mops: 1000.0,
            speedup: 1.0,
        };
        let mkr = |mode: &str| ResynthRecord {
            format: "ssn".to_string(),
            mode: mode.to_string(),
            p50_ns: 10.0,
            p99_ns: 20.0,
            max_ns: 30.0,
        };
        let mka = |phase: &str| AdversarialRecord {
            format: "ssn".to_string(),
            phase: phase.to_string(),
            ns_per_op: 10.0,
            max_chain: 3,
            escalation_us: 0.0,
        };
        let mks = |family: &str, jobs: usize| SynthesisRecord {
            format: "ssn".to_string(),
            family: family.to_string(),
            jobs,
            ns_per_synth: 100.0,
            speedup: 1.0,
            candidates: 8,
        };
        let metrics = sepe_obs::Snapshot::default();
        let forward = to_json(
            "2026-01-01",
            &[mk("aes", 1), mk("aes", 8), mk("pext", 1)],
            &[],
            &[mkc(1), mkc(2), mkc(8)],
            &[mkr("inline"), mkr("supervised")],
            &[mka("benign"), mka("attack"), mka("escalated")],
            &[mks("aes", 0), mks("aes", 1), mks("naive", 4)],
            &metrics,
        );
        let shuffled = to_json(
            "2026-01-01",
            &[mk("pext", 1), mk("aes", 8), mk("aes", 1)],
            &[],
            &[mkc(8), mkc(1), mkc(2)],
            &[mkr("supervised"), mkr("inline")],
            &[mka("escalated"), mka("attack"), mka("benign")],
            &[mks("naive", 4), mks("aes", 1), mks("aes", 0)],
            &metrics,
        );
        assert_eq!(
            forward.to_string(),
            shuffled.to_string(),
            "canonical order makes the document byte-identical"
        );
    }

    #[test]
    fn concurrency_scenario_covers_every_thread_count() {
        let scale = tiny_scale();
        let mut config = BenchConfig::from_scale(&scale);
        config.threads = vec![1, 2];
        config.iterations = 2048;
        config.samples = 1;
        let records = concurrency_records(&scale, &config);
        assert_eq!(records.len(), scale.formats.len() * config.threads.len());
        for r in &records {
            assert!(r.ns_per_op > 0.0 && r.ns_per_op.is_finite(), "{r:?}");
            assert!(r.throughput_mops > 0.0, "{r:?}");
            assert!(r.speedup > 0.0, "{r:?}");
            assert_eq!(r.shards, config.shards);
        }
        let single = records.iter().find(|r| r.threads == 1).expect("1-thread");
        assert!((single.speedup - 1.0).abs() < f64::EPSILON, "{single:?}");
    }

    #[test]
    fn migration_scenario_measures_all_three_phases_per_format() {
        let scale = tiny_scale();
        let config = BenchConfig::from_scale(&scale);
        let records = migration_records(&scale, &config);
        assert_eq!(records.len(), scale.formats.len() * 3);
        for phase in ["steady", "migrating", "drained"] {
            let row = records
                .iter()
                .find(|r| r.phase == phase)
                .unwrap_or_else(|| panic!("missing phase {phase}"));
            assert!(row.ns_per_op > 0.0 && row.ns_per_op.is_finite(), "{row:?}");
            assert!(row.throughput_mops > 0.0, "{row:?}");
        }
    }

    #[test]
    fn synthesis_scenario_covers_every_family_and_thread_count() {
        let scale = tiny_scale();
        let mut config = BenchConfig::from_scale(&scale);
        config.samples = 1;
        let records = synthesis_records(&scale, &config);
        // 4 threaded rows + 1 cache row per (format, family).
        assert_eq!(records.len(), scale.formats.len() * Family::ALL.len() * 5);
        for r in &records {
            assert!(r.ns_per_synth > 0.0 && r.ns_per_synth.is_finite(), "{r:?}");
            assert!(r.speedup > 0.0, "{r:?}");
        }
        for family in Family::ALL {
            let family = family.to_string().to_ascii_lowercase();
            let cell: Vec<&SynthesisRecord> =
                records.iter().filter(|r| r.family == family).collect();
            let single = cell.iter().find(|r| r.jobs == 1).expect("jobs=1 row");
            assert!((single.speedup - 1.0).abs() < f64::EPSILON, "{single:?}");
            // Candidate counts are deterministic across thread counts.
            for r in cell.iter().filter(|r| r.jobs > 0) {
                assert_eq!(r.candidates, single.candidates, "{r:?}");
            }
            let cached = cell.iter().find(|r| r.jobs == 0).expect("cache row");
            assert_eq!(cached.candidates, 0, "{cached:?}");
        }
    }

    #[test]
    fn resynth_scenario_measures_both_modes_per_format() {
        let scale = tiny_scale();
        let mut config = BenchConfig::from_scale(&scale);
        config.iterations = 512;
        config.samples = 1;
        let records = resynth_records(&scale, &config);
        assert_eq!(records.len(), scale.formats.len() * 2);
        for mode in ["inline", "supervised"] {
            let row = records
                .iter()
                .find(|r| r.mode == mode)
                .unwrap_or_else(|| panic!("missing mode {mode}"));
            assert!(row.p50_ns > 0.0 && row.p50_ns.is_finite(), "{row:?}");
            assert!(row.p99_ns >= row.p50_ns, "{row:?}");
            assert!(row.max_ns >= row.p99_ns, "{row:?}");
        }
    }

    #[test]
    fn adversarial_scenario_measures_all_three_phases_per_format() {
        let scale = tiny_scale();
        let mut config = BenchConfig::from_scale(&scale);
        config.iterations = 1024;
        config.samples = 1;
        let records = adversarial_records(&scale, &config);
        assert_eq!(records.len(), scale.formats.len() * 3);
        for phase in ["benign", "attack", "escalated"] {
            let row = records
                .iter()
                .find(|r| r.phase == phase)
                .unwrap_or_else(|| panic!("missing phase {phase}"));
            assert!(row.ns_per_op > 0.0 && row.ns_per_op.is_finite(), "{row:?}");
        }
        let benign = records.iter().find(|r| r.phase == "benign").unwrap();
        let attack = records.iter().find(|r| r.phase == "attack").unwrap();
        let escalated = records.iter().find(|r| r.phase == "escalated").unwrap();
        assert!(
            attack.max_chain >= 64,
            "the flood must land in one bucket: {attack:?}"
        );
        assert!(
            escalated.max_chain <= (benign.max_chain.max(1) * 4).max(8),
            "the keyed rung must break the flood apart: {escalated:?}"
        );
        assert!(
            escalated.escalation_us > 0.0,
            "escalation latency rides on the escalated row: {escalated:?}"
        );
        assert_eq!(benign.escalation_us, 0.0, "{benign:?}");
        assert_eq!(attack.escalation_us, 0.0, "{attack:?}");
    }

    #[test]
    fn metrics_snapshot_is_deterministic_and_balanced() {
        let scale = tiny_scale();
        let mut config = BenchConfig::from_scale(&scale);
        config.iterations = 512;
        let a = metrics_snapshot(&scale, &config);
        let b = metrics_snapshot(&scale, &config);
        assert_eq!(
            a.render(),
            b.render(),
            "same scale, same seeds, same snapshot bytes"
        );
        if sepe_obs::enabled() {
            // One degrade per format: the epoch opened, drained completely,
            // and every resident entry moved.
            let opened = a.counter_family_total("table_epochs_opened");
            let finished = a.counter_family_total("table_epochs_finished");
            assert_eq!(opened, scale.formats.len() as u64, "{a:?}");
            assert_eq!(opened, finished, "quiescent snapshot balances epochs");
            assert!(a.counter_family_total("table_drain_ops") > 0);
            assert!(a.counter_family_total("guard_in_format") > 0);
        }
    }

    #[test]
    fn today_utc_is_well_formed() {
        let d = today_utc();
        assert_eq!(d.len(), 10);
        assert_eq!(&d[4..5], "-");
        assert_eq!(&d[7..8], "-");
        assert!(d[..4].parse::<u32>().expect("year") >= 2024);
    }

    #[test]
    fn measurement_helpers_accept_any_hasher() {
        let keys: Vec<String> = (0..64).map(|i| format!("{i:03}-00-0000")).collect();
        let pool: Vec<&[u8]> = keys.iter().map(String::as_bytes).collect();
        let hash = SynthesizedHash::from_regex(r"\d{3}-\d{2}-\d{4}", Family::OffXor).unwrap();
        assert!(scalar_ns_per_key(&hash, &pool, 512) > 0.0);
        assert!(batched_ns_per_key(&hash, &pool, 8, 512) > 0.0);
    }
}
