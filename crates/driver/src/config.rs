//! Experiment parameterization: the driver grid of Section 4.

use sepe_containers::BucketPolicy;
use sepe_keygen::{Distribution, KeyFormat};

/// The four STL-style containers the driver exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContainerKind {
    /// `std::unordered_map` analog.
    Map,
    /// `std::unordered_set` analog.
    Set,
    /// `std::unordered_multimap` analog.
    MultiMap,
    /// `std::unordered_multiset` analog.
    MultiSet,
}

impl ContainerKind {
    /// All four containers, in the paper's order.
    pub const ALL: [ContainerKind; 4] = [
        ContainerKind::Map,
        ContainerKind::Set,
        ContainerKind::MultiMap,
        ContainerKind::MultiSet,
    ];

    /// Display name matching Figure 20's labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ContainerKind::Map => "UMap",
            ContainerKind::Set => "USet",
            ContainerKind::MultiMap => "UMMap",
            ContainerKind::MultiSet => "UMSet",
        }
    }
}

impl std::fmt::Display for ContainerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The execution mode of an experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// All operations in batches: inserts, then searches, then removals.
    Batched,
    /// 50% of the insertions first, then a random interweaving: insert
    /// with probability `p_insert`, search with `p_search`, remove with
    /// the rest.
    Interweaved {
        /// Probability of an insertion.
        p_insert: f64,
        /// Probability of a search.
        p_search: f64,
    },
}

impl Mode {
    /// The paper's four modes: batched plus the three probability mixes
    /// `(0.7, 0.2)`, `(0.6, 0.2)`, `(0.4, 0.3)`.
    pub const ALL: [Mode; 4] = [
        Mode::Batched,
        Mode::Interweaved {
            p_insert: 0.7,
            p_search: 0.2,
        },
        Mode::Interweaved {
            p_insert: 0.6,
            p_search: 0.2,
        },
        Mode::Interweaved {
            p_insert: 0.4,
            p_search: 0.3,
        },
    ];

    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Mode::Batched => "batched".to_owned(),
            Mode::Interweaved { p_insert, p_search } => {
                format!("mix({p_insert:.1},{p_search:.1})")
            }
        }
    }
}

/// The spreads (number of keys in the working pool) of the grid.
pub const SPREADS: [usize; 3] = [500, 2000, 10_000];

/// Affectations per experiment ("Experiments always run 10000
/// affectations").
pub const AFFECTATIONS: usize = 10_000;

/// Number of keys used for the collision counts of Table 1 ("considering
/// 10,000 keys").
pub const COLLISION_KEYS: usize = 10_000;

/// A full parameterization of the driver.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Which container to exercise.
    pub container: ContainerKind,
    /// Key distribution.
    pub distribution: Distribution,
    /// Number of keys in the working pool.
    pub spread: usize,
    /// Execution mode.
    pub mode: Mode,
    /// Key format.
    pub format: KeyFormat,
    /// Number of affectations to run.
    pub affectations: usize,
    /// Bucket-index policy of the container (modulo except in RQ7).
    pub policy: BucketPolicy,
    /// Seed for key generation and operation interleaving.
    pub seed: u64,
}

impl ExperimentConfig {
    /// A small, fast configuration for tests and doctests.
    #[must_use]
    pub fn quick(format: KeyFormat, distribution: Distribution) -> Self {
        ExperimentConfig {
            container: ContainerKind::Map,
            distribution,
            spread: 500,
            mode: Mode::Batched,
            format,
            affectations: 1500,
            policy: BucketPolicy::Modulo,
            seed: 42,
        }
    }

    /// The paper's 144-experiment grid for one key format: 4 containers ×
    /// 3 distributions × 3 spreads × 4 modes.
    #[must_use]
    pub fn grid(format: KeyFormat, affectations: usize, seed: u64) -> Vec<ExperimentConfig> {
        let mut out = Vec::with_capacity(144);
        for container in ContainerKind::ALL {
            for distribution in Distribution::ALL {
                for spread in SPREADS {
                    for mode in Mode::ALL {
                        out.push(ExperimentConfig {
                            container,
                            distribution,
                            spread,
                            mode,
                            format,
                            affectations,
                            policy: BucketPolicy::Modulo,
                            seed,
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_144_experiments() {
        let grid = ExperimentConfig::grid(KeyFormat::Ssn, AFFECTATIONS, 1);
        assert_eq!(grid.len(), 144);
    }

    #[test]
    fn grid_covers_every_dimension() {
        let grid = ExperimentConfig::grid(KeyFormat::Mac, 100, 1);
        for container in ContainerKind::ALL {
            assert!(grid.iter().any(|c| c.container == container));
        }
        for spread in SPREADS {
            assert!(grid.iter().any(|c| c.spread == spread));
        }
        for mode in Mode::ALL {
            assert!(grid.iter().any(|c| c.mode == mode));
        }
        for dist in Distribution::ALL {
            assert!(grid.iter().any(|c| c.distribution == dist));
        }
    }

    #[test]
    fn mode_probabilities_are_the_papers() {
        let probs: Vec<(f64, f64)> = Mode::ALL
            .iter()
            .filter_map(|m| match m {
                Mode::Interweaved { p_insert, p_search } => Some((*p_insert, *p_search)),
                Mode::Batched => None,
            })
            .collect();
        assert_eq!(probs, vec![(0.7, 0.2), (0.6, 0.2), (0.4, 0.3)]);
    }
}
