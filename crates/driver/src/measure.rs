//! Running one experiment and collecting the paper's four metrics.

use crate::config::{ContainerKind, ExperimentConfig, Mode, COLLISION_KEYS};
use sepe_containers::{
    BucketPolicy, UnorderedMap, UnorderedMultiMap, UnorderedMultiSet, UnorderedSet,
};
use sepe_core::ByteHash;
use sepe_keygen::{KeySampler, SplitMix64};
use std::time::{Duration, Instant};

/// The metrics of one experiment, matching Table 1's columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Wall time of the whole affectation loop (**B-Time**).
    pub b_time: Duration,
    /// Wall time of hashing the affectation keys alone (**H-Time**).
    pub h_time: Duration,
    /// Bucket collisions of a container filled with
    /// [`COLLISION_KEYS`] keys (**B-Coll**).
    pub bucket_collisions: u64,
    /// Distinct keys sharing a 64-bit hash code among
    /// [`COLLISION_KEYS`] distinct keys (**T-Coll**).
    pub true_collisions: u64,
}

/// One of the four containers, erased behind a common op interface.
enum Container<'h> {
    Map(UnorderedMap<String, u64, &'h dyn ByteHash>),
    Set(UnorderedSet<String, &'h dyn ByteHash>),
    MultiMap(UnorderedMultiMap<String, u64, &'h dyn ByteHash>),
    MultiSet(UnorderedMultiSet<String, &'h dyn ByteHash>),
}

impl<'h> Container<'h> {
    fn new(kind: ContainerKind, hash: &'h dyn ByteHash, policy: BucketPolicy) -> Self {
        match kind {
            ContainerKind::Map => {
                Container::Map(UnorderedMap::with_hasher_and_policy(hash, policy))
            }
            ContainerKind::Set => {
                Container::Set(UnorderedSet::with_hasher_and_policy(hash, policy))
            }
            ContainerKind::MultiMap => {
                Container::MultiMap(UnorderedMultiMap::with_hasher_and_policy(hash, policy))
            }
            ContainerKind::MultiSet => {
                Container::MultiSet(UnorderedMultiSet::with_hasher_and_policy(hash, policy))
            }
        }
    }

    #[inline]
    fn insert(&mut self, key: &str, value: u64) {
        match self {
            Container::Map(c) => {
                c.insert(key.to_owned(), value);
            }
            Container::Set(c) => {
                c.insert(key.to_owned());
            }
            Container::MultiMap(c) => c.insert(key.to_owned(), value),
            Container::MultiSet(c) => c.insert(key.to_owned()),
        }
    }

    #[inline]
    fn search(&self, key: &str) -> bool {
        match self {
            Container::Map(c) => c.get(key).is_some(),
            Container::Set(c) => c.contains(key),
            Container::MultiMap(c) => c.get(key).is_some(),
            Container::MultiSet(c) => c.contains(key),
        }
    }

    /// `erase(key)` semantics: maps/sets remove the one entry, multi
    /// containers remove every entry with the key.
    #[inline]
    fn remove(&mut self, key: &str) {
        match self {
            Container::Map(c) => {
                c.remove(key);
            }
            Container::Set(c) => {
                c.remove(key);
            }
            Container::MultiMap(c) => {
                c.remove_all(key);
            }
            Container::MultiSet(c) => {
                c.remove_all(key);
            }
        }
    }
}

/// Runs one experiment: times the affectation loop (B-Time), times hashing
/// alone (H-Time), and counts bucket and true collisions over
/// [`COLLISION_KEYS`] keys.
#[must_use]
pub fn run_experiment(cfg: &ExperimentConfig, hash: &dyn ByteHash) -> Measurement {
    let mut sampler = KeySampler::new(cfg.format, cfg.distribution, cfg.seed);
    let pool = sampler.pool(cfg.spread.max(1));

    let b_time = time_affectations(cfg, hash, &pool);
    let h_time = time_hashing(cfg, hash, &pool);
    let (bucket_collisions, true_collisions) = count_collisions(
        cfg.format,
        cfg.distribution,
        hash,
        cfg.policy,
        COLLISION_KEYS,
        cfg.seed,
    );

    Measurement {
        b_time,
        h_time,
        bucket_collisions,
        true_collisions,
    }
}

/// Times the affectation loop: `cfg.affectations` operations against a
/// fresh container (the **B-Time** of RQ1).
#[must_use]
pub fn time_affectations(cfg: &ExperimentConfig, hash: &dyn ByteHash, pool: &[String]) -> Duration {
    let mut container = Container::new(cfg.container, hash, cfg.policy);
    let mut rng = SplitMix64::new(cfg.seed ^ 0x5EED);
    let n = cfg.affectations;

    let start = Instant::now();
    match cfg.mode {
        Mode::Batched => {
            // Batches: insertions, then searches, then eliminations, keys
            // taken in pool order (ascending for the incremental
            // distribution).
            let third = n / 3;
            for i in 0..third {
                container.insert(&pool[i % pool.len()], i as u64);
            }
            for i in third..2 * third {
                std::hint::black_box(container.search(&pool[i % pool.len()]));
            }
            for i in 2 * third..n {
                container.remove(&pool[i % pool.len()]);
            }
        }
        Mode::Interweaved { p_insert, p_search } => {
            // First 50% of the insertions, then the random mix.
            let half = n / 2;
            for i in 0..half {
                container.insert(&pool[i % pool.len()], i as u64);
            }
            for i in half..n {
                let key = &pool[(rng.next_u64() as usize) % pool.len()];
                let p = rng.next_f64();
                if p < p_insert {
                    container.insert(key, i as u64);
                } else if p < p_insert + p_search {
                    std::hint::black_box(container.search(key));
                } else {
                    container.remove(key);
                }
            }
        }
    }
    start.elapsed()
}

/// Times hashing alone: `cfg.affectations` hash computations over the pool
/// (the **H-Time** of RQ1).
#[must_use]
pub fn time_hashing(cfg: &ExperimentConfig, hash: &dyn ByteHash, pool: &[String]) -> Duration {
    // Latency-chained measurement: the next key index depends on the
    // previous hash value, exactly as a hash-table consumer depends on the
    // hash to pick a bucket. Without the chain, out-of-order execution
    // pipelines the calls and the measurement collapses into call-overhead
    // throughput, hiding the differences RQ1 is after.
    let keys: Vec<&[u8]> = pool.iter().map(|s| s.as_bytes()).collect();
    // Index with a power-of-two mask so the chain costs one AND.
    let pot = if keys.len().is_power_of_two() {
        keys.len()
    } else {
        (keys.len().next_power_of_two() / 2).max(1)
    };
    let mask = pot - 1;
    let mut idx = 0usize;
    let mut acc = 0u64;
    let start = Instant::now();
    for _ in 0..cfg.affectations {
        let h = hash.hash_bytes(keys[idx]);
        acc ^= h;
        idx = (h as usize) & mask;
    }
    std::hint::black_box(acc);
    start.elapsed()
}

/// The distinct key pool the collision counts of an experiment measure.
///
/// Deterministic in `(format, distribution, seed)`, and `distinct_pool`
/// yields keys in encounter order — so the pool for a smaller `n` is a
/// prefix of the pool for a larger one. Data-dependent baselines (Gperf)
/// train on such a prefix via [`crate::registry::HashId::build_trained`],
/// mirroring how GNU gperf is handed the key set it will actually serve.
#[must_use]
pub fn collision_pool(
    format: sepe_keygen::KeyFormat,
    distribution: sepe_keygen::Distribution,
    n: usize,
    seed: u64,
) -> Vec<String> {
    let n = n.min(usize::try_from(format.space()).unwrap_or(usize::MAX));
    let mut sampler = KeySampler::new(format, distribution, seed ^ 0xC011);
    sampler.distinct_pool(n)
}

/// Counts bucket collisions (container-level, Section 4.2) and true
/// collisions (64-bit hash duplicates) over `n` distinct keys.
#[must_use]
pub fn count_collisions(
    format: sepe_keygen::KeyFormat,
    distribution: sepe_keygen::Distribution,
    hash: &dyn ByteHash,
    policy: BucketPolicy,
    n: usize,
    seed: u64,
) -> (u64, u64) {
    let keys = collision_pool(format, distribution, n, seed);
    collisions_of(hash, &keys, policy)
}

/// Bucket and true collisions of an explicit key set.
#[must_use]
pub fn collisions_of(
    hash: &dyn ByteHash,
    distinct_keys: &[String],
    policy: BucketPolicy,
) -> (u64, u64) {
    let mut map: UnorderedMap<String, (), &dyn ByteHash> =
        UnorderedMap::with_hasher_and_policy(hash, policy);
    for k in distinct_keys {
        map.insert(k.clone(), ());
    }
    let bucket = map.bucket_collisions();

    let mut hashes: Vec<u64> = distinct_keys
        .iter()
        .map(|k| hash.hash_bytes(k.as_bytes()))
        .collect();
    hashes.sort_unstable();
    let true_coll = hashes.windows(2).filter(|w| w[0] == w[1]).count() as u64;
    (bucket, true_coll)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::registry::HashId;
    use sepe_core::Isa;
    use sepe_keygen::{Distribution, KeyFormat};

    #[test]
    fn quick_experiment_produces_sane_measurements() {
        let cfg = ExperimentConfig::quick(KeyFormat::Ssn, Distribution::Normal);
        for id in [HashId::Stl, HashId::Pext, HashId::Gperf] {
            let hash = id.build(cfg.format, Isa::Native);
            let m = run_experiment(&cfg, hash.as_ref());
            assert!(m.b_time.as_nanos() > 0, "{id}");
            assert!(m.h_time.as_nanos() > 0, "{id}");
        }
    }

    #[test]
    fn pext_has_zero_true_collisions_on_ssn() {
        let hash = HashId::Pext.build(KeyFormat::Ssn, Isa::Native);
        let (_, t_coll) = count_collisions(
            KeyFormat::Ssn,
            Distribution::Uniform,
            hash.as_ref(),
            sepe_containers::BucketPolicy::Modulo,
            5000,
            1,
        );
        assert_eq!(t_coll, 0);
    }

    #[test]
    fn gperf_has_many_true_collisions() {
        // The paper's Table 1 reports tens of thousands; anything large
        // confirms the mechanism.
        let hash = HashId::Gperf.build(KeyFormat::Ssn, Isa::Native);
        let (b_coll, t_coll) = count_collisions(
            KeyFormat::Ssn,
            Distribution::Uniform,
            hash.as_ref(),
            sepe_containers::BucketPolicy::Modulo,
            5000,
            1,
        );
        assert!(t_coll > 1000, "gperf t_coll {t_coll}");
        assert!(b_coll > 1000, "gperf b_coll {b_coll}");
    }

    #[test]
    fn gperf_trained_on_the_measured_pool_no_longer_degenerates() {
        // Regression for the seed's repro_output.txt Gperf row: a constant
        // hash (empty position set, trained on a detached pool) put all
        // 10,000 keys of every format into one bucket — 9,999 B-Coll and
        // 8 × 9,999 = 79,992 T-Coll. Trained on a prefix of the measured
        // pool, gperf hashes that prefix (near-)perfectly and degrades to
        // ordinary heavy collisions — not a single value — beyond it.
        let n = 5000;
        let pool = collision_pool(KeyFormat::Ssn, Distribution::Normal, n, 42);
        let hash = HashId::Gperf.build_trained(KeyFormat::Ssn, Isa::Native, &pool);

        let train = &pool[..crate::registry::GPERF_TRAINING_KEYS];
        let mut trained: Vec<u64> = train
            .iter()
            .map(|k| hash.hash_bytes(k.as_bytes()))
            .collect();
        trained.sort_unstable();
        trained.dedup();
        // Keys permuting the same characters at the selected positions
        // collide unavoidably under a per-value table, so "near-perfect"
        // on random training keys means "mostly distinct", not perfect.
        assert!(
            trained.len() > train.len() * 3 / 4,
            "training prefix should be mostly distinct, got {} of {}",
            trained.len(),
            train.len()
        );

        let (b_coll, t_coll) =
            collisions_of(hash.as_ref(), &pool, sepe_containers::BucketPolicy::Modulo);
        assert!(
            t_coll < (n as u64) - u64::try_from(trained.len()).unwrap() + 1,
            "hash must not be constant on the pool: t_coll {t_coll}"
        );
        assert!(
            b_coll < (n as u64) - 1,
            "keys must spread over buckets: b_coll {b_coll}"
        );
    }

    #[test]
    fn every_mode_and_container_runs() {
        let hash = HashId::OffXor.build(KeyFormat::Ipv4, Isa::Native);
        for container in ContainerKind::ALL {
            for mode in Mode::ALL {
                let cfg = ExperimentConfig {
                    container,
                    mode,
                    ..ExperimentConfig::quick(KeyFormat::Ipv4, Distribution::Uniform)
                };
                let pool = KeySampler::new(cfg.format, cfg.distribution, cfg.seed).pool(cfg.spread);
                let t = time_affectations(&cfg, hash.as_ref(), &pool);
                assert!(t.as_nanos() > 0, "{container} {mode:?}");
            }
        }
    }

    #[test]
    fn interweaved_probabilities_shape_the_final_container() {
        // With a higher insert probability the container ends up fuller.
        // Run the loop manually so we can inspect the container afterwards.
        let format = KeyFormat::Ssn;
        let hash = HashId::Stl.build(format, Isa::Native);
        let final_len = |p_insert: f64, p_search: f64| -> usize {
            let cfg = ExperimentConfig {
                mode: Mode::Interweaved { p_insert, p_search },
                spread: 5000,
                affectations: 8000,
                ..ExperimentConfig::quick(format, Distribution::Uniform)
            };
            let pool = KeySampler::new(cfg.format, cfg.distribution, cfg.seed).pool(cfg.spread);
            // Reproduce the loop with an inspectable container.
            let mut c: sepe_containers::UnorderedMap<String, u64, &dyn ByteHash> =
                sepe_containers::UnorderedMap::with_hasher(hash.as_ref());
            let mut rng = SplitMix64::new(cfg.seed ^ 0x5EED);
            let (p_insert, p_search) = match cfg.mode {
                Mode::Interweaved { p_insert, p_search } => (p_insert, p_search),
                Mode::Batched => unreachable!("configured interweaved"),
            };
            let half = cfg.affectations / 2;
            for i in 0..half {
                c.insert(pool[i % pool.len()].clone(), i as u64);
            }
            for i in half..cfg.affectations {
                let key = &pool[(rng.next_u64() as usize) % pool.len()];
                let p = rng.next_f64();
                if p < p_insert {
                    c.insert(key.clone(), i as u64);
                } else if p >= p_insert + p_search {
                    c.remove(key.as_str());
                }
            }
            c.len()
        };
        let heavy_insert = final_len(0.7, 0.2);
        let heavy_remove = final_len(0.4, 0.3);
        assert!(
            heavy_insert > heavy_remove,
            "(0.7,0.2) -> {heavy_insert} should exceed (0.4,0.3) -> {heavy_remove}"
        );
    }

    #[test]
    fn collision_counter_caps_at_the_key_space() {
        let hash = HashId::Stl.build(KeyFormat::FourDigits, Isa::Native);
        // FourDigits has only 10 000 keys; asking for COLLISION_KEYS must
        // not hang.
        let (b, t) = count_collisions(
            KeyFormat::FourDigits,
            Distribution::Uniform,
            hash.as_ref(),
            sepe_containers::BucketPolicy::Modulo,
            COLLISION_KEYS,
            3,
        );
        assert_eq!(t, 0, "STL should not collide on 10k keys");
        let _ = b;
    }
}
