//! `UnorderedMultiSet` — the analog of `std::unordered_multiset`.

use crate::multimap::UnorderedMultiMap;
use crate::policy::{BucketPolicy, DriftPolicy};
use sepe_core::guard::{GuardMode, GuardStats, GuardedHash};
use sepe_core::hash::ByteHash;
use std::borrow::Borrow;

/// A chained hash multiset: an [`UnorderedMultiMap`] with unit values.
///
/// # Examples
///
/// ```
/// use sepe_baselines::StlHash;
/// use sepe_containers::UnorderedMultiSet;
///
/// let mut s = UnorderedMultiSet::with_hasher(StlHash::new());
/// s.insert("x".to_owned());
/// s.insert("x".to_owned());
/// assert_eq!(s.count("x"), 2);
/// assert_eq!(s.remove_all("x"), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnorderedMultiSet<K, H> {
    inner: UnorderedMultiMap<K, (), H>,
}

impl<K, H> UnorderedMultiSet<K, H>
where
    K: Eq + AsRef<[u8]>,
    H: ByteHash,
{
    /// Creates an empty multiset using `hasher`.
    pub fn with_hasher(hasher: H) -> Self {
        UnorderedMultiSet {
            inner: UnorderedMultiMap::with_hasher(hasher),
        }
    }

    /// Creates an empty multiset with an explicit bucket-index policy.
    pub fn with_hasher_and_policy(hasher: H, policy: BucketPolicy) -> Self {
        UnorderedMultiSet {
            inner: UnorderedMultiMap::with_hasher_and_policy(hasher, policy),
        }
    }

    /// Number of elements (counting duplicates).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the multiset is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Inserts an element; duplicates accumulate.
    pub fn insert(&mut self, key: K) {
        self.inner.insert(key, ());
    }

    /// Number of copies of `key`.
    pub fn count<Q>(&self, key: &Q) -> usize
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.inner.count(key)
    }

    /// Whether at least one copy of `key` is present.
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.inner.contains_key(key)
    }

    /// Removes one copy of `key`; returns whether one was present.
    pub fn remove_one<Q>(&mut self, key: &Q) -> bool
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.inner.remove_one(key).is_some()
    }

    /// Removes every copy of `key`, returning how many were removed.
    pub fn remove_all<Q>(&mut self, key: &Q) -> usize
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.inner.remove_all(key)
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Iterates over the elements in arena order.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.inner.iter().map(|(k, ())| k)
    }

    /// Current number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.inner.bucket_count()
    }

    /// Number of live entries in bucket `i`.
    pub fn bucket_len(&self, i: usize) -> usize {
        self.inner.bucket_len(i)
    }

    /// The paper's bucket-collision count (Section 4.2).
    pub fn bucket_collisions(&self) -> u64 {
        self.inner.bucket_collisions()
    }

    /// Advances any in-flight hash-function migration by up to `n` entries.
    pub fn migrate(&mut self, n: usize) {
        self.inner.migrate(n);
    }

    /// Drains an in-flight migration completely.
    pub fn finish_migration(&mut self) {
        self.inner.finish_migration();
    }

    /// Whether a hash-function migration epoch is currently being drained.
    pub fn migration_in_flight(&self) -> bool {
        self.inner.migration_in_flight()
    }

    /// Fraction of the current migration already drained (`1.0` when idle).
    pub fn migration_progress(&self) -> f64 {
        self.inner.migration_progress()
    }

    /// Opportunistic migration drain for read-heavy callers — see
    /// [`UnorderedMap::drain_on_read`](crate::UnorderedMap::drain_on_read).
    pub fn drain_on_read(&mut self) {
        self.inner.drain_on_read();
    }

    /// Read-only lookups served while a migration epoch was in flight.
    pub fn stale_reads(&self) -> u64 {
        self.inner.stale_reads()
    }
}

impl<K, F, G> UnorderedMultiSet<K, GuardedHash<F, G>>
where
    K: Eq + AsRef<[u8]>,
    F: ByteHash,
    G: ByteHash,
{
    /// The drift counters of the guarded hasher.
    pub fn drift_stats(&self) -> &GuardStats {
        self.inner.drift_stats()
    }

    /// The guarded hasher's current routing mode.
    pub fn guard_mode(&self) -> GuardMode {
        self.inner.guard_mode()
    }
}

impl<K, F, G> UnorderedMultiSet<K, GuardedHash<F, G>>
where
    K: Eq + AsRef<[u8]>,
    F: ByteHash + Clone,
    G: ByteHash + Clone,
{
    /// Degrades unconditionally and opens an incremental migration epoch.
    pub fn degrade_now(&mut self) {
        self.inner.degrade_now();
    }

    /// Degrades when windowed drift exceeds `policy`; returns whether this
    /// call performed the transition.
    pub fn maybe_degrade(&mut self, policy: &DriftPolicy) -> bool {
        self.inner.maybe_degrade(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_baselines::StlHash;

    #[test]
    fn multiset_semantics() {
        let mut s = UnorderedMultiSet::with_hasher(StlHash::new());
        s.insert("a".to_owned());
        s.insert("a".to_owned());
        s.insert("b".to_owned());
        assert_eq!(s.len(), 3);
        assert_eq!(s.count("a"), 2);
        assert!(s.contains("b"));
        assert!(s.remove_one("a"));
        assert_eq!(s.count("a"), 1);
        assert_eq!(s.remove_all("a"), 1);
        assert!(!s.contains("a"));
        s.clear();
        assert!(s.is_empty());
    }
}
