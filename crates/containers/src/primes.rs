//! Prime bucket counts, mirroring libstdc++'s growth policy
//! (`_Prime_rehash_policy`): bucket counts are primes, and growth jumps to
//! the first prime at least twice the current count.

/// Whether `n` is prime (deterministic trial division; bucket counts stay
/// well below the range where this matters for speed).
#[must_use]
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    if n.is_multiple_of(3) {
        return n == 3;
    }
    let mut d = 5u64;
    while d.saturating_mul(d) <= n {
        if n.is_multiple_of(d) || n.is_multiple_of(d + 2) {
            return false;
        }
        d += 6;
    }
    true
}

/// The smallest prime greater than or equal to `n`.
///
/// # Examples
///
/// ```
/// use sepe_containers::primes::next_prime;
///
/// assert_eq!(next_prime(10), 11);
/// assert_eq!(next_prime(13), 13);
/// ```
#[must_use]
pub fn next_prime(n: u64) -> u64 {
    let mut c = n.max(2);
    while !is_prime(c) {
        c += 1;
    }
    c
}

/// The bucket count to rehash to so that `required` elements fit under the
/// given maximum load factor: the first prime at least
/// `max(2 * current, required / max_load_factor)`.
#[must_use]
pub fn grow_bucket_count(current: u64, required: usize, max_load_factor: f64) -> u64 {
    let by_load = (required as f64 / max_load_factor).ceil() as u64;
    next_prime((current * 2).max(by_load).max(13))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes: Vec<u64> = (0..60).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]
        );
    }

    #[test]
    fn next_prime_is_monotone_and_prime() {
        let mut last = 0;
        for n in 0..2000u64 {
            let p = next_prime(n);
            assert!(is_prime(p));
            assert!(p >= n);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn growth_at_least_doubles() {
        let mut n = 13u64;
        for _ in 0..20 {
            let next = grow_bucket_count(n, 0, 1.0);
            assert!(next >= n * 2);
            assert!(is_prime(next));
            n = next;
        }
    }

    #[test]
    fn growth_respects_load_factor() {
        let n = grow_bucket_count(13, 1000, 0.5);
        assert!(n >= 2000);
        assert!(is_prime(n));
    }
}
