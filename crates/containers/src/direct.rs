//! `DirectMap` — specialized *storage*, the paper's future-work direction.
//!
//! The conclusion of the paper notes: "our techniques specialize hashing,
//! but not storage and retrieval; we see room for generating code for
//! specialized data structures". This container takes that step for the
//! strongest case the synthesizer certifies: when the Pext plan is a
//! *bijection* from format keys to `b`-bit integers
//! ([`Plan::bijection_bits`](sepe_core::synth::Plan::bijection_bits)), the hash value *is* the element's address —
//! Kraska et al.'s "the key itself can be used as an offset", which the
//! paper quotes twice.
//!
//! No buckets, no chains, no stored keys, no collision handling: a lookup
//! is one hash and one paged-array access. The trade-off is the same one
//! SEPE itself makes: correctness is only guaranteed for keys of the
//! synthesized format (checked with `debug_assert!` in debug builds).

use sepe_core::hash::SynthesizedHash;
use sepe_core::pattern::KeyPattern;
use sepe_core::synth::{synthesize, Family};
use sepe_core::{ByteHash, Isa};
use std::collections::BTreeMap;
use std::fmt;

/// Slots per page (2¹² values per allocated page).
const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Index widths up to this use one flat array (2²² slots) instead of the
/// paged directory: for dense or narrow key spaces, a lookup is literally
/// `array[hash]`.
const FLAT_BITS: u32 = 22;

/// Error returned when a key format does not admit a bijective index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectMapError {
    /// The format's variable bits exceed 64, or the synthesized fields
    /// overlap, so distinct keys could share an index.
    NotBijective {
        /// Variable bits the format actually has.
        variable_bits: usize,
    },
    /// The format is variable-length or shorter than a machine word; the
    /// synthesizer produced no fixed-word plan.
    UnsupportedShape,
}

impl fmt::Display for DirectMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirectMapError::NotBijective { variable_bits } => write!(
                f,
                "key format has {variable_bits} variable bits; a direct index needs a \
                 bijection into 64 bits"
            ),
            DirectMapError::UnsupportedShape => {
                write!(f, "key format is not a fixed-length word-hashable shape")
            }
        }
    }
}

impl std::error::Error for DirectMapError {}

/// A map indexed directly by the Pext bijection of its key format.
///
/// # Examples
///
/// ```
/// use sepe_containers::direct::DirectMap;
/// use sepe_core::regex::Regex;
///
/// let ssn = Regex::compile(r"\d{3}-\d{2}-\d{4}")?;
/// let mut m: DirectMap<&str> = DirectMap::new(&ssn)?;
/// m.insert(b"123-45-6789", "alice");
/// assert_eq!(m.get(b"123-45-6789"), Some(&"alice"));
/// assert_eq!(m.get(b"123-45-6780"), None);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DirectMap<V> {
    hash: SynthesizedHash,
    pattern: KeyPattern,
    store: Store<V>,
    len: usize,
    bits: u32,
}

/// Backing storage: flat for narrow index spaces, paged for wide ones.
#[derive(Debug)]
enum Store<V> {
    Flat(Vec<Option<V>>),
    Paged(BTreeMap<u64, Box<[Option<V>]>>),
}

impl<V> Store<V> {
    fn slot_mut(&mut self, idx: u64) -> &mut Option<V> {
        match self {
            Store::Flat(v) => &mut v[idx as usize],
            Store::Paged(pages) => {
                let page = pages
                    .entry(idx >> PAGE_BITS)
                    .or_insert_with(|| (0..PAGE_SIZE).map(|_| None).collect());
                &mut page[(idx as usize) & (PAGE_SIZE - 1)]
            }
        }
    }

    fn slot(&self, idx: u64) -> Option<&Option<V>> {
        match self {
            Store::Flat(v) => v.get(idx as usize),
            Store::Paged(pages) => pages
                .get(&(idx >> PAGE_BITS))
                .map(|p| &p[(idx as usize) & (PAGE_SIZE - 1)]),
        }
    }

    fn existing_slot_mut(&mut self, idx: u64) -> Option<&mut Option<V>> {
        match self {
            Store::Flat(v) => v.get_mut(idx as usize),
            Store::Paged(pages) => pages
                .get_mut(&(idx >> PAGE_BITS))
                .map(|p| &mut p[(idx as usize) & (PAGE_SIZE - 1)]),
        }
    }
}

impl<V> DirectMap<V> {
    /// Builds a direct map for a key format.
    ///
    /// # Errors
    ///
    /// Returns [`DirectMapError`] when the format does not admit a
    /// bijective Pext index (more than 64 variable bits, variable length,
    /// or a sub-word key that SEPE refuses).
    pub fn new(pattern: &KeyPattern) -> Result<Self, DirectMapError> {
        let plan = synthesize(pattern, Family::Pext);
        let Some(bits) = plan.bijection_bits() else {
            if plan.is_fallback() || !pattern.is_fixed_len() {
                return Err(DirectMapError::UnsupportedShape);
            }
            return Err(DirectMapError::NotBijective {
                variable_bits: pattern.variable_bits(),
            });
        };
        // The plan must account for every variable bit, or two distinct
        // keys could still coincide.
        if bits as usize != pattern.variable_bits() {
            return Err(DirectMapError::NotBijective {
                variable_bits: pattern.variable_bits(),
            });
        }
        let store = if bits <= FLAT_BITS {
            Store::Flat((0..1usize << bits).map(|_| None).collect())
        } else {
            Store::Paged(BTreeMap::new())
        };
        Ok(DirectMap {
            hash: SynthesizedHash::new(plan, Family::Pext, Isa::Native),
            pattern: pattern.clone(),
            store,
            len: 0,
            bits,
        })
    }

    /// Whether the map uses one flat array (narrow index spaces) rather
    /// than the paged directory.
    #[must_use]
    pub fn is_flat(&self) -> bool {
        matches!(self.store, Store::Flat(_))
    }

    /// Number of significant index bits (the format's variable bits).
    #[must_use]
    pub fn index_bits(&self) -> u32 {
        self.bits
    }

    /// Number of stored values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated pages (each 2¹²-slot wide); flat maps
    /// count as one page.
    #[must_use]
    pub fn page_count(&self) -> usize {
        match &self.store {
            Store::Flat(_) => 1,
            Store::Paged(pages) => pages.len(),
        }
    }

    #[inline]
    fn index_of(&self, key: &[u8]) -> u64 {
        debug_assert!(
            self.pattern.matches(key),
            "DirectMap key {key:?} does not match the synthesized format"
        );
        self.hash.hash_bytes(key)
    }

    /// Inserts a value for a format key, returning the previous value.
    pub fn insert(&mut self, key: &[u8], value: V) -> Option<V> {
        let idx = self.index_of(key);
        let prev = self.store.slot_mut(idx).replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Looks up a format key.
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<&V> {
        let idx = self.index_of(key);
        self.store.slot(idx)?.as_ref()
    }

    /// Looks up a format key, mutably.
    pub fn get_mut(&mut self, key: &[u8]) -> Option<&mut V> {
        let idx = self.index_of(key);
        self.store.existing_slot_mut(idx)?.as_mut()
    }

    /// Removes a format key, returning its value.
    pub fn remove(&mut self, key: &[u8]) -> Option<V> {
        let idx = self.index_of(key);
        let removed = self.store.existing_slot_mut(idx)?.take();
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Removes every value (paged storage is released; flat storage is
    /// reset in place).
    pub fn clear(&mut self) {
        match &mut self.store {
            Store::Flat(v) => v.iter_mut().for_each(|s| *s = None),
            Store::Paged(pages) => pages.clear(),
        }
        self.len = 0;
    }

    /// Iterates over stored values in index order.
    pub fn values(&self) -> Box<dyn Iterator<Item = &V> + '_> {
        match &self.store {
            Store::Flat(v) => Box::new(v.iter().filter_map(Option::as_ref)),
            Store::Paged(pages) => Box::new(
                pages
                    .values()
                    .flat_map(|p| p.iter().filter_map(Option::as_ref)),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_core::regex::Regex;

    fn ssn_pattern() -> KeyPattern {
        Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("ssn regex compiles")
    }

    #[test]
    fn insert_get_remove() {
        let mut m: DirectMap<u32> = DirectMap::new(&ssn_pattern()).expect("ssn is bijective");
        assert_eq!(m.index_bits(), 36);
        for i in 0..5000u32 {
            let key = format!("{:03}-{:02}-{:04}", i % 997, i % 89, i);
            assert_eq!(m.insert(key.as_bytes(), i), None);
        }
        assert_eq!(m.len(), 5000);
        for i in 0..5000u32 {
            let key = format!("{:03}-{:02}-{:04}", i % 997, i % 89, i);
            assert_eq!(m.get(key.as_bytes()), Some(&i));
        }
        for i in 0..5000u32 {
            let key = format!("{:03}-{:02}-{:04}", i % 997, i % 89, i);
            assert_eq!(m.remove(key.as_bytes()), Some(i));
        }
        assert!(m.is_empty());
    }

    #[test]
    fn replaces_like_a_map() {
        let mut m: DirectMap<&str> = DirectMap::new(&ssn_pattern()).expect("bijective");
        assert_eq!(m.insert(b"111-11-1111", "a"), None);
        assert_eq!(m.insert(b"111-11-1111", "b"), Some("a"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(b"111-11-1111"), Some(&"b"));
    }

    #[test]
    fn distinct_keys_never_clash() {
        // Exhaustive over a dense sub-space: the bijection guarantee.
        let mut m: DirectMap<u32> = DirectMap::new(&ssn_pattern()).expect("bijective");
        for i in 0..10_000u32 {
            let key = format!("000-00-{i:04}");
            assert_eq!(m.insert(key.as_bytes(), i), None, "index clash at {i}");
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn rejects_wide_formats() {
        // IPv6: 8 x 16 fully-variable hex bytes >> 64 variable bits.
        let p = Regex::compile(r"([0-9a-f]{4}:){7}[0-9a-f]{4}").expect("regex compiles");
        match DirectMap::<u32>::new(&p) {
            Err(DirectMapError::NotBijective { variable_bits }) => {
                assert!(variable_bits > 64);
            }
            other => panic!("expected NotBijective, got {other:?}"),
        }
    }

    #[test]
    fn rejects_variable_length_formats() {
        let p = Regex::compile(r"[0-9]{8}([0-9]{4})?").expect("regex compiles");
        assert!(matches!(
            DirectMap::<u32>::new(&p),
            Err(DirectMapError::UnsupportedShape)
        ));
    }

    #[test]
    fn rejects_short_formats() {
        let p = Regex::compile(r"\d{4}").expect("regex compiles");
        assert!(matches!(
            DirectMap::<u32>::new(&p),
            Err(DirectMapError::UnsupportedShape)
        ));
    }

    #[test]
    fn narrow_formats_use_flat_storage() {
        // 5 digits + 3 constant bytes: 20 variable bits -> flat array.
        let p = Regex::compile(r"\d{5}-us").expect("regex compiles");
        let mut m: DirectMap<u16> = DirectMap::new(&p).expect("bijective");
        assert!(m.is_flat());
        assert_eq!(m.index_bits(), 20);
        for i in 0..10_000u16 {
            let key = format!("{:05}-us", u32::from(i) * 7 % 100_000);
            m.insert(key.as_bytes(), i);
        }
        assert!(m.len() <= 10_000);
        assert_eq!(m.get(b"00000-us"), Some(&0));
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(b"00000-us"), None);
    }

    #[test]
    fn wide_formats_use_paged_storage() {
        let m: DirectMap<u16> = DirectMap::new(&ssn_pattern()).expect("bijective");
        assert!(!m.is_flat());
    }

    #[test]
    fn pages_stay_sparse() {
        let mut m: DirectMap<u8> = DirectMap::new(&ssn_pattern()).expect("bijective");
        // Keys varying only in the first three digits map to the low bits
        // of the extraction, so they cluster into one or two pages.
        for i in 0..1000u32 {
            let key = format!("{i:03}-00-0000");
            m.insert(key.as_bytes(), 1);
        }
        assert_eq!(m.len(), 1000);
        assert!(
            m.page_count() <= 2,
            "clustered keys share pages, got {}",
            m.page_count()
        );
        assert_eq!(m.values().count(), m.len());
    }
}
