//! `UnorderedMultiMap` — the analog of `std::unordered_multimap`.

use crate::policy::{BucketPolicy, DriftPolicy};
use crate::table::RawTable;
use sepe_core::guard::{GuardMode, GuardStats, GuardedHash};
use sepe_core::hash::ByteHash;
use std::borrow::Borrow;

/// A chained hash multimap: multiple pairs may share a key. As in
/// `std::unordered_multimap`, `remove_all` mirrors `erase(key)` (drops every
/// pair with that key), and `get` returns *some* pair with the key.
///
/// # Examples
///
/// ```
/// use sepe_baselines::StlHash;
/// use sepe_containers::UnorderedMultiMap;
///
/// let mut m = UnorderedMultiMap::with_hasher(StlHash::new());
/// m.insert("k".to_owned(), 1);
/// m.insert("k".to_owned(), 2);
/// assert_eq!(m.count("k"), 2);
/// assert_eq!(m.remove_all("k"), 2);
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct UnorderedMultiMap<K, V, H> {
    table: RawTable<K, V, H>,
}

impl<K, V, H> UnorderedMultiMap<K, V, H>
where
    K: Eq + AsRef<[u8]>,
    H: ByteHash,
{
    /// Creates an empty multimap using `hasher`.
    pub fn with_hasher(hasher: H) -> Self {
        UnorderedMultiMap {
            table: RawTable::new(hasher, BucketPolicy::Modulo),
        }
    }

    /// Creates an empty multimap with an explicit bucket-index policy.
    pub fn with_hasher_and_policy(hasher: H, policy: BucketPolicy) -> Self {
        UnorderedMultiMap {
            table: RawTable::new(hasher, policy),
        }
    }

    /// Number of pairs (counting duplicates).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the multimap is empty.
    pub fn is_empty(&self) -> bool {
        self.table.len() == 0
    }

    /// Inserts a pair; equal keys accumulate.
    pub fn insert(&mut self, key: K, value: V) {
        self.table.insert_multi(key, value);
    }

    /// Some value stored under `key`, if any.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.table.find(key).map(|i| &self.table.get_kv(i).1)
    }

    /// Number of pairs stored under `key`.
    pub fn count<Q>(&self, key: &Q) -> usize
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.table.count(key)
    }

    /// Whether any pair is stored under `key`.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.table.find(key).is_some()
    }

    /// Removes one pair stored under `key`.
    pub fn remove_one<Q>(&mut self, key: &Q) -> Option<V>
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.table.remove_one(key).map(|(_, v)| v)
    }

    /// Removes every pair stored under `key` (like `erase(key)`), returning
    /// how many were removed.
    pub fn remove_all<Q>(&mut self, key: &Q) -> usize
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.table.remove_all(key)
    }

    /// Removes every pair.
    pub fn clear(&mut self) {
        self.table.clear();
    }

    /// Iterates over pairs in arena order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.table.iter()
    }

    /// Current number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.table.bucket_count()
    }

    /// Number of live entries in bucket `i`.
    pub fn bucket_len(&self, i: usize) -> usize {
        self.table.bucket_len(i)
    }

    /// The paper's bucket-collision count (Section 4.2).
    pub fn bucket_collisions(&self) -> u64 {
        self.table.bucket_collisions()
    }

    /// Advances any in-flight hash-function migration by up to `n` entries.
    pub fn migrate(&mut self, n: usize) {
        self.table.migrate(n);
    }

    /// Drains an in-flight migration completely.
    pub fn finish_migration(&mut self) {
        self.table.finish_migration();
    }

    /// Whether a hash-function migration epoch is currently being drained.
    pub fn migration_in_flight(&self) -> bool {
        self.table.migration_in_flight()
    }

    /// Fraction of the current migration already drained (`1.0` when idle).
    pub fn migration_progress(&self) -> f64 {
        self.table.migration_progress()
    }

    /// Opportunistic migration drain for read-heavy callers — see
    /// [`UnorderedMap::drain_on_read`](crate::UnorderedMap::drain_on_read).
    pub fn drain_on_read(&mut self) {
        self.table.drain_on_read();
    }

    /// Read-only lookups served while a migration epoch was in flight.
    pub fn stale_reads(&self) -> u64 {
        self.table.stale_reads()
    }
}

impl<K, V, F, G> UnorderedMultiMap<K, V, GuardedHash<F, G>>
where
    K: Eq + AsRef<[u8]>,
    F: ByteHash,
    G: ByteHash,
{
    /// The drift counters of the guarded hasher.
    pub fn drift_stats(&self) -> &GuardStats {
        self.table.hasher().stats()
    }

    /// The guarded hasher's current routing mode.
    pub fn guard_mode(&self) -> GuardMode {
        self.table.hasher().mode()
    }
}

impl<K, V, F, G> UnorderedMultiMap<K, V, GuardedHash<F, G>>
where
    K: Eq + AsRef<[u8]>,
    F: ByteHash + Clone,
    G: ByteHash + Clone,
{
    /// Degrades unconditionally and opens an incremental migration epoch.
    pub fn degrade_now(&mut self) {
        if self.table.hasher().is_degraded() {
            return;
        }
        let old = self.table.hasher().epoch_frozen(GuardMode::Guarded);
        self.table.hasher().degrade();
        let rehasher = self.table.hasher().epoch_frozen(GuardMode::Degraded);
        self.table.begin_migration(old, rehasher);
    }

    /// Degrades when windowed drift exceeds `policy`; returns whether this
    /// call performed the transition.
    pub fn maybe_degrade(&mut self, policy: &DriftPolicy) -> bool {
        if self.table.hasher().is_degraded() {
            return false;
        }
        let (off, total) = self.drift_stats().window_counts();
        if policy.should_degrade(off, total) {
            self.degrade_now();
            return true;
        }
        if policy.window_full(total) {
            self.drift_stats().roll_window();
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_baselines::StlHash;

    #[test]
    fn duplicates_accumulate_and_erase_together() {
        let mut m = UnorderedMultiMap::with_hasher(StlHash::new());
        for i in 0..100u32 {
            m.insert("dup".to_owned(), i);
            m.insert(format!("unique-{i}"), i);
        }
        assert_eq!(m.len(), 200);
        assert_eq!(m.count("dup"), 100);
        assert_eq!(m.count("unique-5"), 1);
        assert_eq!(m.remove_all("dup"), 100);
        assert_eq!(m.len(), 100);
        assert_eq!(m.count("dup"), 0);
    }

    #[test]
    fn remove_one_peels_duplicates() {
        let mut m = UnorderedMultiMap::with_hasher(StlHash::new());
        m.insert("k".to_owned(), 1);
        m.insert("k".to_owned(), 2);
        assert!(m.remove_one("k").is_some());
        assert_eq!(m.count("k"), 1);
        assert!(m.remove_one("k").is_some());
        assert_eq!(m.remove_one("k"), None);
    }

    #[test]
    fn grows_under_duplicates() {
        let mut m = UnorderedMultiMap::with_hasher(StlHash::new());
        for i in 0..5000u32 {
            m.insert("same".to_owned(), i);
        }
        assert_eq!(m.len(), 5000);
        assert_eq!(m.count("same"), 5000);
        assert!(m.bucket_count() >= 5000);
    }
}
