//! `UnorderedMultiMap` — the analog of `std::unordered_multimap`.

use crate::policy::BucketPolicy;
use crate::table::RawTable;
use sepe_core::hash::ByteHash;
use std::borrow::Borrow;

/// A chained hash multimap: multiple pairs may share a key. As in
/// `std::unordered_multimap`, `remove_all` mirrors `erase(key)` (drops every
/// pair with that key), and `get` returns *some* pair with the key.
///
/// # Examples
///
/// ```
/// use sepe_baselines::StlHash;
/// use sepe_containers::UnorderedMultiMap;
///
/// let mut m = UnorderedMultiMap::with_hasher(StlHash::new());
/// m.insert("k".to_owned(), 1);
/// m.insert("k".to_owned(), 2);
/// assert_eq!(m.count("k"), 2);
/// assert_eq!(m.remove_all("k"), 2);
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct UnorderedMultiMap<K, V, H> {
    table: RawTable<K, V, H>,
}

impl<K, V, H> UnorderedMultiMap<K, V, H>
where
    K: Eq + AsRef<[u8]>,
    H: ByteHash,
{
    /// Creates an empty multimap using `hasher`.
    pub fn with_hasher(hasher: H) -> Self {
        UnorderedMultiMap {
            table: RawTable::new(hasher, BucketPolicy::Modulo),
        }
    }

    /// Creates an empty multimap with an explicit bucket-index policy.
    pub fn with_hasher_and_policy(hasher: H, policy: BucketPolicy) -> Self {
        UnorderedMultiMap {
            table: RawTable::new(hasher, policy),
        }
    }

    /// Number of pairs (counting duplicates).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the multimap is empty.
    pub fn is_empty(&self) -> bool {
        self.table.len() == 0
    }

    /// Inserts a pair; equal keys accumulate.
    pub fn insert(&mut self, key: K, value: V) {
        self.table.insert_multi(key, value);
    }

    /// Some value stored under `key`, if any.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.table.find(key).map(|i| &self.table.get_kv(i).1)
    }

    /// Number of pairs stored under `key`.
    pub fn count<Q>(&self, key: &Q) -> usize
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.table.count(key)
    }

    /// Whether any pair is stored under `key`.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.table.find(key).is_some()
    }

    /// Removes one pair stored under `key`.
    pub fn remove_one<Q>(&mut self, key: &Q) -> Option<V>
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.table.remove_one(key).map(|(_, v)| v)
    }

    /// Removes every pair stored under `key` (like `erase(key)`), returning
    /// how many were removed.
    pub fn remove_all<Q>(&mut self, key: &Q) -> usize
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.table.remove_all(key)
    }

    /// Removes every pair.
    pub fn clear(&mut self) {
        self.table.clear();
    }

    /// Iterates over pairs in arena order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.table.iter()
    }

    /// Current number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.table.bucket_count()
    }

    /// Number of live entries in bucket `i`.
    pub fn bucket_len(&self, i: usize) -> usize {
        self.table.bucket_len(i)
    }

    /// The paper's bucket-collision count (Section 4.2).
    pub fn bucket_collisions(&self) -> u64 {
        self.table.bucket_collisions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_baselines::StlHash;

    #[test]
    fn duplicates_accumulate_and_erase_together() {
        let mut m = UnorderedMultiMap::with_hasher(StlHash::new());
        for i in 0..100u32 {
            m.insert("dup".to_owned(), i);
            m.insert(format!("unique-{i}"), i);
        }
        assert_eq!(m.len(), 200);
        assert_eq!(m.count("dup"), 100);
        assert_eq!(m.count("unique-5"), 1);
        assert_eq!(m.remove_all("dup"), 100);
        assert_eq!(m.len(), 100);
        assert_eq!(m.count("dup"), 0);
    }

    #[test]
    fn remove_one_peels_duplicates() {
        let mut m = UnorderedMultiMap::with_hasher(StlHash::new());
        m.insert("k".to_owned(), 1);
        m.insert("k".to_owned(), 2);
        assert!(m.remove_one("k").is_some());
        assert_eq!(m.count("k"), 1);
        assert!(m.remove_one("k").is_some());
        assert_eq!(m.remove_one("k"), None);
    }

    #[test]
    fn grows_under_duplicates() {
        let mut m = UnorderedMultiMap::with_hasher(StlHash::new());
        for i in 0..5000u32 {
            m.insert("same".to_owned(), i);
        }
        assert_eq!(m.len(), 5000);
        assert_eq!(m.count("same"), 5000);
        assert!(m.bucket_count() >= 5000);
    }
}
