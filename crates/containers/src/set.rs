//! `UnorderedSet` — the analog of `std::unordered_set`.

use crate::map::UnorderedMap;
use crate::policy::{BucketPolicy, DriftPolicy};
use sepe_core::guard::{GuardMode, GuardStats, GuardedHash};
use sepe_core::hash::ByteHash;
use std::borrow::Borrow;

/// A chained hash set: an [`UnorderedMap`] with unit values.
///
/// # Examples
///
/// ```
/// use sepe_baselines::StlHash;
/// use sepe_containers::UnorderedSet;
///
/// let mut s = UnorderedSet::with_hasher(StlHash::new());
/// assert!(s.insert("a".to_owned()));
/// assert!(!s.insert("a".to_owned()));
/// assert!(s.contains("a"));
/// assert!(s.remove("a"));
/// assert!(s.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct UnorderedSet<K, H> {
    inner: UnorderedMap<K, (), H>,
}

impl<K, H> UnorderedSet<K, H>
where
    K: Eq + AsRef<[u8]>,
    H: ByteHash,
{
    /// Creates an empty set using `hasher`.
    pub fn with_hasher(hasher: H) -> Self {
        UnorderedSet {
            inner: UnorderedMap::with_hasher(hasher),
        }
    }

    /// Creates an empty set with an explicit bucket-index policy.
    pub fn with_hasher_and_policy(hasher: H, policy: BucketPolicy) -> Self {
        UnorderedSet {
            inner: UnorderedMap::with_hasher_and_policy(hasher, policy),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Inserts an element; returns whether it was newly added.
    pub fn insert(&mut self, key: K) -> bool {
        self.inner.insert(key, ()).is_none()
    }

    /// Whether the set contains `key`.
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.inner.contains_key(key)
    }

    /// Removes an element; returns whether it was present.
    pub fn remove<Q>(&mut self, key: &Q) -> bool
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.inner.remove(key).is_some()
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Iterates over the elements in arena order.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.inner.iter().map(|(k, ())| k)
    }

    /// Current number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.inner.bucket_count()
    }

    /// Number of live entries in bucket `i`.
    pub fn bucket_len(&self, i: usize) -> usize {
        self.inner.bucket_len(i)
    }

    /// The paper's bucket-collision count (Section 4.2).
    pub fn bucket_collisions(&self) -> u64 {
        self.inner.bucket_collisions()
    }
}

impl<K, H> UnorderedSet<K, H>
where
    K: Eq + AsRef<[u8]>,
    H: sepe_core::hash::HashBatch,
{
    /// Batched membership: `result[i] == self.contains(keys[i])`, with the
    /// hashing and bucket prefetching of [`UnorderedMap::get_batch`].
    pub fn contains_batch(&self, keys: &[&[u8]]) -> Vec<bool> {
        self.inner
            .get_batch(keys)
            .into_iter()
            .map(|v| v.is_some())
            .collect()
    }

    /// Batched insert; returns how many elements were newly added.
    pub fn insert_batch(&mut self, keys: Vec<K>) -> usize {
        self.inner
            .insert_batch(keys.into_iter().map(|k| (k, ())).collect())
            .into_iter()
            .filter(Option::is_none)
            .count()
    }
}

impl<K, F, G> UnorderedSet<K, GuardedHash<F, G>>
where
    K: Eq + AsRef<[u8]>,
    F: ByteHash,
    G: ByteHash,
{
    /// The drift counters of the guarded hasher.
    pub fn drift_stats(&self) -> &GuardStats {
        self.inner.drift_stats()
    }

    /// The guarded hasher's current routing mode.
    pub fn guard_mode(&self) -> GuardMode {
        self.inner.guard_mode()
    }
}

impl<K, F, G> UnorderedSet<K, GuardedHash<F, G>>
where
    K: Eq + AsRef<[u8]>,
    F: ByteHash + Clone,
    G: ByteHash + Clone,
{
    /// Degrades unconditionally and opens an incremental migration epoch.
    pub fn degrade_now(&mut self) {
        self.inner.degrade_now();
    }

    /// Degrades when drift exceeds `policy`; returns whether this call
    /// performed the transition.
    pub fn maybe_degrade(&mut self, policy: &DriftPolicy) -> bool {
        self.inner.maybe_degrade(policy)
    }
}

impl<K, H> UnorderedSet<K, H>
where
    K: Eq + AsRef<[u8]>,
    H: ByteHash,
{
    /// Moves up to `budget` elements out of the in-flight migration epoch.
    pub fn migrate(&mut self, budget: usize) {
        self.inner.migrate(budget);
    }

    /// Drains any in-flight migration epoch completely.
    pub fn finish_migration(&mut self) {
        self.inner.finish_migration();
    }

    /// Whether a migration epoch is currently in flight.
    pub fn migration_in_flight(&self) -> bool {
        self.inner.migration_in_flight()
    }

    /// Fraction of the in-flight epoch already drained (`1.0` when idle).
    pub fn migration_progress(&self) -> f64 {
        self.inner.migration_progress()
    }

    /// Opportunistic migration drain for read-heavy callers — see
    /// [`UnorderedMap::drain_on_read`](crate::UnorderedMap::drain_on_read).
    pub fn drain_on_read(&mut self) {
        self.inner.drain_on_read();
    }

    /// Read-only lookups served while a migration epoch was in flight.
    pub fn stale_reads(&self) -> u64 {
        self.inner.stale_reads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_baselines::StlHash;

    #[test]
    fn set_semantics() {
        let mut s = UnorderedSet::with_hasher(StlHash::new());
        for i in 0..2000u32 {
            assert!(s.insert(format!("{i:05}")));
        }
        for i in 0..2000u32 {
            assert!(!s.insert(format!("{i:05}")));
        }
        assert_eq!(s.len(), 2000);
        assert!(s.contains("00042"));
        assert!(!s.contains("99999"));
        assert!(s.remove("00042"));
        assert!(!s.remove("00042"));
        assert_eq!(s.len(), 1999);
        assert_eq!(s.iter().count(), 1999);
    }

    #[test]
    fn batch_ops_agree_with_scalar() {
        let mut s = UnorderedSet::with_hasher(StlHash::new());
        let keys: Vec<String> = (0..300u32).map(|i| format!("{:05}", i % 250)).collect();
        assert_eq!(s.insert_batch(keys.clone()), 250, "250 distinct keys");
        assert_eq!(s.len(), 250);
        let queries: Vec<String> = (0..400u32).map(|i| format!("{i:05}")).collect();
        let refs: Vec<&[u8]> = queries.iter().map(String::as_bytes).collect();
        for (q, got) in queries.iter().zip(s.contains_batch(&refs)) {
            assert_eq!(got, s.contains(q.as_str()), "{q}");
        }
    }
}
