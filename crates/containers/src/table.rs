//! The shared chained hash table behind all four public containers.
//!
//! Layout follows libstdc++: an array of bucket heads pointing into an
//! entry arena; each entry caches its full 64-bit hash (so rehashing never
//! re-hashes keys) and links to the next entry of its bucket. Removed slots
//! go on a free list and are reused before the arena grows.

use crate::policy::BucketPolicy;
use crate::primes::grow_bucket_count;
use sepe_core::hash::ByteHash;
use std::borrow::Borrow;

const NONE: u32 = u32::MAX;

/// Initial bucket count (the first prime of libstdc++'s table is 13 once a
/// table grows beyond its singleton state).
const INITIAL_BUCKETS: u64 = 13;

#[derive(Debug, Clone)]
struct Entry<K, V> {
    hash: u64,
    next: u32,
    kv: Option<(K, V)>,
}

/// A separate-chaining hash table with cached hashes and bucket
/// introspection. `K` must expose its bytes for hashing.
#[derive(Debug, Clone)]
pub(crate) struct RawTable<K, V, H> {
    heads: Vec<u32>,
    entries: Vec<Entry<K, V>>,
    free_head: u32,
    len: usize,
    hasher: H,
    policy: BucketPolicy,
    max_load_factor: f64,
}

impl<K, V, H> RawTable<K, V, H>
where
    K: Eq + AsRef<[u8]>,
    H: ByteHash,
{
    pub(crate) fn new(hasher: H, policy: BucketPolicy) -> Self {
        RawTable {
            heads: vec![NONE; INITIAL_BUCKETS as usize],
            entries: Vec::new(),
            free_head: NONE,
            len: 0,
            hasher,
            policy,
            max_load_factor: 1.0,
        }
    }

    pub(crate) fn hasher(&self) -> &H {
        &self.hasher
    }

    pub(crate) fn hasher_mut(&mut self) -> &mut H {
        &mut self.hasher
    }

    /// Recomputes every cached entry hash from its key and relinks the
    /// buckets. `rehash` deliberately reuses cached hashes; this is the one
    /// operation that must not, because the hash *function* itself changed
    /// (a guarded hasher degraded to its fallback, or was re-synthesized).
    pub(crate) fn rebuild_hashes(&mut self) {
        for idx in 0..self.entries.len() {
            let Some((key, _)) = &self.entries[idx].kv else {
                continue;
            };
            let h = self.hasher.hash_bytes(key.as_ref());
            self.entries[idx].hash = h;
        }
        self.rehash(self.heads.len());
    }

    pub(crate) fn policy(&self) -> BucketPolicy {
        self.policy
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn bucket_count(&self) -> usize {
        self.heads.len()
    }

    pub(crate) fn load_factor(&self) -> f64 {
        self.len as f64 / self.heads.len() as f64
    }

    pub(crate) fn max_load_factor(&self) -> f64 {
        self.max_load_factor
    }

    pub(crate) fn set_max_load_factor(&mut self, mlf: f64) {
        assert!(mlf > 0.0, "max load factor must be positive");
        self.max_load_factor = mlf;
        if self.load_factor() > mlf {
            let target = grow_bucket_count(self.heads.len() as u64, self.len, mlf);
            self.rehash(target as usize);
        }
    }

    #[inline]
    pub(crate) fn hash_of(&self, key: &[u8]) -> u64 {
        self.hasher.hash_bytes(key)
    }

    #[inline]
    fn bucket_of(&self, hash: u64) -> usize {
        self.policy.bucket_of(hash, self.heads.len() as u64) as usize
    }

    /// Issues a software prefetch for the bucket `hash` maps to: the head
    /// slot and, when already resident, the first chain entry. Batched
    /// lookups hash a whole batch first, prefetch every target bucket, then
    /// probe — by probe time the cache misses have overlapped instead of
    /// serializing.
    #[inline]
    pub(crate) fn prefetch_bucket(&self, hash: u64) {
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let bucket = self.bucket_of(hash);
            // SAFETY: prefetch has no memory effects; any address is safe.
            unsafe {
                _mm_prefetch(
                    std::ptr::addr_of!(self.heads[bucket]).cast::<i8>(),
                    _MM_HINT_T0,
                );
            }
            let at = self.heads[bucket];
            if at != NONE {
                // SAFETY: as above; `at` indexes the entry arena.
                unsafe {
                    _mm_prefetch(
                        std::ptr::addr_of!(self.entries[at as usize]).cast::<i8>(),
                        _MM_HINT_T0,
                    );
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = hash;
        }
    }

    /// [`RawTable::find`] with the hash already computed (batched lookups
    /// hash up front). Compares keys by their bytes, which agrees with `Eq`
    /// for every key type the containers accept.
    #[inline]
    pub(crate) fn find_hashed(&self, hash: u64, key_bytes: &[u8]) -> Option<u32> {
        let mut at = self.heads[self.bucket_of(hash)];
        while at != NONE {
            let e = &self.entries[at as usize];
            if e.hash == hash {
                if let Some((k, _)) = &e.kv {
                    if k.as_ref() == key_bytes {
                        return Some(at);
                    }
                }
            }
            at = e.next;
        }
        None
    }

    /// [`RawTable::insert_unique`] with the hash already computed. The
    /// caller must have computed `hash` with this table's hasher.
    pub(crate) fn insert_unique_hashed(&mut self, hash: u64, key: K, value: V) -> Option<V> {
        if let Some(idx) = self.find_hashed(hash, key.as_ref()) {
            let slot = &mut self.get_kv_mut(idx).1;
            return Some(std::mem::replace(slot, value));
        }
        self.reserve_one();
        self.link_new(hash, key, value);
        None
    }

    /// Finds the arena index of the first entry matching `key`.
    #[inline]
    pub(crate) fn find<Q>(&self, key: &Q) -> Option<u32>
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        let hash = self.hash_of(key.as_ref());
        let mut at = self.heads[self.bucket_of(hash)];
        while at != NONE {
            let e = &self.entries[at as usize];
            if e.hash == hash {
                if let Some((k, _)) = &e.kv {
                    if k.borrow() == key {
                        return Some(at);
                    }
                }
            }
            at = e.next;
        }
        None
    }

    pub(crate) fn get_kv(&self, idx: u32) -> &(K, V) {
        self.entries[idx as usize].kv.as_ref().expect("live entry")
    }

    pub(crate) fn get_kv_mut(&mut self, idx: u32) -> &mut (K, V) {
        self.entries[idx as usize].kv.as_mut().expect("live entry")
    }

    /// Inserts without checking for an existing equal key (multimap
    /// semantics).
    pub(crate) fn insert_multi(&mut self, key: K, value: V) {
        self.reserve_one();
        let hash = self.hash_of(key.as_ref());
        self.link_new(hash, key, value);
    }

    /// Map semantics: replaces the value of an existing equal key.
    pub(crate) fn insert_unique(&mut self, key: K, value: V) -> Option<V> {
        if let Some(idx) = self.find(&key) {
            let slot = &mut self.get_kv_mut(idx).1;
            return Some(std::mem::replace(slot, value));
        }
        self.insert_multi(key, value);
        None
    }

    fn reserve_one(&mut self) {
        if (self.len + 1) as f64 > self.max_load_factor * self.heads.len() as f64 {
            let target =
                grow_bucket_count(self.heads.len() as u64, self.len + 1, self.max_load_factor);
            self.rehash(target as usize);
        }
    }

    fn link_new(&mut self, hash: u64, key: K, value: V) {
        let bucket = self.bucket_of(hash);
        let idx = if self.free_head != NONE {
            let idx = self.free_head;
            self.free_head = self.entries[idx as usize].next;
            self.entries[idx as usize] = Entry {
                hash,
                next: self.heads[bucket],
                kv: Some((key, value)),
            };
            idx
        } else {
            let idx = u32::try_from(self.entries.len()).expect("table below 2^32 entries");
            self.entries.push(Entry {
                hash,
                next: self.heads[bucket],
                kv: Some((key, value)),
            });
            idx
        };
        self.heads[bucket] = idx;
        self.len += 1;
    }

    /// Removes the first entry matching `key`, returning its pair.
    pub(crate) fn remove_one<Q>(&mut self, key: &Q) -> Option<(K, V)>
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        let hash = self.hash_of(key.as_ref());
        let bucket = self.bucket_of(hash);
        let mut prev = NONE;
        let mut at = self.heads[bucket];
        while at != NONE {
            let matches = {
                let e = &self.entries[at as usize];
                e.hash == hash && e.kv.as_ref().is_some_and(|(k, _)| k.borrow() == key)
            };
            if matches {
                let next = self.entries[at as usize].next;
                if prev == NONE {
                    self.heads[bucket] = next;
                } else {
                    self.entries[prev as usize].next = next;
                }
                let kv = self.entries[at as usize].kv.take().expect("live entry");
                self.entries[at as usize].next = self.free_head;
                self.free_head = at;
                self.len -= 1;
                return Some(kv);
            }
            prev = at;
            at = self.entries[at as usize].next;
        }
        None
    }

    /// Removes every entry matching `key` (multimap `erase(key)`), returning
    /// how many were removed.
    pub(crate) fn remove_all<Q>(&mut self, key: &Q) -> usize
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        let mut removed = 0;
        while self.remove_one(key).is_some() {
            removed += 1;
        }
        removed
    }

    /// Number of live entries equal to `key`.
    pub(crate) fn count<Q>(&self, key: &Q) -> usize
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        let hash = self.hash_of(key.as_ref());
        let mut at = self.heads[self.bucket_of(hash)];
        let mut n = 0;
        while at != NONE {
            let e = &self.entries[at as usize];
            if e.hash == hash && e.kv.as_ref().is_some_and(|(k, _)| k.borrow() == key) {
                n += 1;
            }
            at = e.next;
        }
        n
    }

    pub(crate) fn clear(&mut self) {
        self.heads.iter_mut().for_each(|h| *h = NONE);
        self.entries.clear();
        self.free_head = NONE;
        self.len = 0;
    }

    pub(crate) fn rehash(&mut self, bucket_count: usize) {
        let bucket_count = bucket_count.max(1);
        self.heads = vec![NONE; bucket_count];
        let policy = self.policy;
        for idx in 0..self.entries.len() {
            if self.entries[idx].kv.is_none() {
                continue;
            }
            let bucket = policy.bucket_of(self.entries[idx].hash, bucket_count as u64) as usize;
            self.entries[idx].next = self.heads[bucket];
            self.heads[bucket] = idx as u32;
        }
        // Rebuild the free list over dead slots.
        self.free_head = NONE;
        for idx in (0..self.entries.len()).rev() {
            if self.entries[idx].kv.is_none() {
                self.entries[idx].next = self.free_head;
                self.free_head = idx as u32;
            }
        }
    }

    /// Number of live entries in bucket `i`.
    pub(crate) fn bucket_len(&self, i: usize) -> usize {
        let mut at = self.heads[i];
        let mut n = 0;
        while at != NONE {
            let e = &self.entries[at as usize];
            if e.kv.is_some() {
                n += 1;
            }
            at = e.next;
        }
        n
    }

    /// Σ over buckets of `max(0, bucket_len - 1)` — the bucket-collision
    /// count of Section 4.2 ("iterate over the buckets logging the number
    /// of keys inside the same bucket").
    pub(crate) fn bucket_collisions(&self) -> u64 {
        (0..self.heads.len())
            .map(|i| self.bucket_len(i).saturating_sub(1) as u64)
            .sum()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries
            .iter()
            .filter_map(|e| e.kv.as_ref().map(|(k, v)| (k, v)))
    }
}
