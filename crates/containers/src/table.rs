//! The shared chained hash table behind all four public containers.
//!
//! Layout follows libstdc++: an array of bucket heads pointing into an
//! entry arena; each entry caches its full 64-bit hash (so rehashing never
//! re-hashes keys) and links to the next entry of its bucket. Removed slots
//! go on a free list and are reused before the arena grows.
//!
//! When the hash *function* changes (a guarded hasher degrades or
//! resynthesizes), the table does not pause the world to rebuild: it opens
//! a migration epoch. The superseded bucket array is set aside, lookups
//! consult both epochs, and every mutating operation drains a bounded
//! number of entries from the old chains into the new ones — the amortized
//! rehash of Redis and hashbrown, applied to a change of hash function
//! rather than of capacity.

use crate::policy::BucketPolicy;
use crate::primes::grow_bucket_count;
use sepe_core::hash::ByteHash;
use sepe_obs::{Counter, Histogram, Registry, RegistryError};
use std::borrow::Borrow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const NONE: u32 = u32::MAX;

/// Initial bucket count (the first prime of libstdc++'s table is 13 once a
/// table grows beyond its singleton state).
const INITIAL_BUCKETS: u64 = 13;

/// Entries drained from the old epoch per mutating operation while a
/// migration is in flight. The bound keeps the latency of any single
/// `insert`/`remove` O(`MIGRATE_STRIDE`) instead of O(len), and a table
/// under write traffic fully drains after `len / MIGRATE_STRIDE` ops.
pub(crate) const MIGRATE_STRIDE: usize = 16;

/// Entries drained per *lookup* that reaches the table with mutable access
/// (`get_mut`, or a sharded read that wins its shard's write lock). Smaller
/// than [`MIGRATE_STRIDE`] so read latency stays flat, but enough that a
/// read-heavy table converges instead of paying dual-epoch probes forever.
pub(crate) const LOOKUP_MIGRATE_STRIDE: usize = 2;

/// Read-only lookups observed while a migration was in flight before the
/// epoch is declared *stale*: the next operation with mutable access stops
/// amortizing and drains it outright. Bounds the dual-epoch tax of a
/// read-dominated workload to one bounded burst instead of forever.
pub(crate) const STALE_READ_LIMIT: u64 = 1024;

/// Interior-mutable counter of lookups served while an epoch was in
/// flight. `&self` lookups cannot drain (draining relinks chains), but
/// they *can* record starvation so the next `&mut` caller knows the old
/// epoch has overstayed. Relaxed ordering suffices: the count only gates a
/// heuristic. Cloning a table snapshots the current value.
#[derive(Debug, Default)]
struct StaleReads(AtomicU64);

impl StaleReads {
    #[inline]
    fn record(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Clone for StaleReads {
    fn clone(&self) -> Self {
        StaleReads(AtomicU64::new(self.get()))
    }
}

/// Interior-mutable observability channel of one table: probe-length
/// distribution, migration-epoch accounting, and batch-kernel usage.
/// Handles are shared (`Arc`) so a [`Registry`] export reads live values
/// without the hot path paying registry indirection; every bump is gated
/// on [`sepe_obs::enabled`], so `obs`-off builds compile the channel away
/// at the call sites.
#[derive(Debug)]
pub(crate) struct TableObs {
    /// Entries examined per lookup, across both epochs.
    pub(crate) probe_len: Arc<Histogram>,
    /// Entries drained out of migration epochs (monotone lifetime total).
    pub(crate) drain_ops: Arc<Counter>,
    /// Migration epochs opened.
    pub(crate) epochs_opened: Arc<Counter>,
    /// Migration epochs retired — fully drained, or discarded by `clear`.
    pub(crate) epochs_finished: Arc<Counter>,
    /// Lookups that probed a still-open epoch (monotone, unlike the
    /// resettable starvation counter in [`StaleReads`]).
    pub(crate) stale_probes: Arc<Counter>,
    /// Batch-kernel chunks hashed (`get_batch` / `insert_batch`).
    pub(crate) batch_chunks: Arc<Counter>,
    /// Keys that went through those chunks.
    pub(crate) batch_keys: Arc<Counter>,
    /// Upward rungs taken on the escalation ladder (degrade, keyed,
    /// rotation all count — every call to `escalate_now` that changed
    /// routing).
    pub(crate) escalations: Arc<Counter>,
    /// Quiet-window de-escalations back to the specialized hasher.
    pub(crate) deescalations: Arc<Counter>,
    /// Seed rotations on the keyed rung (a subset of `escalations`).
    pub(crate) seed_rotations: Arc<Counter>,
    /// Last sampled probe-length p99, published by the storm detector.
    pub(crate) probe_tail: Arc<AtomicU64>,
}

impl Default for TableObs {
    fn default() -> Self {
        TableObs {
            probe_len: Arc::new(Histogram::new()),
            drain_ops: Arc::new(Counter::new()),
            epochs_opened: Arc::new(Counter::new()),
            epochs_finished: Arc::new(Counter::new()),
            stale_probes: Arc::new(Counter::new()),
            batch_chunks: Arc::new(Counter::new()),
            batch_keys: Arc::new(Counter::new()),
            escalations: Arc::new(Counter::new()),
            deescalations: Arc::new(Counter::new()),
            seed_rotations: Arc::new(Counter::new()),
            probe_tail: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Clone for TableObs {
    /// A cloned table gets a *fresh* channel: twins and snapshots must
    /// not bump the counters an exported registry reads from the
    /// original.
    fn clone(&self) -> Self {
        TableObs::default()
    }
}

impl TableObs {
    /// Registers every family under `labels`. Ids follow the repo scheme:
    /// `table_probe_len`, `table_drain_ops`, `table_epochs_opened`,
    /// `table_epochs_finished`, `table_stale_probes`,
    /// `table_batch_chunks`, `table_batch_keys`.
    pub(crate) fn export(
        &self,
        registry: &Registry,
        labels: &[(&str, &str)],
    ) -> Result<(), RegistryError> {
        registry.register_histogram("table_probe_len", labels, self.probe_len.clone())?;
        registry.register_counter("table_drain_ops", labels, self.drain_ops.clone())?;
        registry.register_counter("table_epochs_opened", labels, self.epochs_opened.clone())?;
        registry.register_counter(
            "table_epochs_finished",
            labels,
            self.epochs_finished.clone(),
        )?;
        registry.register_counter("table_stale_probes", labels, self.stale_probes.clone())?;
        registry.register_counter("table_batch_chunks", labels, self.batch_chunks.clone())?;
        registry.register_counter("table_batch_keys", labels, self.batch_keys.clone())?;
        registry.register_counter("table_escalations", labels, self.escalations.clone())?;
        registry.register_counter("table_deescalations", labels, self.deescalations.clone())?;
        registry.register_counter("table_seed_rotations", labels, self.seed_rotations.clone())?;
        // The probe tail is a point-in-time sample, not a monotone count:
        // exported as a gauge reading the latest detector snapshot.
        let tail = self.probe_tail.clone();
        registry.export_gauge("table_probe_tail", labels, move || {
            tail.load(Ordering::Relaxed)
        })?;
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct Entry<K, V> {
    hash: u64,
    next: u32,
    kv: Option<(K, V)>,
}

/// One in-flight migration epoch: the superseded bucket array plus the two
/// frozen hashers needed to probe it and to drain it.
///
/// Every arena entry is linked in exactly one epoch's chains. Entries in
/// `old_heads` still carry their old-epoch cached hash; draining recomputes
/// the hash with `rehasher` and relinks into the live bucket array.
#[derive(Debug, Clone)]
struct Migration<H> {
    /// The hash function of the superseded epoch, pinned so lookups can
    /// locate entries still filed under the old plan.
    old_hasher: H,
    /// A counter-silent copy of the live hash function, so draining does
    /// not pollute drift accounting (an amortized migration must leave the
    /// same observable counters as a stop-the-world rebuild).
    rehasher: H,
    old_heads: Vec<u32>,
    /// Live entries still linked in `old_heads`.
    old_len: usize,
    /// `old_len` when the epoch opened, for progress reporting.
    initial: usize,
    /// Next old bucket the drain cursor will inspect.
    cursor: usize,
}

/// A separate-chaining hash table with cached hashes, bucket introspection
/// and incremental hash-function migration. `K` must expose its bytes for
/// hashing.
#[derive(Debug, Clone)]
pub(crate) struct RawTable<K, V, H> {
    heads: Vec<u32>,
    entries: Vec<Entry<K, V>>,
    free_head: u32,
    len: usize,
    hasher: H,
    policy: BucketPolicy,
    max_load_factor: f64,
    migration: Option<Migration<H>>,
    stale_reads: StaleReads,
    obs: TableObs,
}

impl<K, V, H> RawTable<K, V, H>
where
    K: Eq + AsRef<[u8]>,
    H: ByteHash,
{
    pub(crate) fn new(hasher: H, policy: BucketPolicy) -> Self {
        RawTable {
            heads: vec![NONE; INITIAL_BUCKETS as usize],
            entries: Vec::new(),
            free_head: NONE,
            len: 0,
            hasher,
            policy,
            max_load_factor: 1.0,
            migration: None,
            stale_reads: StaleReads::default(),
            obs: TableObs::default(),
        }
    }

    pub(crate) fn hasher(&self) -> &H {
        &self.hasher
    }

    /// The table's observability channel.
    pub(crate) fn obs(&self) -> &TableObs {
        &self.obs
    }

    pub(crate) fn hasher_mut(&mut self) -> &mut H {
        &mut self.hasher
    }

    /// Opens a migration epoch: the current bucket array becomes the old
    /// epoch (probed with `old_hasher`), a fresh one takes live traffic,
    /// and each subsequent mutating operation drains up to
    /// [`MIGRATE_STRIDE`] entries by rehashing them with `rehasher`.
    ///
    /// `old_hasher` must reproduce the hashes the stored entries were filed
    /// under; `rehasher` must reproduce the live hasher's values without
    /// observable side effects (see `GuardedHash::epoch_frozen`). An epoch
    /// already in flight is drained first, with *its* stored rehasher, so
    /// stacked degrade/resynthesize transitions never mix plans.
    pub(crate) fn begin_migration(&mut self, old_hasher: H, rehasher: H) {
        self.finish_migration();
        if self.len == 0 {
            return;
        }
        if sepe_obs::enabled() {
            self.obs.epochs_opened.inc();
        }
        let buckets = self.heads.len();
        let old_heads = std::mem::replace(&mut self.heads, vec![NONE; buckets]);
        self.migration = Some(Migration {
            old_hasher,
            rehasher,
            old_heads,
            old_len: self.len,
            initial: self.len,
            cursor: 0,
        });
    }

    /// Drains up to `budget` entries from the old epoch into the live one.
    pub(crate) fn migrate(&mut self, budget: usize) {
        let Some(mut mig) = self.migration.take() else {
            return;
        };
        let mut moved = 0usize;
        while moved < budget && mig.old_len > 0 {
            while mig.cursor < mig.old_heads.len() && mig.old_heads[mig.cursor] == NONE {
                mig.cursor += 1;
            }
            if mig.cursor >= mig.old_heads.len() {
                break;
            }
            let idx = mig.old_heads[mig.cursor];
            mig.old_heads[mig.cursor] = self.entries[idx as usize].next;
            let hash = {
                let (key, _) = self.entries[idx as usize].kv.as_ref().expect("live entry");
                mig.rehasher.hash_bytes(key.as_ref())
            };
            let bucket = self.policy.bucket_of(hash, self.heads.len() as u64) as usize;
            let e = &mut self.entries[idx as usize];
            e.hash = hash;
            e.next = self.heads[bucket];
            self.heads[bucket] = idx;
            mig.old_len -= 1;
            moved += 1;
        }
        if sepe_obs::enabled() && moved > 0 {
            self.obs.drain_ops.add(moved as u64);
        }
        if mig.old_len > 0 {
            self.migration = Some(mig);
        } else {
            self.stale_reads.reset();
            if sepe_obs::enabled() {
                self.obs.epochs_finished.inc();
            }
        }
    }

    /// Drains the old epoch completely; afterwards
    /// [`RawTable::migration_in_flight`] is false.
    pub(crate) fn finish_migration(&mut self) {
        self.migrate(usize::MAX);
        debug_assert!(self.migration.is_none());
    }

    /// Opportunistic drain for lookup-shaped callers that happen to hold
    /// mutable access: a no-op when no epoch is in flight; a full
    /// [`RawTable::finish_migration`] once [`STALE_READ_LIMIT`] read-only
    /// lookups have probed both epochs (the migration is starving — no
    /// mutating traffic is coming to amortize it); a bounded
    /// [`LOOKUP_MIGRATE_STRIDE`]-entry drain otherwise.
    pub(crate) fn drain_on_read(&mut self) {
        if self.migration.is_none() {
            return;
        }
        if self.stale_reads.get() >= STALE_READ_LIMIT {
            self.finish_migration();
        } else {
            self.migrate(LOOKUP_MIGRATE_STRIDE);
        }
    }

    /// Read-only lookups that probed a still-open epoch (0 when none is in
    /// flight — the counter resets when the epoch drains).
    pub(crate) fn stale_reads(&self) -> u64 {
        self.stale_reads.get()
    }

    /// Whether an epoch is currently being drained.
    pub(crate) fn migration_in_flight(&self) -> bool {
        self.migration.is_some()
    }

    /// Fraction of the opened epoch already drained: 1.0 when no migration
    /// is in flight, monotone non-decreasing while one is.
    pub(crate) fn migration_progress(&self) -> f64 {
        match &self.migration {
            None => 1.0,
            Some(m) => 1.0 - m.old_len as f64 / m.initial.max(1) as f64,
        }
    }

    pub(crate) fn policy(&self) -> BucketPolicy {
        self.policy
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn bucket_count(&self) -> usize {
        self.heads.len()
    }

    pub(crate) fn load_factor(&self) -> f64 {
        self.len as f64 / self.heads.len() as f64
    }

    pub(crate) fn max_load_factor(&self) -> f64 {
        self.max_load_factor
    }

    pub(crate) fn set_max_load_factor(&mut self, mlf: f64) {
        assert!(mlf > 0.0, "max load factor must be positive");
        self.max_load_factor = mlf;
        if self.load_factor() > mlf {
            let target = grow_bucket_count(self.heads.len() as u64, self.len, mlf);
            self.rehash(target as usize);
        }
    }

    #[inline]
    pub(crate) fn hash_of(&self, key: &[u8]) -> u64 {
        self.hasher.hash_bytes(key)
    }

    #[inline]
    fn bucket_of(&self, hash: u64) -> usize {
        self.policy.bucket_of(hash, self.heads.len() as u64) as usize
    }

    /// Issues a software prefetch for the bucket `hash` maps to: the head
    /// slot and, when already resident, the first chain entry. Batched
    /// lookups hash a whole batch first, prefetch every target bucket, then
    /// probe — by probe time the cache misses have overlapped instead of
    /// serializing.
    #[inline]
    pub(crate) fn prefetch_bucket(&self, hash: u64) {
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let bucket = self.bucket_of(hash);
            // SAFETY: prefetch has no memory effects; any address is safe.
            unsafe {
                _mm_prefetch(
                    std::ptr::addr_of!(self.heads[bucket]).cast::<i8>(),
                    _MM_HINT_T0,
                );
            }
            let at = self.heads[bucket];
            if at != NONE {
                // SAFETY: as above; `at` indexes the entry arena.
                unsafe {
                    _mm_prefetch(
                        std::ptr::addr_of!(self.entries[at as usize]).cast::<i8>(),
                        _MM_HINT_T0,
                    );
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = hash;
        }
    }

    /// Walks the chain starting at `at` for an entry with `hash` whose key
    /// bytes equal `key_bytes`. `probes` counts the entries examined.
    #[inline]
    fn find_in_chain(
        &self,
        mut at: u32,
        hash: u64,
        key_bytes: &[u8],
        probes: &mut u64,
    ) -> Option<u32> {
        while at != NONE {
            *probes += 1;
            let e = &self.entries[at as usize];
            if e.hash == hash {
                if let Some((k, _)) = &e.kv {
                    if k.as_ref() == key_bytes {
                        return Some(at);
                    }
                }
            }
            at = e.next;
        }
        None
    }

    /// The old-epoch chain head for `key_bytes` and the old-epoch hash it
    /// was filed under, when a migration is in flight.
    #[inline]
    fn old_epoch_probe(&self, key_bytes: &[u8]) -> Option<(u32, u64)> {
        let mig = self.migration.as_ref()?;
        let old_hash = mig.old_hasher.hash_bytes(key_bytes);
        let bucket = self.policy.bucket_of(old_hash, mig.old_heads.len() as u64) as usize;
        Some((mig.old_heads[bucket], old_hash))
    }

    /// [`RawTable::find`] with the hash already computed (batched lookups
    /// hash up front). Compares keys by their bytes, which agrees with `Eq`
    /// for every key type the containers accept. While a migration is in
    /// flight, a miss in the live epoch falls through to the old one.
    #[inline]
    pub(crate) fn find_hashed(&self, hash: u64, key_bytes: &[u8]) -> Option<u32> {
        if self.migration.is_some() {
            self.stale_reads.record();
            if sepe_obs::enabled() {
                self.obs.stale_probes.inc();
            }
        }
        let mut probes = 0u64;
        let found = self
            .find_in_chain(
                self.heads[self.bucket_of(hash)],
                hash,
                key_bytes,
                &mut probes,
            )
            .or_else(|| {
                let (head, old_hash) = self.old_epoch_probe(key_bytes)?;
                self.find_in_chain(head, old_hash, key_bytes, &mut probes)
            });
        if sepe_obs::enabled() {
            self.obs.probe_len.observe(probes);
        }
        found
    }

    /// [`RawTable::insert_unique`] with the hash already computed. The
    /// caller must have computed `hash` with this table's hasher.
    pub(crate) fn insert_unique_hashed(&mut self, hash: u64, key: K, value: V) -> Option<V> {
        self.migrate(MIGRATE_STRIDE);
        if let Some(idx) = self.find_hashed(hash, key.as_ref()) {
            let slot = &mut self.get_kv_mut(idx).1;
            return Some(std::mem::replace(slot, value));
        }
        self.reserve_one();
        self.link_new(hash, key, value);
        None
    }

    /// Finds the arena index of the first entry matching `key`, in either
    /// epoch. Keys compare by their bytes, which agrees with `Eq` for every
    /// key type the containers accept.
    #[inline]
    pub(crate) fn find<Q>(&self, key: &Q) -> Option<u32>
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        let bytes = key.as_ref();
        self.find_hashed(self.hash_of(bytes), bytes)
    }

    pub(crate) fn get_kv(&self, idx: u32) -> &(K, V) {
        self.entries[idx as usize].kv.as_ref().expect("live entry")
    }

    pub(crate) fn get_kv_mut(&mut self, idx: u32) -> &mut (K, V) {
        self.entries[idx as usize].kv.as_mut().expect("live entry")
    }

    /// Inserts without checking for an existing equal key (multimap
    /// semantics).
    pub(crate) fn insert_multi(&mut self, key: K, value: V) {
        self.migrate(MIGRATE_STRIDE);
        self.reserve_one();
        let hash = self.hash_of(key.as_ref());
        self.link_new(hash, key, value);
    }

    /// Map semantics: replaces the value of an existing equal key.
    pub(crate) fn insert_unique(&mut self, key: K, value: V) -> Option<V> {
        self.migrate(MIGRATE_STRIDE);
        if let Some(idx) = self.find(&key) {
            let slot = &mut self.get_kv_mut(idx).1;
            return Some(std::mem::replace(slot, value));
        }
        self.insert_multi(key, value);
        None
    }

    fn reserve_one(&mut self) {
        if (self.len + 1) as f64 > self.max_load_factor * self.heads.len() as f64 {
            let target =
                grow_bucket_count(self.heads.len() as u64, self.len + 1, self.max_load_factor);
            self.rehash(target as usize);
        }
    }

    fn link_new(&mut self, hash: u64, key: K, value: V) {
        let bucket = self.bucket_of(hash);
        let idx = if self.free_head != NONE {
            let idx = self.free_head;
            self.free_head = self.entries[idx as usize].next;
            self.entries[idx as usize] = Entry {
                hash,
                next: self.heads[bucket],
                kv: Some((key, value)),
            };
            idx
        } else {
            let idx = u32::try_from(self.entries.len()).expect("table below 2^32 entries");
            self.entries.push(Entry {
                hash,
                next: self.heads[bucket],
                kv: Some((key, value)),
            });
            idx
        };
        self.heads[bucket] = idx;
        self.len += 1;
    }

    /// Removes the first entry matching `key`, returning its pair. Probes
    /// the live epoch, then (during a migration) the old one.
    pub(crate) fn remove_one<Q>(&mut self, key: &Q) -> Option<(K, V)>
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.migrate(MIGRATE_STRIDE);
        let hash = self.hash_of(key.as_ref());
        let bucket = self.bucket_of(hash);
        let mut prev = NONE;
        let mut at = self.heads[bucket];
        while at != NONE {
            let matches = {
                let e = &self.entries[at as usize];
                e.hash == hash && e.kv.as_ref().is_some_and(|(k, _)| k.borrow() == key)
            };
            if matches {
                let next = self.entries[at as usize].next;
                if prev == NONE {
                    self.heads[bucket] = next;
                } else {
                    self.entries[prev as usize].next = next;
                }
                return Some(self.free_entry(at));
            }
            prev = at;
            at = self.entries[at as usize].next;
        }
        self.remove_one_old_epoch(key)
    }

    /// Unlinks `at` into the free list and returns its pair.
    fn free_entry(&mut self, at: u32) -> (K, V) {
        let kv = self.entries[at as usize].kv.take().expect("live entry");
        self.entries[at as usize].next = self.free_head;
        self.free_head = at;
        self.len -= 1;
        kv
    }

    /// The old-epoch leg of [`RawTable::remove_one`].
    fn remove_one_old_epoch<Q>(&mut self, key: &Q) -> Option<(K, V)>
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        let mut mig = self.migration.take()?;
        let old_hash = mig.old_hasher.hash_bytes(key.as_ref());
        let bucket = self.policy.bucket_of(old_hash, mig.old_heads.len() as u64) as usize;
        let mut prev = NONE;
        let mut at = mig.old_heads[bucket];
        let mut found = None;
        while at != NONE {
            let matches = {
                let e = &self.entries[at as usize];
                e.hash == old_hash && e.kv.as_ref().is_some_and(|(k, _)| k.borrow() == key)
            };
            if matches {
                let next = self.entries[at as usize].next;
                if prev == NONE {
                    mig.old_heads[bucket] = next;
                } else {
                    self.entries[prev as usize].next = next;
                }
                mig.old_len -= 1;
                found = Some(self.free_entry(at));
                break;
            }
            prev = at;
            at = self.entries[at as usize].next;
        }
        if mig.old_len > 0 {
            self.migration = Some(mig);
        } else {
            self.stale_reads.reset();
            if sepe_obs::enabled() {
                self.obs.epochs_finished.inc();
            }
        }
        found
    }

    /// Removes every entry matching `key` (multimap `erase(key)`), returning
    /// how many were removed.
    pub(crate) fn remove_all<Q>(&mut self, key: &Q) -> usize
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        let mut removed = 0;
        while self.remove_one(key).is_some() {
            removed += 1;
        }
        removed
    }

    /// Counts chain entries equal to `key` under `hash` starting at `at`.
    fn count_in_chain<Q>(&self, mut at: u32, hash: u64, key: &Q) -> usize
    where
        Q: ?Sized + Eq,
        K: Borrow<Q>,
    {
        let mut n = 0;
        while at != NONE {
            let e = &self.entries[at as usize];
            if e.hash == hash && e.kv.as_ref().is_some_and(|(k, _)| k.borrow() == key) {
                n += 1;
            }
            at = e.next;
        }
        n
    }

    /// Number of live entries equal to `key`, summed over both epochs.
    pub(crate) fn count<Q>(&self, key: &Q) -> usize
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        let hash = self.hash_of(key.as_ref());
        let mut n = self.count_in_chain(self.heads[self.bucket_of(hash)], hash, key);
        if let Some((head, old_hash)) = self.old_epoch_probe(key.as_ref()) {
            n += self.count_in_chain(head, old_hash, key);
        }
        n
    }

    pub(crate) fn clear(&mut self) {
        self.heads.iter_mut().for_each(|h| *h = NONE);
        self.entries.clear();
        self.free_head = NONE;
        self.len = 0;
        // A discarded epoch still counts as retired, so opened/finished
        // stay balanced for metric cross-checks.
        if sepe_obs::enabled() && self.migration.is_some() {
            self.obs.epochs_finished.inc();
        }
        self.migration = None;
        self.stale_reads.reset();
    }

    pub(crate) fn rehash(&mut self, bucket_count: usize) {
        let bucket_count = bucket_count.max(1);
        if self.migration.is_some() {
            // Old-epoch entries keep their old-plan hashes, so a full-arena
            // relink would file them in the wrong buckets of the wrong
            // epoch. Resize the live epoch only: collect its members by
            // walking the live chains, then relink just those. The free
            // list is untouched (only removals mutate it).
            let mut members = Vec::with_capacity(self.len);
            for &head in &self.heads {
                let mut at = head;
                while at != NONE {
                    members.push(at);
                    at = self.entries[at as usize].next;
                }
            }
            self.heads = vec![NONE; bucket_count];
            let policy = self.policy;
            for &idx in members.iter().rev() {
                let bucket =
                    policy.bucket_of(self.entries[idx as usize].hash, bucket_count as u64) as usize;
                self.entries[idx as usize].next = self.heads[bucket];
                self.heads[bucket] = idx;
            }
            return;
        }
        self.heads = vec![NONE; bucket_count];
        let policy = self.policy;
        for idx in 0..self.entries.len() {
            if self.entries[idx].kv.is_none() {
                continue;
            }
            let bucket = policy.bucket_of(self.entries[idx].hash, bucket_count as u64) as usize;
            self.entries[idx].next = self.heads[bucket];
            self.heads[bucket] = idx as u32;
        }
        // Rebuild the free list over dead slots.
        self.free_head = NONE;
        for idx in (0..self.entries.len()).rev() {
            if self.entries[idx].kv.is_none() {
                self.entries[idx].next = self.free_head;
                self.free_head = idx as u32;
            }
        }
    }

    /// Number of live entries in bucket `i` of the *live* epoch (entries
    /// still awaiting migration are not counted — finish the migration
    /// first for whole-table bucket statistics).
    pub(crate) fn bucket_len(&self, i: usize) -> usize {
        let mut at = self.heads[i];
        let mut n = 0;
        while at != NONE {
            let e = &self.entries[at as usize];
            if e.kv.is_some() {
                n += 1;
            }
            at = e.next;
        }
        n
    }

    /// Length of the longest live bucket chain — the bucket-occupancy
    /// skew signal of the collision-storm detector. A flood lands its
    /// crafted keys in the live epoch (they are fresh inserts), so
    /// ignoring a draining old epoch keeps the signal honest during an
    /// escalation migration.
    pub(crate) fn max_bucket_len(&self) -> usize {
        (0..self.heads.len())
            .map(|i| self.bucket_len(i))
            .max()
            .unwrap_or(0)
    }

    /// Σ over buckets of `max(0, bucket_len - 1)` — the bucket-collision
    /// count of Section 4.2 ("iterate over the buckets logging the number
    /// of keys inside the same bucket").
    pub(crate) fn bucket_collisions(&self) -> u64 {
        (0..self.heads.len())
            .map(|i| self.bucket_len(i).saturating_sub(1) as u64)
            .sum()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries
            .iter()
            .filter_map(|e| e.kv.as_ref().map(|(k, v)| (k, v)))
    }
}
