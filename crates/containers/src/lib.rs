//! # sepe-containers
//!
//! Bucketed unordered containers modeled on libstdc++'s `std::unordered_*`:
//! separate chaining, prime bucket counts, and `hash % bucket_count`
//! indexing. The paper's evaluation needs three things `std::collections`
//! hides, so these containers expose them:
//!
//! * **bucket introspection** — Section 4.2 counts *bucket collisions* by
//!   iterating over buckets;
//! * **pluggable index policies** — RQ7 (Figures 17/18) studies
//!   "low-mixing" containers that index buckets with only the most
//!   significant hash bits ([`BucketPolicy::HighBits`]);
//! * **multi variants** — RQ9 (Figure 20) compares `unordered_map/set`
//!   against their `multimap/multiset` counterparts.
//!
//! All four containers hash through [`sepe_core::ByteHash`], the same
//! interface the synthesized and baseline functions implement.
//!
//! ## Examples
//!
//! ```
//! use sepe_containers::UnorderedMap;
//! use sepe_core::hash::SynthesizedHash;
//! use sepe_core::synth::Family;
//!
//! let hash = SynthesizedHash::from_regex(r"\d{3}-\d{2}-\d{4}", Family::Pext)?;
//! let mut map = UnorderedMap::with_hasher(hash);
//! map.insert("123-45-6789".to_owned(), "alice");
//! assert_eq!(map.get("123-45-6789"), Some(&"alice"));
//! assert!(map.bucket_count() >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod direct;
mod map;
mod multimap;
mod multiset;
pub mod policy;
pub mod primes;
mod set;
pub mod sharded;
mod table;

pub use direct::DirectMap;
pub use map::UnorderedMap;
pub use multimap::UnorderedMultiMap;
pub use multiset::UnorderedMultiSet;
pub use policy::{AttackPolicy, AttackSignals, BucketPolicy, DriftPolicy, ResynthPolicy};
pub use set::UnorderedSet;
pub use sharded::{ShardedMap, ShardedSet};
