//! Bucket index policies.
//!
//! libstdc++ indexes buckets with `hash % bucket_count`, which consumes the
//! *entire* hash value — the reason the paper's low-dispersion synthesized
//! functions still spread keys across buckets (Example 4.1). RQ7 stresses
//! the opposite design: a "low-mixing" container that uses only the most
//! significant bits, under which Naive/OffXor degrade while Pext/Aes
//! resist (Figures 17 and 18).

/// How a 64-bit hash value selects a bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BucketPolicy {
    /// `hash % bucket_count` — the libstdc++ policy.
    #[default]
    Modulo,
    /// `(hash >> discard_low) % bucket_count` — a low-mixing container that
    /// discards the `discard_low` least significant bits and indexes with
    /// the remaining most significant ones (Figure 17's X axis).
    HighBits {
        /// Number of least-significant bits discarded before indexing.
        discard_low: u32,
    },
}

impl BucketPolicy {
    /// The bucket for `hash` among `bucket_count` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_count` is zero.
    #[inline]
    #[must_use]
    pub fn bucket_of(self, hash: u64, bucket_count: u64) -> u64 {
        assert!(bucket_count > 0, "bucket_count must be non-zero");
        match self {
            BucketPolicy::Modulo => hash % bucket_count,
            BucketPolicy::HighBits { discard_low } => (hash >> discard_low.min(63)) % bucket_count,
        }
    }
}

/// When a guarded container should give up on its specialized hash.
///
/// A [`sepe_core::GuardedHash`] counts how many observed keys fell outside
/// the trained format. The container judges the off-format fraction over a
/// *sliding window* of the most recent `window` observations (lifetime
/// counters would let a long clean prefix dilute a later drift burst
/// forever): once the windowed fraction crosses `threshold` — after at
/// least `min_samples` observations in the window, so a handful of stray
/// keys cannot flip a fresh table — the container degrades, switching every
/// key to the fallback hasher and migrating its stored hashes.
///
/// # Examples
///
/// ```
/// use sepe_containers::DriftPolicy;
///
/// let policy = DriftPolicy::default();
/// assert!(!policy.should_degrade(1, 10));       // below min_samples
/// assert!(policy.should_degrade(30, 100));      // 30% drift
/// assert!(!policy.should_degrade(2, 100));      // 2% drift tolerated
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftPolicy {
    /// Off-format fraction above which the container degrades.
    pub threshold: f64,
    /// Minimum number of observed keys before the threshold applies.
    pub min_samples: u64,
    /// Observation-window length: once a window accumulates this many keys
    /// without tripping the threshold, the counters snapshot and the next
    /// window starts fresh.
    pub window: u64,
}

impl Default for DriftPolicy {
    /// Degrade at 10% off-format traffic, judged over at least 64 keys in
    /// sliding windows of 1024.
    fn default() -> Self {
        DriftPolicy {
            threshold: 0.10,
            min_samples: 64,
            window: 1024,
        }
    }
}

impl DriftPolicy {
    /// Creates a policy with `threshold` and the default sample floor.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= threshold <= 1.0`.
    #[must_use]
    pub fn with_threshold(threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "drift threshold must be a fraction, got {threshold}"
        );
        DriftPolicy {
            threshold,
            ..DriftPolicy::default()
        }
    }

    /// Whether `off_format` failures out of `total` observed keys warrant
    /// degradation. Callers pass the counts of the *current window*
    /// ([`sepe_core::guard::GuardStats::window_counts`]); lifetime totals
    /// would reintroduce the dilution bug this policy exists to avoid.
    #[must_use]
    pub fn should_degrade(&self, off_format: u64, total: u64) -> bool {
        total >= self.min_samples.max(1) && off_format as f64 / total as f64 > self.threshold
    }

    /// Whether a window holding `total` observations is full and should be
    /// snapshot before the next one starts.
    #[must_use]
    pub fn window_full(&self, total: u64) -> bool {
        total >= self.window.max(self.min_samples).max(1)
    }
}

/// Tunables for *supervised* background resynthesis.
///
/// Where [`DriftPolicy`] decides *when* a container gives up on its
/// specialized hash, `ResynthPolicy` decides how hard the background
/// supervisor tries to win it back: how long one synthesis attempt may
/// run, how retries back off, and how many consecutive failures trip the
/// per-hasher circuit breaker so the container settles permanently on the
/// guarded fallback. [`ResynthPolicy::config`] converts the policy into
/// the [`sepe_core::supervisor::SupervisorConfig`] a
/// [`sepe_core::ResynthSupervisor`] is built from.
///
/// # Examples
///
/// ```
/// use sepe_containers::ResynthPolicy;
/// use sepe_core::{ResynthSupervisor, SystemClock};
/// use std::sync::Arc;
///
/// let policy = ResynthPolicy::default();
/// let supervisor = ResynthSupervisor::new(policy.config(), Arc::new(SystemClock::new()));
/// assert!(!supervisor.breaker_open(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResynthPolicy {
    /// Cooperative deadline for one synthesis attempt, in milliseconds.
    pub deadline_ms: u64,
    /// First retry delay; later retries double it up to `backoff_cap_ms`.
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff delay.
    pub backoff_cap_ms: u64,
    /// Consecutive failures after which the breaker opens.
    pub breaker_failures: u32,
    /// How long an open breaker waits before admitting one half-open
    /// probe. `None` keeps the breaker open permanently: the container
    /// settles on the guarded fallback for good.
    pub breaker_cooldown_ms: Option<u64>,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for ResynthPolicy {
    /// One-second attempts, 50 ms → 5 s exponential backoff, breaker
    /// opens after 3 consecutive failures and probes again after 30 s —
    /// the defaults of [`sepe_core::supervisor::SupervisorConfig`].
    fn default() -> Self {
        let config = sepe_core::SupervisorConfig::default();
        ResynthPolicy {
            deadline_ms: config.deadline_ms,
            backoff_base_ms: config.backoff.base_ms,
            backoff_cap_ms: config.backoff.cap_ms,
            breaker_failures: config.breaker_failures,
            breaker_cooldown_ms: config.breaker_cooldown_ms,
            seed: config.seed,
        }
    }
}

impl ResynthPolicy {
    /// A policy whose breaker never re-closes: after `breaker_failures`
    /// consecutive failures the hasher is abandoned permanently.
    #[must_use]
    pub fn settle_permanently(mut self) -> Self {
        self.breaker_cooldown_ms = None;
        self
    }

    /// Converts the policy into a supervisor configuration.
    #[must_use]
    pub fn config(&self) -> sepe_core::SupervisorConfig {
        sepe_core::SupervisorConfig {
            deadline_ms: self.deadline_ms,
            backoff: sepe_core::supervisor::BackoffPolicy {
                base_ms: self.backoff_base_ms,
                cap_ms: self.backoff_cap_ms,
            },
            breaker_failures: self.breaker_failures,
            breaker_cooldown_ms: self.breaker_cooldown_ms,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_uses_low_bits() {
        assert_eq!(BucketPolicy::Modulo.bucket_of(123_456_789, 100), 89);
        assert_eq!(BucketPolicy::Modulo.bucket_of(123_456_790, 100), 90);
    }

    #[test]
    fn high_bits_discard_low_ones() {
        let p = BucketPolicy::HighBits { discard_low: 48 };
        // Hashes differing only below bit 48 land in the same bucket.
        assert_eq!(
            p.bucket_of(0x0000_1234_5678_9ABC, 97),
            p.bucket_of(0x0000_FFFF_FFFF_FFFF, 97)
        );
        assert_ne!(
            p.bucket_of(0x0001_0000_0000_0000, 97),
            p.bucket_of(0x0002_0000_0000_0000, 97)
        );
    }

    #[test]
    fn example_4_1_successive_ssns_fall_in_different_buckets() {
        // 123456789 % 100 = 89 and 123456790 % 100 = 90.
        let p = BucketPolicy::Modulo;
        assert_eq!(p.bucket_of(123_456_789, 100), 89);
        assert_eq!(p.bucket_of(123_456_790, 100), 90);
    }

    #[test]
    fn discard_is_clamped_at_63() {
        let p = BucketPolicy::HighBits { discard_low: 200 };
        assert_eq!(p.bucket_of(u64::MAX, 97), (u64::MAX >> 63));
    }

    #[test]
    fn drift_policy_waits_for_samples() {
        let p = DriftPolicy::with_threshold(0.5);
        assert!(!p.should_degrade(63, 63), "under the sample floor");
        assert!(p.should_degrade(64, 64));
        assert!(!p.should_degrade(32, 64), "exactly at threshold tolerated");
        assert!(p.should_degrade(33, 64));
    }

    #[test]
    fn zero_threshold_degrades_on_any_drift() {
        let p = DriftPolicy {
            threshold: 0.0,
            min_samples: 1,
            ..DriftPolicy::default()
        };
        assert!(p.should_degrade(1, 1));
        assert!(!p.should_degrade(0, 100));
    }

    #[test]
    fn resynth_policy_round_trips_into_a_supervisor_config() {
        let policy = ResynthPolicy {
            deadline_ms: 250,
            backoff_base_ms: 10,
            backoff_cap_ms: 80,
            breaker_failures: 2,
            breaker_cooldown_ms: Some(500),
            seed: 0xFEED,
        };
        let config = policy.config();
        assert_eq!(config.deadline_ms, 250);
        assert_eq!(config.backoff.base_ms, 10);
        assert_eq!(config.backoff.cap_ms, 80);
        assert_eq!(config.breaker_failures, 2);
        assert_eq!(config.breaker_cooldown_ms, Some(500));
        assert_eq!(config.seed, 0xFEED);
    }

    #[test]
    fn default_resynth_policy_mirrors_the_supervisor_defaults() {
        assert_eq!(
            ResynthPolicy::default().config(),
            sepe_core::SupervisorConfig::default()
        );
        assert_eq!(
            ResynthPolicy::default()
                .settle_permanently()
                .config()
                .breaker_cooldown_ms,
            None
        );
    }

    #[test]
    fn window_fills_at_the_larger_of_window_and_min_samples() {
        let p = DriftPolicy {
            threshold: 0.10,
            min_samples: 200,
            window: 100,
        };
        assert!(!p.window_full(199), "min_samples dominates a small window");
        assert!(p.window_full(200));
        let q = DriftPolicy::default();
        assert!(!q.window_full(1023));
        assert!(q.window_full(1024));
    }
}
