//! Bucket index policies.
//!
//! libstdc++ indexes buckets with `hash % bucket_count`, which consumes the
//! *entire* hash value — the reason the paper's low-dispersion synthesized
//! functions still spread keys across buckets (Example 4.1). RQ7 stresses
//! the opposite design: a "low-mixing" container that uses only the most
//! significant bits, under which Naive/OffXor degrade while Pext/Aes
//! resist (Figures 17 and 18).

/// How a 64-bit hash value selects a bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BucketPolicy {
    /// `hash % bucket_count` — the libstdc++ policy.
    #[default]
    Modulo,
    /// `(hash >> discard_low) % bucket_count` — a low-mixing container that
    /// discards the `discard_low` least significant bits and indexes with
    /// the remaining most significant ones (Figure 17's X axis).
    HighBits {
        /// Number of least-significant bits discarded before indexing.
        discard_low: u32,
    },
}

impl BucketPolicy {
    /// The bucket for `hash` among `bucket_count` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_count` is zero.
    #[inline]
    #[must_use]
    pub fn bucket_of(self, hash: u64, bucket_count: u64) -> u64 {
        assert!(bucket_count > 0, "bucket_count must be non-zero");
        match self {
            BucketPolicy::Modulo => hash % bucket_count,
            BucketPolicy::HighBits { discard_low } => (hash >> discard_low.min(63)) % bucket_count,
        }
    }
}

/// When a guarded container should give up on its specialized hash.
///
/// A [`sepe_core::GuardedHash`] counts how many observed keys fell outside
/// the trained format. The container judges the off-format fraction over a
/// *sliding window* of the most recent `window` observations (lifetime
/// counters would let a long clean prefix dilute a later drift burst
/// forever): once the windowed fraction crosses `threshold` — after at
/// least `min_samples` observations in the window, so a handful of stray
/// keys cannot flip a fresh table — the container degrades, switching every
/// key to the fallback hasher and migrating its stored hashes.
///
/// # Examples
///
/// ```
/// use sepe_containers::DriftPolicy;
///
/// let policy = DriftPolicy::default();
/// assert!(!policy.should_degrade(1, 10));       // below min_samples
/// assert!(policy.should_degrade(30, 100));      // 30% drift
/// assert!(!policy.should_degrade(2, 100));      // 2% drift tolerated
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftPolicy {
    /// Off-format fraction above which the container degrades.
    pub threshold: f64,
    /// Minimum number of observed keys before the threshold applies.
    pub min_samples: u64,
    /// Observation-window length: once a window accumulates this many keys
    /// without tripping the threshold, the counters snapshot and the next
    /// window starts fresh.
    pub window: u64,
}

impl Default for DriftPolicy {
    /// Degrade at 10% off-format traffic, judged over at least 64 keys in
    /// sliding windows of 1024.
    fn default() -> Self {
        DriftPolicy {
            threshold: 0.10,
            min_samples: 64,
            window: 1024,
        }
    }
}

impl DriftPolicy {
    /// Creates a policy with `threshold` and the default sample floor.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= threshold <= 1.0`.
    #[must_use]
    pub fn with_threshold(threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "drift threshold must be a fraction, got {threshold}"
        );
        DriftPolicy {
            threshold,
            ..DriftPolicy::default()
        }
    }

    /// Whether `off_format` failures out of `total` observed keys warrant
    /// degradation. Callers pass the counts of the *current window*
    /// ([`sepe_core::guard::GuardStats::window_counts`]); lifetime totals
    /// would reintroduce the dilution bug this policy exists to avoid.
    #[must_use]
    pub fn should_degrade(&self, off_format: u64, total: u64) -> bool {
        total >= self.min_samples.max(1) && off_format as f64 / total as f64 > self.threshold
    }

    /// Whether a window holding `total` observations is full and should be
    /// snapshot before the next one starts.
    #[must_use]
    pub fn window_full(&self, total: u64) -> bool {
        total >= self.window.max(self.min_samples).max(1)
    }
}

/// One observation of the signals the collision-storm detector consumes.
///
/// Everything here is already maintained by the containers: the longest
/// bucket chain and table shape from `RawTable`, the drift-window counts
/// from [`sepe_core::guard::GuardStats`], and (when the `obs` feature is
/// on) the p99 of the probe-length histogram. [`AttackPolicy::storm`] is a
/// pure function of one such snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AttackSignals {
    /// Length of the longest live bucket chain.
    pub max_bucket_len: usize,
    /// Number of entries in the table.
    pub len: usize,
    /// Number of buckets in the table.
    pub bucket_count: usize,
    /// Off-format keys in the current drift window.
    pub window_off: u64,
    /// Total keys observed in the current drift window.
    pub window_total: u64,
    /// p99 of the probe-length histogram, when instrumentation is on.
    pub probe_p99: Option<u64>,
}

/// When a container should treat collisions as an *attack* rather than
/// bad luck or format drift.
///
/// [`DriftPolicy`] watches the guard's format verdicts; this policy
/// watches the *shape of the table*. A HashDoS flood is visible as
/// bucket-occupancy skew — one chain growing far beyond the expected
/// `len / bucket_count` — and as a heavy probe-length tail, long before
/// lookups degenerate to O(n). A single snapshot tripping the detector is
/// not enough: callers escalate only after [`AttackPolicy::trip_streak`]
/// consecutive stormy observations, and de-escalate only after
/// [`AttackPolicy::quiet_streak`] consecutive calm ones, so benign churn
/// (a resize racing a burst of inserts, a short-lived hot bucket) never
/// flips the hasher.
///
/// # Examples
///
/// ```
/// use sepe_containers::{AttackPolicy, AttackSignals};
///
/// let policy = AttackPolicy::default();
/// let benign = AttackSignals {
///     max_bucket_len: 4,
///     len: 1000,
///     bucket_count: 1543,
///     ..AttackSignals::default()
/// };
/// assert!(!policy.storm(&benign));
///
/// let flooded = AttackSignals {
///     max_bucket_len: 64, // one bucket holds 64 of 200 keys
///     len: 200,
///     bucket_count: 1543,
///     ..AttackSignals::default()
/// };
/// assert!(policy.storm(&flooded));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackPolicy {
    /// A chain this many times the expected length counts as skewed.
    pub skew_factor: f64,
    /// Absolute chain-length floor below which skew is never an attack —
    /// healthy tables keep their longest chain in the single digits, so a
    /// floor of 32 leaves orders of magnitude of headroom for benign
    /// clustering.
    pub min_chain: usize,
    /// Minimum table size before the detector judges anything: tiny
    /// tables have noisy shapes.
    pub min_len: usize,
    /// Consecutive stormy observations required before escalating.
    pub trip_streak: u32,
    /// Consecutive calm observations required before de-escalating.
    pub quiet_streak: u32,
    /// A probe-length p99 above this is stormy regardless of chain shape.
    pub probe_p99_limit: u64,
}

impl Default for AttackPolicy {
    /// Escalate on a chain ≥ 32 entries *and* ≥ 8× the expected length
    /// (or a probe p99 past 32), observed twice in a row in a table of at
    /// least 128 entries; de-escalate after 3 calm observations.
    fn default() -> Self {
        AttackPolicy {
            skew_factor: 8.0,
            min_chain: 32,
            min_len: 128,
            trip_streak: 2,
            quiet_streak: 3,
            probe_p99_limit: 32,
        }
    }
}

impl AttackPolicy {
    /// Whether one snapshot of the table looks like a collision storm.
    ///
    /// Pure and stateless — the hysteresis streaks live with the caller
    /// (`UnorderedMap` keeps one `AttackState` per table, `ShardedMap`
    /// one per shard).
    #[must_use]
    pub fn storm(&self, signals: &AttackSignals) -> bool {
        if signals.len < self.min_len.max(1) || signals.bucket_count == 0 {
            return false;
        }
        let expected = (signals.len as f64 / signals.bucket_count as f64).max(1.0);
        let skewed = signals.max_bucket_len >= self.min_chain
            && signals.max_bucket_len as f64 >= self.skew_factor * expected;
        let heavy_tail = signals
            .probe_p99
            .is_some_and(|p99| p99 > self.probe_p99_limit);
        skewed || heavy_tail
    }
}

/// Tunables for *supervised* background resynthesis.
///
/// Where [`DriftPolicy`] decides *when* a container gives up on its
/// specialized hash, `ResynthPolicy` decides how hard the background
/// supervisor tries to win it back: how long one synthesis attempt may
/// run, how retries back off, and how many consecutive failures trip the
/// per-hasher circuit breaker so the container settles permanently on the
/// guarded fallback. [`ResynthPolicy::config`] converts the policy into
/// the [`sepe_core::supervisor::SupervisorConfig`] a
/// [`sepe_core::ResynthSupervisor`] is built from.
///
/// # Examples
///
/// ```
/// use sepe_containers::ResynthPolicy;
/// use sepe_core::{ResynthSupervisor, SystemClock};
/// use std::sync::Arc;
///
/// let policy = ResynthPolicy::default();
/// let supervisor = ResynthSupervisor::new(policy.config(), Arc::new(SystemClock::new()));
/// assert!(!supervisor.breaker_open(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResynthPolicy {
    /// Cooperative deadline for one synthesis attempt, in milliseconds.
    pub deadline_ms: u64,
    /// First retry delay; later retries double it up to `backoff_cap_ms`.
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff delay.
    pub backoff_cap_ms: u64,
    /// Consecutive failures after which the breaker opens.
    pub breaker_failures: u32,
    /// How long an open breaker waits before admitting one half-open
    /// probe. `None` keeps the breaker open permanently: the container
    /// settles on the guarded fallback for good.
    pub breaker_cooldown_ms: Option<u64>,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for ResynthPolicy {
    /// One-second attempts, 50 ms → 5 s exponential backoff, breaker
    /// opens after 3 consecutive failures and probes again after 30 s —
    /// the defaults of [`sepe_core::supervisor::SupervisorConfig`].
    fn default() -> Self {
        let config = sepe_core::SupervisorConfig::default();
        ResynthPolicy {
            deadline_ms: config.deadline_ms,
            backoff_base_ms: config.backoff.base_ms,
            backoff_cap_ms: config.backoff.cap_ms,
            breaker_failures: config.breaker_failures,
            breaker_cooldown_ms: config.breaker_cooldown_ms,
            seed: config.seed,
        }
    }
}

impl ResynthPolicy {
    /// A policy whose breaker never re-closes: after `breaker_failures`
    /// consecutive failures the hasher is abandoned permanently.
    #[must_use]
    pub fn settle_permanently(mut self) -> Self {
        self.breaker_cooldown_ms = None;
        self
    }

    /// Converts the policy into a supervisor configuration.
    #[must_use]
    pub fn config(&self) -> sepe_core::SupervisorConfig {
        sepe_core::SupervisorConfig {
            deadline_ms: self.deadline_ms,
            backoff: sepe_core::supervisor::BackoffPolicy {
                base_ms: self.backoff_base_ms,
                cap_ms: self.backoff_cap_ms,
            },
            breaker_failures: self.breaker_failures,
            breaker_cooldown_ms: self.breaker_cooldown_ms,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_uses_low_bits() {
        assert_eq!(BucketPolicy::Modulo.bucket_of(123_456_789, 100), 89);
        assert_eq!(BucketPolicy::Modulo.bucket_of(123_456_790, 100), 90);
    }

    #[test]
    fn high_bits_discard_low_ones() {
        let p = BucketPolicy::HighBits { discard_low: 48 };
        // Hashes differing only below bit 48 land in the same bucket.
        assert_eq!(
            p.bucket_of(0x0000_1234_5678_9ABC, 97),
            p.bucket_of(0x0000_FFFF_FFFF_FFFF, 97)
        );
        assert_ne!(
            p.bucket_of(0x0001_0000_0000_0000, 97),
            p.bucket_of(0x0002_0000_0000_0000, 97)
        );
    }

    #[test]
    fn example_4_1_successive_ssns_fall_in_different_buckets() {
        // 123456789 % 100 = 89 and 123456790 % 100 = 90.
        let p = BucketPolicy::Modulo;
        assert_eq!(p.bucket_of(123_456_789, 100), 89);
        assert_eq!(p.bucket_of(123_456_790, 100), 90);
    }

    #[test]
    fn discard_is_clamped_at_63() {
        let p = BucketPolicy::HighBits { discard_low: 200 };
        assert_eq!(p.bucket_of(u64::MAX, 97), (u64::MAX >> 63));
    }

    #[test]
    fn drift_policy_waits_for_samples() {
        let p = DriftPolicy::with_threshold(0.5);
        assert!(!p.should_degrade(63, 63), "under the sample floor");
        assert!(p.should_degrade(64, 64));
        assert!(!p.should_degrade(32, 64), "exactly at threshold tolerated");
        assert!(p.should_degrade(33, 64));
    }

    #[test]
    fn zero_threshold_degrades_on_any_drift() {
        let p = DriftPolicy {
            threshold: 0.0,
            min_samples: 1,
            ..DriftPolicy::default()
        };
        assert!(p.should_degrade(1, 1));
        assert!(!p.should_degrade(0, 100));
    }

    #[test]
    fn attack_policy_ignores_small_tables() {
        let p = AttackPolicy::default();
        let s = AttackSignals {
            max_bucket_len: 60,
            len: 64, // below min_len
            bucket_count: 250,
            ..AttackSignals::default()
        };
        assert!(!p.storm(&s));
        assert!(p.storm(&AttackSignals { len: 128, ..s }));
    }

    #[test]
    fn attack_policy_requires_both_floor_and_skew() {
        let p = AttackPolicy::default();
        // Skewed relative to expectation but under the absolute floor.
        let short_chain = AttackSignals {
            max_bucket_len: 31,
            len: 1000,
            bucket_count: 100_000,
            ..AttackSignals::default()
        };
        assert!(!p.storm(&short_chain));
        // Long chain but plausible for a dense table: 40 ≈ 4× expected 10.
        let dense = AttackSignals {
            max_bucket_len: 40,
            len: 10_000,
            bucket_count: 1_000,
            ..AttackSignals::default()
        };
        assert!(!p.storm(&dense));
        // Long *and* skewed.
        let flooded = AttackSignals {
            max_bucket_len: 80,
            len: 10_000,
            bucket_count: 10_000,
            ..AttackSignals::default()
        };
        assert!(p.storm(&flooded));
    }

    #[test]
    fn probe_tail_alone_can_trip_the_detector() {
        let p = AttackPolicy::default();
        let s = AttackSignals {
            max_bucket_len: 2,
            len: 1000,
            bucket_count: 1543,
            probe_p99: Some(33),
            ..AttackSignals::default()
        };
        assert!(p.storm(&s));
        assert!(!p.storm(&AttackSignals {
            probe_p99: Some(32),
            ..s
        }));
        assert!(!p.storm(&AttackSignals {
            probe_p99: None,
            ..s
        }));
    }

    #[test]
    fn resynth_policy_round_trips_into_a_supervisor_config() {
        let policy = ResynthPolicy {
            deadline_ms: 250,
            backoff_base_ms: 10,
            backoff_cap_ms: 80,
            breaker_failures: 2,
            breaker_cooldown_ms: Some(500),
            seed: 0xFEED,
        };
        let config = policy.config();
        assert_eq!(config.deadline_ms, 250);
        assert_eq!(config.backoff.base_ms, 10);
        assert_eq!(config.backoff.cap_ms, 80);
        assert_eq!(config.breaker_failures, 2);
        assert_eq!(config.breaker_cooldown_ms, Some(500));
        assert_eq!(config.seed, 0xFEED);
    }

    #[test]
    fn default_resynth_policy_mirrors_the_supervisor_defaults() {
        assert_eq!(
            ResynthPolicy::default().config(),
            sepe_core::SupervisorConfig::default()
        );
        assert_eq!(
            ResynthPolicy::default()
                .settle_permanently()
                .config()
                .breaker_cooldown_ms,
            None
        );
    }

    #[test]
    fn window_fills_at_the_larger_of_window_and_min_samples() {
        let p = DriftPolicy {
            threshold: 0.10,
            min_samples: 200,
            window: 100,
        };
        assert!(!p.window_full(199), "min_samples dominates a small window");
        assert!(p.window_full(200));
        let q = DriftPolicy::default();
        assert!(!q.window_full(1023));
        assert!(q.window_full(1024));
    }
}
