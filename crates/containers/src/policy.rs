//! Bucket index policies.
//!
//! libstdc++ indexes buckets with `hash % bucket_count`, which consumes the
//! *entire* hash value — the reason the paper's low-dispersion synthesized
//! functions still spread keys across buckets (Example 4.1). RQ7 stresses
//! the opposite design: a "low-mixing" container that uses only the most
//! significant bits, under which Naive/OffXor degrade while Pext/Aes
//! resist (Figures 17 and 18).

/// How a 64-bit hash value selects a bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BucketPolicy {
    /// `hash % bucket_count` — the libstdc++ policy.
    #[default]
    Modulo,
    /// `(hash >> discard_low) % bucket_count` — a low-mixing container that
    /// discards the `discard_low` least significant bits and indexes with
    /// the remaining most significant ones (Figure 17's X axis).
    HighBits {
        /// Number of least-significant bits discarded before indexing.
        discard_low: u32,
    },
}

impl BucketPolicy {
    /// The bucket for `hash` among `bucket_count` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_count` is zero.
    #[inline]
    #[must_use]
    pub fn bucket_of(self, hash: u64, bucket_count: u64) -> u64 {
        assert!(bucket_count > 0, "bucket_count must be non-zero");
        match self {
            BucketPolicy::Modulo => hash % bucket_count,
            BucketPolicy::HighBits { discard_low } => (hash >> discard_low.min(63)) % bucket_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_uses_low_bits() {
        assert_eq!(BucketPolicy::Modulo.bucket_of(123_456_789, 100), 89);
        assert_eq!(BucketPolicy::Modulo.bucket_of(123_456_790, 100), 90);
    }

    #[test]
    fn high_bits_discard_low_ones() {
        let p = BucketPolicy::HighBits { discard_low: 48 };
        // Hashes differing only below bit 48 land in the same bucket.
        assert_eq!(
            p.bucket_of(0x0000_1234_5678_9ABC, 97),
            p.bucket_of(0x0000_FFFF_FFFF_FFFF, 97)
        );
        assert_ne!(
            p.bucket_of(0x0001_0000_0000_0000, 97),
            p.bucket_of(0x0002_0000_0000_0000, 97)
        );
    }

    #[test]
    fn example_4_1_successive_ssns_fall_in_different_buckets() {
        // 123456789 % 100 = 89 and 123456790 % 100 = 90.
        let p = BucketPolicy::Modulo;
        assert_eq!(p.bucket_of(123_456_789, 100), 89);
        assert_eq!(p.bucket_of(123_456_790, 100), 90);
    }

    #[test]
    fn discard_is_clamped_at_63() {
        let p = BucketPolicy::HighBits { discard_low: 200 };
        assert_eq!(p.bucket_of(u64::MAX, 97), (u64::MAX >> 63));
    }
}
