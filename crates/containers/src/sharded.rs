//! Lock-striped concurrent containers: [`ShardedMap`] and [`ShardedSet`].
//!
//! A [`ShardedMap`] splits a guarded [`UnorderedMap`] into `N` independent
//! shards, each behind its own [`RwLock`]. The shard for a key is chosen by
//! the **high bits of a routing hash**, so the low bits — the ones the
//! modulo bucket policy consumes — stay fully mixed within every shard.
//!
//! Two design points keep the sharding correct under drift:
//!
//! * **The router never moves.** Routing goes through an epoch-frozen,
//!   counter-silent copy of the guarded hasher pinned to
//!   [`GuardMode::Guarded`]. A live guarded hash changes its output when a
//!   shard degrades or resynthesizes; if shard selection followed it, a
//!   degradation would silently re-route keys to a *different* shard and
//!   orphan everything already stored. The frozen router hashes every key
//!   the same way forever, and it bumps no drift counters, so routing is
//!   invisible to the drift policies.
//! * **Each shard drifts alone.** Every shard owns a
//!   [`detached`](GuardedHash::detached) copy of the hasher — same guard
//!   and hash functions, private statistics, mode, and reservoir. One
//!   shard's off-format burst degrades *that shard only*; its siblings
//!   keep serving specialized hashes, which is the entire point of
//!   bounding the blast radius of drift.
//!
//! Reads take a shard read lock; writes take the shard write lock. Batched
//! operations group keys by shard first, lock each touched shard once, and
//! reuse the single-shard batch kernels (one [`HashBatch`] call and one
//! prefetch sweep per chunk) inside the lock.

use crate::map::UnorderedMap;
use crate::policy::{AttackPolicy, BucketPolicy, DriftPolicy};
use sepe_core::guard::{GuardMode, GuardedHash};
use sepe_core::hash::keyed::SeedSource;
use sepe_core::hash::{ByteHash, HashBatch};
use sepe_core::supervisor::{ReadyPlan, SynthRequest};
use sepe_obs::{Counter, EventTrace, ObsEvent};
use std::borrow::Borrow;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Maximum shard count: 64 shards consume 6 high hash bits, leaving 58
/// well-mixed bits for bucket indexing inside each shard.
pub const MAX_SHARDS: usize = 64;

/// Ring capacity for a sharded map's degradation event trace: generous
/// for `MAX_SHARDS` shards degrading and re-arming many times over.
const SHARD_EVENT_CAPACITY: usize = 1024;

/// Map-wide observability: lock acquisitions, shard degradations, and a
/// bounded trace of [`ObsEvent::ShardDegrade`] events. Shared handles so
/// an exported [`sepe_obs::Registry`] reads live values; bumps are gated
/// on [`sepe_obs::enabled`].
#[derive(Debug)]
struct ShardObs {
    /// Shard read locks taken (including non-blocking upgrade probes).
    read_locks: Arc<Counter>,
    /// Shard write locks taken.
    write_locks: Arc<Counter>,
    /// Guarded→Degraded transitions, counted once per actual flip.
    shard_degrades: Arc<Counter>,
    /// Upward escalation-ladder rungs taken across shards (rotations
    /// included).
    shard_escalations: Arc<Counter>,
    /// Quiet-window de-escalations back to specialized hashing.
    shard_deescalations: Arc<Counter>,
    /// Keyed-rung seed rotations (a subset of `shard_escalations`).
    shard_seed_rotations: Arc<Counter>,
    /// Degradation and escalation events, oldest first.
    events: Arc<EventTrace<ObsEvent>>,
}

impl Default for ShardObs {
    fn default() -> Self {
        ShardObs {
            read_locks: Arc::new(Counter::new()),
            write_locks: Arc::new(Counter::new()),
            shard_degrades: Arc::new(Counter::new()),
            shard_escalations: Arc::new(Counter::new()),
            shard_deescalations: Arc::new(Counter::new()),
            shard_seed_rotations: Arc::new(Counter::new()),
            events: Arc::new(EventTrace::new(SHARD_EVENT_CAPACITY)),
        }
    }
}

/// A lock-striped concurrent hash map over guarded hashers.
///
/// All operations take `&self`; interior mutability lives in the per-shard
/// [`RwLock`]s, so a `ShardedMap` can be shared across threads (it is
/// `Send + Sync` whenever its pieces are).
///
/// # Examples
///
/// ```
/// use sepe_baselines::StlHash;
/// use sepe_containers::ShardedMap;
/// use sepe_core::guard::GuardedHash;
/// use sepe_core::hash::SynthesizedHash;
/// use sepe_core::regex::Regex;
/// use sepe_core::synth::Family;
///
/// let pattern = Regex::compile(r"\d{3}-\d{2}-\d{4}")?;
/// let hash = SynthesizedHash::from_pattern(&pattern, Family::Pext);
/// let guarded = GuardedHash::new(&pattern, hash, StlHash::new());
/// let map = ShardedMap::with_hasher(guarded, 8);
///
/// std::thread::scope(|s| {
///     for t in 0..4u32 {
///         let map = &map;
///         s.spawn(move || {
///             for i in (t..100).step_by(4) {
///                 map.insert(format!("{:03}-{:02}-{:04}", i, i % 100, i), i);
///             }
///         });
///     }
/// });
/// assert_eq!(map.len(), 100);
/// assert_eq!(map.get("007-07-0007"), Some(7));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ShardedMap<K, V, F, G> {
    /// Epoch-frozen, silent, `Guarded`-pinned router (see module docs).
    router: GuardedHash<F, G>,
    shards: Box<[Shard<K, V, F, G>]>,
    /// `log2(shards.len())`; shard index = top `shard_bits` of the hash.
    shard_bits: u32,
    obs: ShardObs,
}

/// One lock-striped shard: a self-healing map behind its own `RwLock`.
type Shard<K, V, F, G> = RwLock<UnorderedMap<K, V, GuardedHash<F, G>>>;

impl<K, V, F, G> ShardedMap<K, V, F, G>
where
    K: Eq + AsRef<[u8]>,
    F: ByteHash + Clone,
    G: ByteHash + Clone,
{
    /// Creates an empty map striped across `shards` locks (rounded up to a
    /// power of two, clamped to `1..=`[`MAX_SHARDS`]), with modulo bucket
    /// indexing inside each shard.
    pub fn with_hasher(hasher: GuardedHash<F, G>, shards: usize) -> Self {
        Self::with_hasher_and_policy(hasher, shards, BucketPolicy::Modulo)
    }

    /// As [`ShardedMap::with_hasher`], with an explicit bucket-index policy
    /// for the shards.
    pub fn with_hasher_and_policy(
        hasher: GuardedHash<F, G>,
        shards: usize,
        policy: BucketPolicy,
    ) -> Self {
        let count = shards.clamp(1, MAX_SHARDS).next_power_of_two();
        let shards: Vec<_> = (0..count)
            .map(|_| {
                RwLock::new(UnorderedMap::with_hasher_and_policy(
                    hasher.detached(),
                    policy,
                ))
            })
            .collect();
        ShardedMap {
            router: hasher.epoch_frozen(GuardMode::Guarded),
            shards: shards.into_boxed_slice(),
            shard_bits: count.trailing_zeros(),
            obs: ShardObs::default(),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of_hash(&self, hash: u64) -> usize {
        if self.shard_bits == 0 {
            0 // `hash >> 64` would overflow the shift, not return 0.
        } else {
            (hash >> (64 - self.shard_bits)) as usize
        }
    }

    /// The shard index `key` routes to — stable for the lifetime of the
    /// map, across shard degradations and resynthesis.
    #[inline]
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.shard_of_hash(self.router.hash_bytes(key))
    }

    #[inline]
    fn read(&self, i: usize) -> RwLockReadGuard<'_, UnorderedMap<K, V, GuardedHash<F, G>>> {
        // A poisoned shard saw a panic mid-operation; its chains are still
        // structurally sound (no unsafe in the table), so recover rather
        // than cascade the panic through every thread touching the map.
        if sepe_obs::enabled() {
            self.obs.read_locks.inc();
        }
        self.shards[i]
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    #[inline]
    fn write(&self, i: usize) -> RwLockWriteGuard<'_, UnorderedMap<K, V, GuardedHash<F, G>>> {
        if sepe_obs::enabled() {
            self.obs.write_locks.inc();
        }
        self.shards[i]
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Total number of pairs across all shards. Taken shard by shard, so
    /// under concurrent writers the value is a moment-to-moment estimate.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.read(i).len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        (0..self.shards.len()).all(|i| self.read(i).is_empty())
    }

    /// Inserts a pair, returning the previous value for an equal key.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let idx = self.shard_of(key.as_ref());
        self.write(idx).insert(key, value)
    }

    /// Looks up a key, cloning the value out (references cannot outlive
    /// the shard lock).
    ///
    /// When the shard has a migration epoch in flight, the lookup also
    /// tries a non-blocking write-lock upgrade afterwards and drains a
    /// small stride ([`UnorderedMap::drain_on_read`]) — read-heavy
    /// workloads converge out of the dual-epoch state instead of paying
    /// the double probe forever, but never block behind other readers.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
        V: Clone,
    {
        let idx = self.shard_of(key.as_ref().as_ref());
        let (hit, migrating) = {
            let shard = self.read(idx);
            (shard.get(key).cloned(), shard.migration_in_flight())
        };
        if migrating {
            if let Ok(mut shard) = self.shards[idx].try_write() {
                shard.drain_on_read();
            }
        }
        hit
    }

    /// Whether the map contains `key`.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        let idx = self.shard_of(key.as_ref().as_ref());
        self.read(idx).contains_key(key)
    }

    /// Removes a key, returning its value.
    pub fn remove<Q>(&self, key: &Q) -> Option<V>
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        let idx = self.shard_of(key.as_ref().as_ref());
        self.write(idx).remove(key)
    }

    /// Removes every pair from every shard.
    pub fn clear(&self) {
        for i in 0..self.shards.len() {
            self.write(i).clear();
        }
    }

    /// Calls `f` on every pair, shard by shard in shard order (arena order
    /// within a shard). Holds one shard read lock at a time.
    pub fn for_each<Func>(&self, mut f: Func)
    where
        Func: FnMut(&K, &V),
    {
        for i in 0..self.shards.len() {
            let shard = self.read(i);
            for (k, v) in shard.iter() {
                f(k, v);
            }
        }
    }

    /// Σ over all shards of the paper's bucket-collision count.
    pub fn bucket_collisions(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.read(i).bucket_collisions())
            .sum()
    }

    /// Lifetime drift counters summed across shards: `(in_format,
    /// off_format)`. The router is silent, so these match what a single
    /// unsharded map would have counted for the same operations.
    pub fn drift_counts(&self) -> (u64, u64) {
        let mut in_f = 0u64;
        let mut off_f = 0u64;
        for i in 0..self.shards.len() {
            let shard = self.read(i);
            let stats = shard.drift_stats();
            in_f = in_f.saturating_add(stats.in_format());
            off_f = off_f.saturating_add(stats.off_format());
        }
        (in_f, off_f)
    }

    /// Stale reads recorded across shards (see
    /// [`UnorderedMap::stale_reads`]).
    pub fn stale_reads(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.read(i).stale_reads())
            .sum()
    }

    /// The routing mode of shard `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shard_count()`.
    pub fn shard_mode(&self, i: usize) -> GuardMode {
        self.read(i).guard_mode()
    }

    /// The bucket count of shard `i`'s live epoch — a diagnostic for
    /// harnesses and capacity planning (the adversarial suite uses it to
    /// craft worst-case key streams with full knowledge of the layout).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shard_count()`.
    pub fn shard_bucket_count(&self, i: usize) -> usize {
        self.read(i).bucket_count()
    }

    /// The longest live bucket chain in shard `i` — the per-shard twin of
    /// [`UnorderedMap::max_bucket_len`], and the detector's skew signal.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shard_count()`.
    pub fn shard_max_bucket_len(&self, i: usize) -> usize {
        self.read(i).max_bucket_len()
    }

    /// How many shards have degraded to fallback-for-all-keys.
    pub fn degraded_shards(&self) -> usize {
        (0..self.shards.len())
            .filter(|&i| self.read(i).guard_mode() == GuardMode::Degraded)
            .count()
    }

    /// Degrades shard `i` unconditionally and opens its migration epoch.
    /// Other shards are untouched — they keep their specialized hashes.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shard_count()`.
    pub fn degrade_shard(&self, i: usize) {
        let flipped = {
            let mut shard = self.write(i);
            let was_degraded = shard.guard_mode() == GuardMode::Degraded;
            shard.degrade_now();
            !was_degraded
        };
        if flipped {
            self.record_degrade(i);
        }
    }

    /// Degrades every shard (mainly for tests and the verify harness).
    pub fn degrade_all(&self) {
        for i in 0..self.shards.len() {
            self.degrade_shard(i);
        }
    }

    /// Applies `policy` to each shard's *own* windowed drift counters,
    /// degrading the shards whose windows exceed it. Returns how many
    /// shards degraded during this call.
    pub fn maybe_degrade(&self, policy: &DriftPolicy) -> usize {
        (0..self.shards.len())
            .filter(|&i| {
                let flipped = self.write(i).maybe_degrade(policy);
                if flipped {
                    self.record_degrade(i);
                }
                flipped
            })
            .count()
    }

    /// Counts one actual Guarded→Degraded flip of shard `i`.
    fn record_degrade(&self, i: usize) {
        if sepe_obs::enabled() {
            self.obs.shard_degrades.inc();
            self.obs
                .events
                .push(ObsEvent::ShardDegrade { shard: i as u64 });
        }
    }

    /// Takes one upward escalation rung on shard `i` — see
    /// [`UnorderedMap::escalate_now`] for the ladder — leaving its
    /// siblings untouched. The per-shard blast radius that bounds drift
    /// degradation bounds HashDoS escalation the same way: a flood aimed
    /// at one shard re-keys that shard only.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shard_count()`.
    pub fn escalate_shard(&self, i: usize, seeds: &impl SeedSource) {
        let from = {
            let mut shard = self.write(i);
            let from = shard.guard_mode();
            shard.escalate_now(seeds);
            from
        };
        self.record_escalate(i, from);
    }

    /// Applies `policy` to each shard's own collision-storm signals,
    /// escalating the shards whose streaks tripped it. Returns how many
    /// shards escalated during this call.
    pub fn maybe_escalate(&self, policy: &AttackPolicy, seeds: &impl SeedSource) -> usize {
        (0..self.shards.len())
            .filter(|&i| {
                let (escalated, from) = {
                    let mut shard = self.write(i);
                    let from = shard.guard_mode();
                    (shard.maybe_escalate(policy, seeds), from)
                };
                if escalated {
                    self.record_escalate(i, from);
                }
                escalated
            })
            .count()
    }

    /// Counts one calm observation per shard and de-escalates the shards
    /// whose quiet streaks satisfied `policy`. Returns how many shards
    /// re-armed during this call.
    pub fn maybe_deescalate(&self, policy: &AttackPolicy) -> usize {
        (0..self.shards.len())
            .filter(|&i| {
                let rearmed = self.write(i).maybe_deescalate(policy);
                if rearmed && sepe_obs::enabled() {
                    self.obs.shard_deescalations.inc();
                    self.obs
                        .events
                        .push(ObsEvent::ShardDeescalate { shard: i as u64 });
                }
                rearmed
            })
            .count()
    }

    /// Counts one escalation of shard `i`; a rung taken *from* the keyed
    /// mode is a seed rotation and is recorded as such.
    fn record_escalate(&self, i: usize, from: GuardMode) {
        if sepe_obs::enabled() {
            self.obs.shard_escalations.inc();
            if from == GuardMode::Keyed {
                self.obs.shard_seed_rotations.inc();
                self.obs
                    .events
                    .push(ObsEvent::SeedRotation { shard: i as u64 });
            } else {
                self.obs
                    .events
                    .push(ObsEvent::ShardEscalate { shard: i as u64 });
            }
        }
    }

    /// Lifetime count of escalation rungs taken across shards.
    pub fn shard_escalation_count(&self) -> u64 {
        self.obs.shard_escalations.get()
    }

    /// Lifetime count of quiet-window de-escalations across shards.
    pub fn shard_deescalation_count(&self) -> u64 {
        self.obs.shard_deescalations.get()
    }

    /// Lifetime count of keyed-rung seed rotations across shards.
    pub fn shard_seed_rotation_count(&self) -> u64 {
        self.obs.shard_seed_rotations.get()
    }

    /// Advances in-flight migrations by up to `budget` entries total,
    /// split evenly across the shards still draining.
    pub fn migrate(&self, budget: usize) {
        let draining: Vec<usize> = (0..self.shards.len())
            .filter(|&i| self.read(i).migration_in_flight())
            .collect();
        if draining.is_empty() {
            return;
        }
        let per_shard = (budget / draining.len()).max(1);
        for i in draining {
            self.write(i).migrate(per_shard);
        }
    }

    /// Drains every in-flight migration completely.
    pub fn finish_migrations(&self) {
        for i in 0..self.shards.len() {
            self.write(i).finish_migration();
        }
    }

    /// How many shards currently have a migration epoch in flight.
    pub fn migrations_in_flight(&self) -> usize {
        (0..self.shards.len())
            .filter(|&i| self.read(i).migration_in_flight())
            .count()
    }

    /// Mean migration progress across shards: 1.0 when fully drained
    /// (idle shards count as 1.0, matching
    /// [`UnorderedMap::migration_progress`]).
    pub fn migration_progress(&self) -> f64 {
        let sum: f64 = (0..self.shards.len())
            .map(|i| self.read(i).migration_progress())
            .sum();
        sum / self.shards.len() as f64
    }

    /// Lifetime count of shards flipped Guarded→Degraded (each flip
    /// counted once, however it was triggered).
    pub fn shard_degrade_count(&self) -> u64 {
        self.obs.shard_degrades.get()
    }

    /// The recorded [`ObsEvent::ShardDegrade`] events, oldest first.
    /// Empty in `obs`-off builds.
    pub fn degrade_events(&self) -> Vec<ObsEvent> {
        self.obs.events.snapshot()
    }

    /// Registers the map-wide families (`shard_read_locks`,
    /// `shard_write_locks`, `shard_degrades`) plus, per shard `i` under
    /// label `shard="i"`, the shard's table metrics and guard drift
    /// counters (see [`UnorderedMap::export_metrics`]).
    ///
    /// Takes each shard's read lock once to reach its shared handles;
    /// snapshots afterwards read live values without locking shards.
    ///
    /// # Errors
    ///
    /// Propagates [`sepe_obs::RegistryError`] on duplicate registration
    /// (export each map into its own registry, or label them apart).
    pub fn export_metrics(
        &self,
        registry: &sepe_obs::Registry,
    ) -> Result<(), sepe_obs::RegistryError> {
        registry.register_counter("shard_read_locks", &[], self.obs.read_locks.clone())?;
        registry.register_counter("shard_write_locks", &[], self.obs.write_locks.clone())?;
        registry.register_counter("shard_degrades", &[], self.obs.shard_degrades.clone())?;
        registry.register_counter("shard_escalations", &[], self.obs.shard_escalations.clone())?;
        registry.register_counter(
            "shard_deescalations",
            &[],
            self.obs.shard_deescalations.clone(),
        )?;
        registry.register_counter(
            "shard_seed_rotations",
            &[],
            self.obs.shard_seed_rotations.clone(),
        )?;
        for i in 0..self.shards.len() {
            let label = i.to_string();
            let labels = [("shard", label.as_str())];
            self.read(i).export_metrics(registry, &labels)?;
        }
        Ok(())
    }
}

impl<K, V, F, G> ShardedMap<K, V, F, G>
where
    K: Eq + AsRef<[u8]>,
    F: ByteHash + Clone,
    G: ByteHash + Clone,
    GuardedHash<F, G>: HashBatch,
{
    /// Batched lookup across shards: routes all keys first, then locks
    /// each touched shard once and runs the single-shard batch kernel
    /// (chunked [`HashBatch`] hashing + bucket prefetch) inside the lock.
    /// `result[i]` corresponds to `keys[i]`, as if by [`ShardedMap::get`].
    pub fn get_batch(&self, keys: &[&[u8]]) -> Vec<Option<V>>
    where
        V: Clone,
    {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (pos, key) in keys.iter().enumerate() {
            by_shard[self.shard_of(key)].push(pos);
        }
        let mut results: Vec<Option<V>> = vec![None; keys.len()];
        for (idx, positions) in by_shard.iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let shard_keys: Vec<&[u8]> = positions.iter().map(|&p| keys[p]).collect();
            let migrating = {
                let shard = self.read(idx);
                for (&pos, value) in positions.iter().zip(shard.get_batch(&shard_keys)) {
                    results[pos] = value.cloned();
                }
                shard.migration_in_flight()
            };
            if migrating {
                if let Ok(mut shard) = self.shards[idx].try_write() {
                    shard.drain_on_read();
                }
            }
        }
        results
    }

    /// Batched insert across shards: groups pairs by shard (preserving
    /// batch order within each shard, so duplicate keys resolve exactly as
    /// sequential [`ShardedMap::insert`] calls would), locks each touched
    /// shard once, and runs the single-shard batch kernel. `result[i]` is
    /// the previous value for `pairs[i].0`.
    pub fn insert_batch(&self, pairs: Vec<(K, V)>) -> Vec<Option<V>> {
        let total = pairs.len();
        let mut by_shard: Vec<Vec<(usize, (K, V))>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (pos, pair) in pairs.into_iter().enumerate() {
            let idx = self.shard_of(pair.0.as_ref());
            by_shard[idx].push((pos, pair));
        }
        let mut results: Vec<Option<V>> = Vec::with_capacity(total);
        results.resize_with(total, || None);
        for (idx, group) in by_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let (positions, shard_pairs): (Vec<usize>, Vec<(K, V)>) = group.into_iter().unzip();
            let mut shard = self.write(idx);
            for (pos, prev) in positions.into_iter().zip(shard.insert_batch(shard_pairs)) {
                results[pos] = prev;
            }
        }
        results
    }
}

impl<K, V, G> ShardedMap<K, V, sepe_core::SynthesizedHash, G>
where
    K: Eq + AsRef<[u8]>,
    G: ByteHash + Clone,
{
    /// Re-synthesizes shard `i` inline (synchronously, under the shard
    /// write lock) — the pre-supervisor path, kept for comparison and for
    /// callers that accept the stall.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shard_count()`.
    pub fn resynthesize_shard(&self, i: usize) -> sepe_core::Resynth {
        self.write(i).resynthesize()
    }

    /// Builds the background resynthesis request for shard `i`, tagged
    /// with the shard index so the supervisor's per-tag circuit breaker
    /// tracks each shard independently. Takes only the shard *read* lock —
    /// building a request never stalls concurrent readers behind
    /// synthesis. `None` when the shard sampled no drift.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shard_count()`.
    pub fn resynth_request(&self, i: usize) -> Option<SynthRequest> {
        self.read(i).resynth_request(i as u64)
    }

    /// Serves shard `i`'s drift from a memoized plan cache when possible:
    /// a hit installs the cached plan under the shard write lock and
    /// returns `true`; a miss (or no sampled drift) changes nothing and
    /// the caller should fall back to
    /// [`ShardedMap::resynth_request`] + the supervisor.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shard_count()`.
    pub fn resynth_shard_from_cache(&self, i: usize, cache: &sepe_core::PlanCache) -> bool {
        self.write(i).resynth_from_cache(i as u64, cache)
    }

    /// Applies a plan completed by a background job to the shard named by
    /// its tag: a cheap hash swap plus opening a migration epoch, under
    /// the shard write lock. Stale results (the shard's reservoir
    /// generation advanced past the job's snapshot) and out-of-range tags
    /// are discarded. Returns whether the plan was installed.
    pub fn apply_ready(&self, ready: &ReadyPlan) -> bool {
        let Ok(idx) = usize::try_from(ready.tag) else {
            return false;
        };
        if idx >= self.shards.len() {
            return false;
        }
        self.write(idx).apply_resynthesized(ready)
    }
}

/// A lock-striped concurrent hash set: a [`ShardedMap`] with unit values.
///
/// # Examples
///
/// ```
/// use sepe_baselines::StlHash;
/// use sepe_containers::ShardedSet;
/// use sepe_core::guard::GuardedHash;
/// use sepe_core::hash::SynthesizedHash;
/// use sepe_core::regex::Regex;
/// use sepe_core::synth::Family;
///
/// let pattern = Regex::compile(r"\d{4}")?;
/// let hash = SynthesizedHash::from_pattern(&pattern, Family::OffXor);
/// let set = ShardedSet::with_hasher(GuardedHash::new(&pattern, hash, StlHash::new()), 4);
/// assert!(set.insert("1234".to_owned()));
/// assert!(!set.insert("1234".to_owned()));
/// assert!(set.contains("1234"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ShardedSet<K, F, G> {
    inner: ShardedMap<K, (), F, G>,
}

impl<K, F, G> ShardedSet<K, F, G>
where
    K: Eq + AsRef<[u8]>,
    F: ByteHash + Clone,
    G: ByteHash + Clone,
{
    /// Creates an empty set striped across `shards` locks (rounded up to a
    /// power of two, clamped to `1..=`[`MAX_SHARDS`]).
    pub fn with_hasher(hasher: GuardedHash<F, G>, shards: usize) -> Self {
        ShardedSet {
            inner: ShardedMap::with_hasher(hasher, shards),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// The shard index `key` routes to.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.inner.shard_of(key)
    }

    /// Number of elements across all shards.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Inserts an element; returns whether it was newly added.
    pub fn insert(&self, key: K) -> bool {
        self.inner.insert(key, ()).is_none()
    }

    /// Whether the set contains `key`.
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.inner.contains_key(key)
    }

    /// Removes an element; returns whether it was present.
    pub fn remove<Q>(&self, key: &Q) -> bool
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.inner.remove(key).is_some()
    }

    /// Removes every element.
    pub fn clear(&self) {
        self.inner.clear();
    }

    /// Lifetime drift counters summed across shards: `(in_format,
    /// off_format)`.
    pub fn drift_counts(&self) -> (u64, u64) {
        self.inner.drift_counts()
    }

    /// Degrades shard `i` unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shard_count()`.
    pub fn degrade_shard(&self, i: usize) {
        self.inner.degrade_shard(i);
    }

    /// Applies `policy` per shard; returns how many shards degraded.
    pub fn maybe_degrade(&self, policy: &DriftPolicy) -> usize {
        self.inner.maybe_degrade(policy)
    }

    /// How many shards have degraded.
    pub fn degraded_shards(&self) -> usize {
        self.inner.degraded_shards()
    }

    /// Drains every in-flight migration completely.
    pub fn finish_migrations(&self) {
        self.inner.finish_migrations();
    }

    /// Mean migration progress across shards.
    pub fn migration_progress(&self) -> f64 {
        self.inner.migration_progress()
    }
}

impl<K, F, G> ShardedSet<K, F, G>
where
    K: Eq + AsRef<[u8]>,
    F: ByteHash + Clone,
    G: ByteHash + Clone,
    GuardedHash<F, G>: HashBatch,
{
    /// Batched membership with per-shard lock and prefetch grouping:
    /// `result[i] == self.contains(keys[i])`.
    pub fn contains_batch(&self, keys: &[&[u8]]) -> Vec<bool> {
        self.inner
            .get_batch(keys)
            .into_iter()
            .map(|v| v.is_some())
            .collect()
    }

    /// Batched insert; returns how many elements were newly added.
    pub fn insert_batch(&self, keys: Vec<K>) -> usize {
        self.inner
            .insert_batch(keys.into_iter().map(|k| (k, ())).collect())
            .into_iter()
            .filter(Option::is_none)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_baselines::StlHash;
    use sepe_core::hash::SynthesizedHash;
    use sepe_core::regex::Regex;
    use sepe_core::synth::Family;

    type Map = ShardedMap<String, u32, SynthesizedHash, StlHash>;
    type Set = ShardedSet<String, SynthesizedHash, StlHash>;

    fn ssn(i: u32) -> String {
        format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i % 10_000)
    }

    fn sharded(shards: usize) -> Map {
        let pattern = Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("pattern");
        let hash = SynthesizedHash::from_pattern(&pattern, Family::Pext);
        ShardedMap::with_hasher(GuardedHash::new(&pattern, hash, StlHash::new()), shards)
    }

    #[test]
    fn sharded_map_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Map>();
        assert_send_sync::<Set>();
    }

    #[test]
    fn shard_count_is_clamped_power_of_two() {
        assert_eq!(sharded(0).shard_count(), 1);
        assert_eq!(sharded(1).shard_count(), 1);
        assert_eq!(sharded(3).shard_count(), 4);
        assert_eq!(sharded(8).shard_count(), 8);
        assert_eq!(sharded(1000).shard_count(), MAX_SHARDS);
    }

    #[test]
    fn insert_get_remove_across_shards() {
        let m = sharded(8);
        for i in 0..2000 {
            assert_eq!(m.insert(ssn(i), i), None);
        }
        assert_eq!(m.len(), 2000);
        for i in 0..2000 {
            assert_eq!(m.get(ssn(i).as_str()), Some(i), "{}", ssn(i));
        }
        for i in (0..2000).step_by(2) {
            assert_eq!(m.remove(ssn(i).as_str()), Some(i));
        }
        assert_eq!(m.len(), 1000);
        assert!(!m.contains_key(ssn(0).as_str()));
        assert!(m.contains_key(ssn(1).as_str()));
    }

    #[test]
    fn routing_is_stable_across_degradation() {
        let m = sharded(8);
        for i in 0..500 {
            m.insert(ssn(i), i);
        }
        let homes: Vec<usize> = (0..500).map(|i| m.shard_of(ssn(i).as_bytes())).collect();
        // Degrade a couple of shards; every key must still route home.
        m.degrade_shard(homes[0]);
        m.degrade_shard(homes[499]);
        m.finish_migrations();
        for i in 0..500 {
            assert_eq!(
                m.shard_of(ssn(i).as_bytes()),
                homes[i as usize],
                "routing moved for {}",
                ssn(i)
            );
            assert_eq!(m.get(ssn(i).as_str()), Some(i), "{} lost", ssn(i));
        }
    }

    #[test]
    fn degrading_one_shard_leaves_siblings_guarded() {
        let m = sharded(8);
        for i in 0..1000 {
            m.insert(ssn(i), i);
        }
        m.degrade_shard(3);
        assert_eq!(m.degraded_shards(), 1);
        assert_eq!(m.shard_mode(3), GuardMode::Degraded);
        for i in 0..8 {
            if i != 3 {
                assert_eq!(m.shard_mode(i), GuardMode::Guarded, "shard {i}");
            }
        }
        // The degraded shard still answers correctly mid-migration.
        for i in 0..1000 {
            assert_eq!(m.get(ssn(i).as_str()), Some(i), "{}", ssn(i));
        }
    }

    #[test]
    fn concurrent_writers_on_disjoint_keys() {
        let m = sharded(8);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let m = &m;
                s.spawn(move || {
                    for i in (t..4000).step_by(4) {
                        m.insert(ssn(i), i);
                    }
                });
            }
        });
        assert_eq!(m.len(), 4000); // ssn() wraps at 10k, so all 4000 are distinct
        for i in 0..4000 {
            assert_eq!(m.get(ssn(i).as_str()), Some(i), "{}", ssn(i));
        }
    }

    #[test]
    fn concurrent_readers_during_shard_degradation() {
        let m = sharded(4);
        for i in 0..2000 {
            m.insert(ssn(i), i);
        }
        std::thread::scope(|s| {
            for t in 0..2u32 {
                let m = &m;
                s.spawn(move || {
                    for round in 0..5u32 {
                        for i in (t..2000).step_by(2) {
                            assert_eq!(m.get(ssn(i).as_str()), Some(i), "round {round}");
                        }
                    }
                });
            }
            let m = &m;
            s.spawn(move || {
                for shard in 0..2 {
                    m.degrade_shard(shard);
                }
            });
        });
        m.finish_migrations();
        assert_eq!(m.degraded_shards(), 2);
        for i in 0..2000 {
            assert_eq!(m.get(ssn(i).as_str()), Some(i), "{} after drain", ssn(i));
        }
    }

    #[test]
    fn batches_straddle_shards() {
        let m = sharded(8);
        let keys: Vec<String> = (0..600).map(ssn).collect();
        let pairs: Vec<(String, u32)> = keys.iter().cloned().zip(0..600).collect();
        let prev = m.insert_batch(pairs);
        assert!(prev.iter().all(Option::is_none));
        // Re-insert with shifted values: every previous value must come back.
        let pairs: Vec<(String, u32)> = keys.iter().cloned().zip(1000..1600).collect();
        let prev = m.insert_batch(pairs);
        for (i, p) in prev.iter().enumerate() {
            assert_eq!(*p, Some(i as u32), "slot {i}");
        }
        let refs: Vec<&[u8]> = keys.iter().map(String::as_bytes).collect();
        let got = m.get_batch(&refs);
        for (i, g) in got.iter().enumerate() {
            assert_eq!(*g, Some(1000 + i as u32), "slot {i}");
        }
    }

    #[test]
    fn insert_batch_duplicate_keys_resolve_in_order() {
        let m = sharded(4);
        let pairs: Vec<(String, u32)> = vec![(ssn(7), 1), (ssn(8), 2), (ssn(7), 3), (ssn(7), 4)];
        let prev = m.insert_batch(pairs);
        assert_eq!(prev, vec![None, None, Some(1), Some(3)]);
        assert_eq!(m.get(ssn(7).as_str()), Some(4));
    }

    #[test]
    fn reads_drain_migrations_without_writers() {
        let m = sharded(2);
        for i in 0..600 {
            m.insert(ssn(i), i);
        }
        m.degrade_all();
        assert_eq!(m.migrations_in_flight(), 2);
        let mut spins = 0u32;
        while m.migrations_in_flight() > 0 && spins < 100_000 {
            let key = ssn(spins % 600);
            assert_eq!(m.get(key.as_str()), Some(spins % 600));
            spins += 1;
        }
        assert_eq!(
            m.migrations_in_flight(),
            0,
            "gets alone drained both shards"
        );
        assert!((m.migration_progress() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn drift_counts_match_an_unsharded_twin() {
        // The router is silent and every key hashes in exactly one shard,
        // so summed shard counters must equal what a single unsharded map
        // counts for the identical operation sequence.
        let pattern = Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("pattern");
        let hash = SynthesizedHash::from_pattern(&pattern, Family::Pext);
        let m = sharded(8);
        let mut twin =
            crate::UnorderedMap::with_hasher(GuardedHash::new(&pattern, hash, StlHash::new()));
        for i in 0..300 {
            m.insert(ssn(i), i); // in-format
            twin.insert(ssn(i), i);
        }
        for i in 0..40u32 {
            m.insert(format!("not-an-ssn-{i}"), i); // off-format
            twin.insert(format!("not-an-ssn-{i}"), i);
        }
        for i in 0..500 {
            let key = ssn(i);
            assert_eq!(m.get(key.as_str()), twin.get(key.as_str()).copied());
        }
        let (in_f, off_f) = m.drift_counts();
        assert_eq!(in_f, twin.drift_stats().in_format());
        assert_eq!(off_f, twin.drift_stats().off_format());
        assert!(off_f > 0, "off-format traffic was observed");
    }

    #[test]
    fn supervised_shard_resynthesis_round_trip() {
        use sepe_core::supervisor::{
            default_runner, ExecMode, MockClock, ResynthSupervisor, SupervisorConfig,
        };
        use std::sync::Arc;

        let m = sharded(4);
        for i in 0..400 {
            m.insert(ssn(i), i);
        }
        // Drift exactly one shard: keep only the off-format keys the
        // router sends there, so sibling reservoirs stay empty.
        let drifted = 0usize;
        let mut off_format: Vec<(String, u32)> = Vec::new();
        let mut i = 0u32;
        while off_format.len() < 40 {
            let key = format!("drifted-{i:05}");
            if m.shard_of(key.as_bytes()) == drifted {
                m.insert(key.clone(), i);
                off_format.push((key, i));
            }
            i += 1;
        }
        m.degrade_shard(drifted);
        m.finish_migrations();

        // Undrifted shards have nothing to enqueue.
        let clean = (0..4).find(|&i| i != drifted).unwrap();
        assert!(m.resynth_request(clean).is_none());

        let request = m.resynth_request(drifted).expect("drift was sampled");
        assert_eq!(request.tag, drifted as u64);

        let clock = Arc::new(MockClock::new());
        let mut supervisor = ResynthSupervisor::with_runner(
            SupervisorConfig::default(),
            clock,
            default_runner(),
            ExecMode::Inline,
        );
        supervisor.enqueue(request);
        supervisor.pump();
        let ready = supervisor.take_ready();
        assert_eq!(ready.len(), 1);

        assert!(m.apply_ready(&ready[0]), "fresh plan installs");
        assert!(!m.apply_ready(&ready[0]), "replay is stale and discarded");
        assert_eq!(m.shard_mode(drifted), GuardMode::Guarded, "shard re-armed");
        m.finish_migrations();
        for i in 0..400 {
            assert_eq!(m.get(ssn(i).as_str()), Some(i), "{} preserved", ssn(i));
        }
        for (key, v) in &off_format {
            assert_eq!(m.get(key.as_str()), Some(*v), "{key} preserved");
        }

        // A plan whose tag names no shard is discarded, not a panic.
        let mut bogus = ready.into_iter().next().unwrap();
        bogus.tag = 1_000;
        assert!(!m.apply_ready(&bogus));
    }

    #[test]
    fn shard_drift_resolves_from_a_warm_plan_cache() {
        let cache = sepe_core::PlanCache::new(8);
        let m = sharded(4);
        for i in 0..400 {
            m.insert(ssn(i), i);
        }
        let drifted = 0usize;
        let mut i = 0u32;
        let mut planted = 0;
        while planted < 40 {
            let key = format!("drifted-{i:05}");
            if m.shard_of(key.as_bytes()) == drifted {
                m.insert(key, i);
                planted += 1;
            }
            i += 1;
        }
        assert!(
            !m.resynth_shard_from_cache(drifted, &cache),
            "cold cache misses and changes nothing"
        );
        let request = m.resynth_request(drifted).expect("drift was sampled");
        cache.insert(
            &request.widened,
            request.family,
            sepe_core::synthesize(&request.widened, request.family),
        );
        assert!(
            m.resynth_shard_from_cache(drifted, &cache),
            "warm cache installs without a supervisor"
        );
        assert_eq!(cache.hits(), 1);
        assert_eq!(m.shard_mode(drifted), GuardMode::Guarded, "shard re-armed");
        m.finish_migrations();
        for i in 0..400 {
            assert_eq!(m.get(ssn(i).as_str()), Some(i), "{} preserved", ssn(i));
        }
    }

    #[test]
    fn escalation_is_contained_to_the_targeted_shard() {
        let m = sharded(8);
        let seeds = sepe_core::hash::keyed::FixedSeedSource::new(0x5E9E);
        for i in 0..400 {
            m.insert(ssn(i), i);
        }
        let target = m.shard_of(ssn(0).as_bytes());
        // Climb the whole ladder on one shard: degrade, key, rotate.
        m.escalate_shard(target, &seeds);
        m.escalate_shard(target, &seeds);
        m.escalate_shard(target, &seeds);
        assert_eq!(m.shard_mode(target), GuardMode::Keyed);
        for i in 0..m.shard_count() {
            if i != target {
                assert_eq!(m.shard_mode(i), GuardMode::Guarded, "sibling {i} flipped");
            }
        }
        if sepe_obs::enabled() {
            assert_eq!(m.shard_escalation_count(), 3);
            assert_eq!(m.shard_seed_rotation_count(), 1);
            let names: Vec<&str> = m.degrade_events().iter().map(ObsEvent::name).collect();
            assert_eq!(
                names,
                vec!["shard_escalate", "shard_escalate", "seed_rotation"]
            );
        }
        // Contents survive; de-escalation restores the specialized hash.
        m.finish_migrations();
        for i in 0..400 {
            assert_eq!(m.get(ssn(i).as_str()), Some(i), "{} lost", ssn(i));
        }
        let policy = AttackPolicy {
            quiet_streak: 2,
            ..AttackPolicy::default()
        };
        assert_eq!(m.maybe_deescalate(&policy), 0, "first calm tick arms only");
        assert_eq!(m.maybe_deescalate(&policy), 1, "second calm tick re-arms");
        assert_eq!(m.shard_mode(target), GuardMode::Guarded);
        m.finish_migrations();
        for i in 0..400 {
            assert_eq!(m.get(ssn(i).as_str()), Some(i), "{} lost", ssn(i));
        }
        if sepe_obs::enabled() {
            assert_eq!(m.shard_deescalation_count(), 1);
        }
    }

    #[test]
    fn sharded_set_semantics() {
        let pattern = Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("pattern");
        let hash = SynthesizedHash::from_pattern(&pattern, Family::OffXor);
        let s: Set = ShardedSet::with_hasher(GuardedHash::new(&pattern, hash, StlHash::new()), 4);
        for i in 0..500 {
            assert!(s.insert(ssn(i)));
        }
        for i in 0..500 {
            assert!(!s.insert(ssn(i)));
        }
        assert_eq!(s.len(), 500);
        assert!(s.contains(ssn(9).as_str()));
        assert!(s.remove(ssn(9).as_str()));
        assert!(!s.contains(ssn(9).as_str()));
        let keys: Vec<String> = (500..800).map(ssn).collect();
        let refs: Vec<&[u8]> = keys.iter().map(String::as_bytes).collect();
        assert_eq!(s.insert_batch(keys.clone()), 300);
        assert!(s.contains_batch(&refs).iter().all(|&b| b));
    }
}
