//! `UnorderedMap` — the analog of `std::unordered_map`.

use crate::policy::{AttackPolicy, AttackSignals, BucketPolicy, DriftPolicy};
use crate::table::RawTable;
use sepe_core::guard::{GuardMode, GuardStats, GuardedHash, Resynth};
use sepe_core::hash::keyed::SeedSource;
use sepe_core::hash::{ByteHash, HashBatch};
use sepe_core::supervisor::{ReadyPlan, SynthRequest};
use std::borrow::Borrow;

/// Hysteresis state of the collision-storm detector: consecutive stormy
/// and calm observations, plus the probe-histogram baseline that turns
/// the cumulative [`sepe_obs::Histogram`] into a per-tick window.
/// [`AttackPolicy`] is the pure judgment; this is the memory that keeps
/// one noisy snapshot from flipping the hasher.
#[derive(Debug, Clone, Copy)]
pub struct AttackState {
    /// Consecutive observations that looked like a storm.
    storm_streak: u32,
    /// Consecutive observations that looked calm (only counted while on
    /// an escalated rung).
    quiet_streak: u32,
    /// Probe-length bucket counts at the previous detector tick. The
    /// histogram is monotone, so judging its lifetime p99 would keep a
    /// long-past storm "visible" forever; each tick diffs against this
    /// baseline and judges only the probes since the last one.
    probe_baseline: [u64; sepe_obs::histogram::BUCKETS],
}

impl Default for AttackState {
    fn default() -> Self {
        AttackState {
            storm_streak: 0,
            quiet_streak: 0,
            probe_baseline: [0; sepe_obs::histogram::BUCKETS],
        }
    }
}

/// Upper bound on the `q`-quantile of the probe-length observations
/// between two bucket-count snapshots (same semantics as
/// [`sepe_obs::Histogram::quantile`], over the delta). `None` when the
/// window saw nothing.
fn windowed_quantile(
    before: &[u64; sepe_obs::histogram::BUCKETS],
    after: &[u64; sepe_obs::histogram::BUCKETS],
    q: f64,
) -> Option<u64> {
    let mut total = 0u64;
    for (b, a) in before.iter().zip(after.iter()) {
        total = total.saturating_add(a.saturating_sub(*b));
    }
    if total == 0 {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, (b, a)) in before.iter().zip(after.iter()).enumerate() {
        seen = seen.saturating_add(a.saturating_sub(*b));
        if seen >= rank {
            return Some(sepe_obs::histogram::bucket_bounds(i).1);
        }
    }
    Some(u64::MAX)
}

/// A chained hash map with prime bucket counts and bucket introspection,
/// hashing keys through a [`ByteHash`].
///
/// # Examples
///
/// ```
/// use sepe_baselines::StlHash;
/// use sepe_containers::UnorderedMap;
///
/// let mut m = UnorderedMap::with_hasher(StlHash::new());
/// m.insert("alpha".to_owned(), 1);
/// m.insert("beta".to_owned(), 2);
/// assert_eq!(m.get("alpha"), Some(&1));
/// assert_eq!(m.remove("beta"), Some(2));
/// assert_eq!(m.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct UnorderedMap<K, V, H> {
    table: RawTable<K, V, H>,
    attack: AttackState,
}

impl<K, V, H> UnorderedMap<K, V, H>
where
    K: Eq + AsRef<[u8]>,
    H: ByteHash,
{
    /// Creates an empty map using `hasher` and modulo bucket indexing.
    pub fn with_hasher(hasher: H) -> Self {
        UnorderedMap {
            table: RawTable::new(hasher, BucketPolicy::Modulo),
            attack: AttackState::default(),
        }
    }

    /// Creates an empty map with an explicit bucket-index policy (used by
    /// the RQ7 low-mixing experiments).
    pub fn with_hasher_and_policy(hasher: H, policy: BucketPolicy) -> Self {
        UnorderedMap {
            table: RawTable::new(hasher, policy),
            attack: AttackState::default(),
        }
    }

    /// The hash function in use.
    pub fn hasher(&self) -> &H {
        self.table.hasher()
    }

    /// The bucket-index policy in use.
    pub fn policy(&self) -> BucketPolicy {
        self.table.policy()
    }

    /// Number of key-value pairs.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.table.len() == 0
    }

    /// Inserts a pair, returning the previous value for an equal key.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.table.insert_unique(key, value)
    }

    /// Looks up a key.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.table.find(key).map(|i| &self.table.get_kv(i).1)
    }

    /// Looks up a key, returning a mutable value reference.
    ///
    /// Having mutable access anyway, this also drains an in-flight
    /// hash-function migration by a small bounded stride (see
    /// [`UnorderedMap::drain_on_read`]), so lookup-only workloads that go
    /// through `get_mut` still converge out of the dual-epoch state.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.table.drain_on_read();
        self.table
            .find(key)
            .map(|i| &mut self.table.get_kv_mut(i).1)
    }

    /// Whether the map contains `key`.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.table.find(key).is_some()
    }

    /// Removes a key, returning its value.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        Q: ?Sized + Eq + AsRef<[u8]>,
        K: Borrow<Q>,
    {
        self.table.remove_one(key).map(|(_, v)| v)
    }

    /// Removes every pair.
    pub fn clear(&mut self) {
        self.table.clear();
    }

    /// Iterates over the pairs in arena order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.table.iter()
    }

    /// Current number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.table.bucket_count()
    }

    /// Number of live entries in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bucket_count()`.
    pub fn bucket_len(&self, i: usize) -> usize {
        self.table.bucket_len(i)
    }

    /// Σ over buckets of `max(0, bucket_len − 1)` — the paper's bucket
    /// collision count (Section 4.2).
    pub fn bucket_collisions(&self) -> u64 {
        self.table.bucket_collisions()
    }

    /// Length of the longest live bucket chain — the occupancy-skew
    /// signal the collision-storm detector judges, and the quantity the
    /// adversarial harness bounds (a lookup's probe length never exceeds
    /// its bucket's chain length).
    pub fn max_bucket_len(&self) -> usize {
        self.table.max_bucket_len()
    }

    /// Current load factor.
    pub fn load_factor(&self) -> f64 {
        self.table.load_factor()
    }

    /// Maximum load factor before rehashing (1.0, like libstdc++).
    pub fn max_load_factor(&self) -> f64 {
        self.table.max_load_factor()
    }

    /// Changes the maximum load factor, rehashing if already exceeded.
    ///
    /// # Panics
    ///
    /// Panics if `mlf` is not positive.
    pub fn set_max_load_factor(&mut self, mlf: f64) {
        self.table.set_max_load_factor(mlf);
    }

    /// Rehashes into at least `bucket_count` buckets.
    pub fn rehash(&mut self, bucket_count: usize) {
        self.table.rehash(bucket_count);
    }

    /// Ensures `additional` more pairs fit without rehashing, growing to a
    /// prime bucket count if necessary.
    pub fn reserve(&mut self, additional: usize) {
        let required = self.len() + additional;
        if required as f64 > self.max_load_factor() * self.bucket_count() as f64 {
            let target = crate::primes::grow_bucket_count(
                self.bucket_count() as u64,
                required,
                self.max_load_factor(),
            );
            self.rehash(target as usize);
        }
    }

    /// The 64-bit hash of `key` under this map's hash function.
    pub fn hash_of(&self, key: &[u8]) -> u64 {
        self.table.hash_of(key)
    }

    /// Advances any in-flight hash-function migration by up to `n` entries
    /// (a no-op otherwise). Mutating operations already drain a bounded
    /// stride each; this lets idle callers drain faster.
    pub fn migrate(&mut self, n: usize) {
        self.table.migrate(n);
    }

    /// Drains an in-flight migration completely, so every entry is filed
    /// under the live hash function.
    pub fn finish_migration(&mut self) {
        self.table.finish_migration();
    }

    /// Whether a hash-function migration epoch is currently being drained.
    pub fn migration_in_flight(&self) -> bool {
        self.table.migration_in_flight()
    }

    /// Fraction of the current migration already drained: 1.0 when no
    /// migration is in flight, monotone non-decreasing while one is.
    pub fn migration_progress(&self) -> f64 {
        self.table.migration_progress()
    }

    /// Opportunistic migration drain for read-heavy callers.
    ///
    /// Historically the old epoch drained only from *mutating* operations,
    /// so a table that served nothing but `get`s after a degrade paid the
    /// dual-epoch probe on every lookup forever. Read-only lookups now
    /// record their starvation (each `get` that probes an open epoch bumps
    /// an internal relaxed counter); this call — a no-op when no migration
    /// is in flight — drains a couple of entries, or the *whole* epoch once
    /// the staleness threshold has been crossed. `get_mut` calls it
    /// automatically; `ShardedMap` calls it from plain `get`s whenever it
    /// can take a shard's write lock without blocking readers.
    pub fn drain_on_read(&mut self) {
        self.table.drain_on_read();
    }

    /// Read-only lookups served while a migration epoch was in flight
    /// (resets to 0 when the epoch drains).
    pub fn stale_reads(&self) -> u64 {
        self.table.stale_reads()
    }

    /// Registers this map's table metrics under `labels`: the
    /// `table_probe_len` histogram plus the `table_drain_ops`,
    /// `table_epochs_opened`, `table_epochs_finished`,
    /// `table_stale_probes`, `table_batch_chunks` and `table_batch_keys`
    /// counters. The registry reads the live shared handles; nothing is
    /// copied and the map's hot paths are unaffected.
    ///
    /// In `obs`-off builds the ids still register but stay at zero.
    ///
    /// # Errors
    ///
    /// Propagates [`sepe_obs::RegistryError`] on duplicate registration
    /// (export each map under distinct labels).
    pub fn export_table_metrics(
        &self,
        registry: &sepe_obs::Registry,
        labels: &[(&str, &str)],
    ) -> Result<(), sepe_obs::RegistryError> {
        self.table.obs().export(registry, labels)
    }
}

/// Width of a lookup/insert batch chunk: matches the widest hash kernel, and
/// eight outstanding prefetches sit comfortably within the fill buffers of
/// any recent core.
const BATCH_CHUNK: usize = 8;

impl<K, V, H> UnorderedMap<K, V, H>
where
    K: Eq + AsRef<[u8]>,
    H: HashBatch,
{
    /// Batched lookup: hashes up to eight keys with one [`HashBatch`] call,
    /// prefetches every target bucket, then probes. `result[i]` is the value
    /// for `keys[i]`, as if by [`UnorderedMap::get`].
    pub fn get_batch(&self, keys: &[&[u8]]) -> Vec<Option<&V>> {
        let mut results = Vec::with_capacity(keys.len());
        let mut hashes = [0u64; BATCH_CHUNK];
        for chunk in keys.chunks(BATCH_CHUNK) {
            if sepe_obs::enabled() {
                self.table.obs().batch_chunks.inc();
                self.table.obs().batch_keys.add(chunk.len() as u64);
            }
            let hashes = &mut hashes[..chunk.len()];
            self.table.hasher().hash_batch(chunk, hashes);
            for &h in hashes.iter() {
                self.table.prefetch_bucket(h);
            }
            for (&h, &key) in hashes.iter().zip(chunk) {
                results.push(
                    self.table
                        .find_hashed(h, key)
                        .map(|i| &self.table.get_kv(i).1),
                );
            }
        }
        results
    }

    /// Batched insert: reserves room for the whole batch, then hashes eight
    /// pairs at a time before probing. `result[i]` is the previous value for
    /// `pairs[i].0`, as if by [`UnorderedMap::insert`] in order.
    pub fn insert_batch(&mut self, pairs: Vec<(K, V)>) -> Vec<Option<V>> {
        // Reserving up front keeps the bucket array stable across the batch;
        // the cached hashes are bucket-count independent either way.
        self.reserve(pairs.len());
        let mut results = Vec::with_capacity(pairs.len());
        let mut hashes = [0u64; BATCH_CHUNK];
        let mut chunk: Vec<(K, V)> = Vec::with_capacity(BATCH_CHUNK);
        let mut iter = pairs.into_iter();
        loop {
            chunk.extend(iter.by_ref().take(BATCH_CHUNK));
            if chunk.is_empty() {
                break;
            }
            if sepe_obs::enabled() {
                self.table.obs().batch_chunks.inc();
                self.table.obs().batch_keys.add(chunk.len() as u64);
            }
            {
                let keyrefs: Vec<&[u8]> = chunk.iter().map(|(k, _)| k.as_ref()).collect();
                let hashes = &mut hashes[..keyrefs.len()];
                self.table.hasher().hash_batch(&keyrefs, hashes);
            }
            for &h in &hashes[..chunk.len()] {
                self.table.prefetch_bucket(h);
            }
            for (i, (key, value)) in chunk.drain(..).enumerate() {
                results.push(self.table.insert_unique_hashed(hashes[i], key, value));
            }
        }
        results
    }
}

impl<K, V, F, G> UnorderedMap<K, V, GuardedHash<F, G>>
where
    K: Eq + AsRef<[u8]>,
    F: ByteHash,
    G: ByteHash,
{
    /// The drift counters of the guarded hasher.
    pub fn drift_stats(&self) -> &GuardStats {
        self.hasher().stats()
    }

    /// The guarded hasher's current routing mode.
    pub fn guard_mode(&self) -> GuardMode {
        self.hasher().mode()
    }

    /// Registers the map's table metrics *and* its guard drift counters
    /// (`guard_in_format` / `guard_off_format`) under `labels`. The drift
    /// counters are exported as live reads of the shared [`GuardStats`],
    /// so a snapshot always agrees with [`UnorderedMap::drift_stats`].
    ///
    /// # Errors
    ///
    /// Propagates [`sepe_obs::RegistryError`] on duplicate registration.
    pub fn export_metrics(
        &self,
        registry: &sepe_obs::Registry,
        labels: &[(&str, &str)],
    ) -> Result<(), sepe_obs::RegistryError> {
        self.export_table_metrics(registry, labels)?;
        self.hasher()
            .stats_handle()
            .export_metrics(registry, labels)
    }
}

impl<K, V, F, G> UnorderedMap<K, V, GuardedHash<F, G>>
where
    K: Eq + AsRef<[u8]>,
    F: ByteHash + Clone,
    G: ByteHash + Clone,
{
    /// Degrades unconditionally: flips the hasher to fallback-for-all-keys
    /// and opens a migration epoch so stored entries re-file incrementally
    /// instead of in one stop-the-world rebuild. Lookups stay consistent
    /// throughout — they probe both epochs until the drain completes.
    pub fn degrade_now(&mut self) {
        if self.hasher().is_degraded() {
            return;
        }
        // Snapshot the pre-flip routing first: the epoch's entries were
        // filed under it. Both frozen copies are counter-silent, so an
        // amortized drain and an eager rebuild leave identical drift stats.
        let old = self.table.hasher().epoch_frozen(GuardMode::Guarded);
        self.table.hasher().degrade();
        let rehasher = self.table.hasher().epoch_frozen(GuardMode::Degraded);
        self.table.begin_migration(old, rehasher);
    }

    /// Checks the *windowed* drift counters against `policy` and degrades
    /// when the off-format rate of the current observation window exceeds
    /// the threshold; full clean windows are rolled away, so early clean
    /// traffic cannot mask a later drift burst. Returns whether a
    /// transition happened during this call. Idempotent once degraded.
    pub fn maybe_degrade(&mut self, policy: &DriftPolicy) -> bool {
        if self.hasher().is_degraded() {
            return false;
        }
        let (off, total) = self.drift_stats().window_counts();
        if policy.should_degrade(off, total) {
            self.degrade_now();
            return true;
        }
        if policy.window_full(total) {
            self.drift_stats().roll_window();
        }
        false
    }

    /// Takes one upward rung on the escalation ladder, opening a
    /// migration epoch so the re-keying is an incremental rehash:
    ///
    /// * `Specialized (Guarded)` → `GuardedFallback (Degraded)` — format
    ///   drift handling doubles as the first escalation step;
    /// * `Degraded` → `Keyed(seed)` — the fallback is unkeyed and
    ///   precomputable, so a detected storm moves to a secret seed;
    /// * `Keyed` → `Keyed(rotated seed)` — a storm *while keyed* means
    ///   the seed leaked; rotate it.
    ///
    /// Each call bumps the `table_escalations` counter (rotations also
    /// bump `table_seed_rotations`), which the adversarial harness checks
    /// against its own transcript.
    pub fn escalate_now(&mut self, seeds: &impl SeedSource) {
        let mode = self.guard_mode();
        // Pin the pre-transition routing first: stored entries were filed
        // under it, and for the keyed rung the frozen copy must keep the
        // *old* seed through the rotation below.
        let old = self.table.hasher().epoch_frozen(mode);
        let next = match mode {
            GuardMode::Guarded => {
                self.table.hasher().degrade();
                GuardMode::Degraded
            }
            GuardMode::Degraded => {
                self.table.hasher().escalate_keyed(seeds);
                GuardMode::Keyed
            }
            GuardMode::Keyed => {
                self.table.hasher().rotate_seed(seeds);
                if sepe_obs::enabled() {
                    self.table.obs().seed_rotations.inc();
                }
                GuardMode::Keyed
            }
        };
        let rehasher = self.table.hasher().epoch_frozen(next);
        self.table.begin_migration(old, rehasher);
        if sepe_obs::enabled() {
            self.table.obs().escalations.inc();
        }
    }

    /// Gathers one [`AttackSignals`] snapshot from the table's own
    /// accounting and escalates when `policy` has judged it stormy
    /// [`AttackPolicy::trip_streak`] times in a row. Returns whether an
    /// escalation happened during this call.
    ///
    /// Call this from the same maintenance cadence as
    /// [`UnorderedMap::maybe_degrade`]; the streak state makes the cadence
    /// itself part of the hysteresis.
    pub fn maybe_escalate(&mut self, policy: &AttackPolicy, seeds: &impl SeedSource) -> bool {
        let signals = self.attack_signals();
        if !policy.storm(&signals) {
            self.attack.storm_streak = 0;
            return false;
        }
        self.attack.quiet_streak = 0;
        self.attack.storm_streak += 1;
        if self.attack.storm_streak < policy.trip_streak.max(1) {
            return false;
        }
        self.attack.storm_streak = 0;
        self.escalate_now(seeds);
        true
    }

    /// Counts one calm observation and, after
    /// [`AttackPolicy::quiet_streak`] of them on an escalated rung,
    /// de-escalates all the way back to the specialized hasher (guard
    /// re-armed, counters reset, reservoir cleared) under an incremental
    /// migration. Returns whether the de-escalation happened.
    pub fn maybe_deescalate(&mut self, policy: &AttackPolicy) -> bool {
        if self.guard_mode() == GuardMode::Guarded {
            return false;
        }
        if policy.storm(&self.attack_signals()) {
            self.attack.quiet_streak = 0;
            return false;
        }
        self.attack.quiet_streak += 1;
        if self.attack.quiet_streak < policy.quiet_streak.max(1) {
            return false;
        }
        self.attack.quiet_streak = 0;
        let old = self.table.hasher().epoch_frozen(self.guard_mode());
        self.table.hasher().rearm();
        let rehasher = self.table.hasher().epoch_frozen(GuardMode::Guarded);
        self.table.begin_migration(old, rehasher);
        if sepe_obs::enabled() {
            self.table.obs().deescalations.inc();
        }
        true
    }

    /// The detector's view of the table right now. Public so harnesses
    /// and benchmarks can log exactly what the policy judged.
    ///
    /// Takes `&mut self` because reading the probe tail advances the
    /// per-tick histogram window: `probe_p99` covers the probes since the
    /// *previous* call, so a long-past storm cannot keep the signal hot.
    pub fn attack_signals(&mut self) -> AttackSignals {
        let (window_off, window_total) = self.drift_stats().window_counts();
        let probe_p99 = if sepe_obs::enabled() {
            let counts = self.table.obs().probe_len.bucket_counts();
            let p99 = windowed_quantile(&self.attack.probe_baseline, &counts, 0.99);
            self.attack.probe_baseline = counts;
            if let Some(p) = p99 {
                self.table
                    .obs()
                    .probe_tail
                    .store(p, std::sync::atomic::Ordering::Relaxed);
            }
            p99
        } else {
            None
        };
        AttackSignals {
            max_bucket_len: self.table.max_bucket_len(),
            len: self.len(),
            bucket_count: self.bucket_count(),
            window_off,
            window_total,
            probe_p99,
        }
    }

    /// Escalation-ladder rungs taken (lifetime, `obs` builds only).
    pub fn escalations(&self) -> u64 {
        self.table.obs().escalations.get()
    }

    /// Quiet-window de-escalations (lifetime, `obs` builds only).
    pub fn deescalations(&self) -> u64 {
        self.table.obs().deescalations.get()
    }

    /// Keyed-rung seed rotations (lifetime, `obs` builds only).
    pub fn seed_rotations(&self) -> u64 {
        self.table.obs().seed_rotations.get()
    }
}

impl<K, V, G> UnorderedMap<K, V, GuardedHash<sepe_core::SynthesizedHash, G>>
where
    K: Eq + AsRef<[u8]>,
    G: ByteHash + Clone,
{
    /// Re-synthesizes the specialized hash from the reservoir of off-format
    /// keys the guard sampled, re-arms the guard (counters and reservoir
    /// reset), and opens a migration epoch that re-files stored entries
    /// incrementally. Returns the typed outcome: [`Resynth::NoDrift`] (and
    /// changes nothing) when no off-format keys were observed,
    /// [`Resynth::SynthFailed`] (and changes nothing) when synthesis or
    /// plan validation rejected the widened pattern.
    pub fn resynthesize(&mut self) -> Resynth {
        // Snapshot the current routing before the plan is replaced: entries
        // are filed under it, whatever mode the map is in right now.
        let old = self.table.hasher().epoch_frozen(self.table.hasher().mode());
        let out = self.table.hasher_mut().resynthesize();
        if out.is_applied() {
            let rehasher = self.table.hasher().epoch_frozen(GuardMode::Guarded);
            self.table.begin_migration(old, rehasher);
        }
        out
    }

    /// Builds the request a background resynthesis job needs: the
    /// reservoir-widened pattern and its generation snapshot, stamped with
    /// `tag` (the supervisor's per-hasher breaker identity). `None` when no
    /// drift was sampled — there is nothing to enqueue.
    pub fn resynth_request(&self, tag: u64) -> Option<SynthRequest> {
        let (widened, snapshot_generation) = self.hasher().resynth_snapshot()?;
        let specialized = self.hasher().specialized();
        Some(SynthRequest {
            tag,
            widened,
            family: specialized.family(),
            isa: specialized.isa(),
            seed: specialized.seed(),
            snapshot_generation,
        })
    }

    /// Serves a drift event straight from a memoized [`PlanCache`]: when
    /// the widened pattern's plan is already cached (same format drifted
    /// before, here or on another container), the resynthesized hash is
    /// installed immediately — no supervisor round-trip, no search. The
    /// cached plan preserves this hasher's family/ISA/seed (plans are
    /// independent of all three). Returns whether a cached plan was
    /// applied; `false` means no drift was sampled or the cache missed,
    /// and the caller should enqueue [`UnorderedMap::resynth_request`] as
    /// usual.
    pub fn resynth_from_cache(&mut self, tag: u64, cache: &sepe_core::PlanCache) -> bool {
        let Some(request) = self.resynth_request(tag) else {
            return false;
        };
        let Some(plan) = cache.lookup(&request.widened, request.family) else {
            return false;
        };
        let hash = sepe_core::SynthesizedHash::new(plan, request.family, request.isa)
            .with_seed(request.seed);
        let ready = ReadyPlan {
            tag,
            hash,
            widened: request.widened,
            snapshot_generation: request.snapshot_generation,
            attempts: 0,
        };
        self.apply_resynthesized(&ready)
    }

    /// Applies a plan completed by a background resynthesis job: installs
    /// the supervisor-validated hash (unless the reservoir generation
    /// advanced past the job's snapshot — a stale result is discarded) and
    /// opens a migration epoch to re-file stored entries incrementally.
    /// The serving path only ever sees this cheap swap; the synthesis
    /// itself already happened off-thread. Returns whether the plan was
    /// installed.
    pub fn apply_resynthesized(&mut self, ready: &ReadyPlan) -> bool {
        let old = self.table.hasher().epoch_frozen(self.table.hasher().mode());
        if !self.table.hasher_mut().install_resynthesized(
            ready.hash.clone(),
            &ready.widened,
            ready.snapshot_generation,
        ) {
            return false;
        }
        let rehasher = self.table.hasher().epoch_frozen(GuardMode::Guarded);
        self.table.begin_migration(old, rehasher);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_baselines::StlHash;

    fn map() -> UnorderedMap<String, u32, StlHash> {
        UnorderedMap::with_hasher(StlHash::new())
    }

    #[test]
    fn insert_get_remove_cycle() {
        let mut m = map();
        assert!(m.is_empty());
        for i in 0..5000u32 {
            assert_eq!(m.insert(format!("key-{i:06}"), i), None);
        }
        assert_eq!(m.len(), 5000);
        for i in 0..5000u32 {
            assert_eq!(m.get(&format!("key-{i:06}")), Some(&i));
        }
        for i in (0..5000u32).step_by(2) {
            assert_eq!(m.remove(&format!("key-{i:06}")), Some(i));
        }
        assert_eq!(m.len(), 2500);
        for i in 0..5000u32 {
            let expect = if i % 2 == 0 { None } else { Some(&i) };
            assert_eq!(m.get(&format!("key-{i:06}")), expect);
        }
    }

    #[test]
    fn insert_replaces_existing() {
        let mut m = map();
        assert_eq!(m.insert("k".to_owned(), 1), None);
        assert_eq!(m.insert("k".to_owned(), 2), Some(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("k"), Some(&2));
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut m = map();
        m.insert("k".to_owned(), 10);
        *m.get_mut("k").expect("present") += 5;
        assert_eq!(m.get("k"), Some(&15));
    }

    #[test]
    fn load_factor_stays_bounded() {
        let mut m = map();
        for i in 0..10_000u32 {
            m.insert(format!("{i:08}"), i);
        }
        assert!(m.load_factor() <= m.max_load_factor() + f64::EPSILON);
        assert!(m.bucket_count() >= 10_000);
        assert!(crate::primes::is_prime(m.bucket_count() as u64));
    }

    #[test]
    fn bucket_lens_sum_to_len() {
        let mut m = map();
        for i in 0..3000u32 {
            m.insert(format!("{i:07}"), i);
        }
        let total: usize = (0..m.bucket_count()).map(|b| m.bucket_len(b)).sum();
        assert_eq!(total, m.len());
    }

    #[test]
    fn clear_resets() {
        let mut m = map();
        for i in 0..100u32 {
            m.insert(format!("{i}"), i);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get("50"), None);
        m.insert("50".to_owned(), 1);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn slots_are_reused_after_removal() {
        let mut m = map();
        for round in 0..10u32 {
            for i in 0..500u32 {
                m.insert(format!("{i:05}"), round);
            }
            for i in 0..500u32 {
                assert_eq!(m.remove(&format!("{i:05}")), Some(round));
            }
        }
        assert!(m.is_empty());
    }

    #[test]
    fn low_mixing_policy_is_honored() {
        let mut m: UnorderedMap<String, u32, StlHash> = UnorderedMap::with_hasher_and_policy(
            StlHash::new(),
            BucketPolicy::HighBits { discard_low: 32 },
        );
        for i in 0..1000u32 {
            m.insert(format!("{i:06}"), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&format!("{i:06}")), Some(&i));
        }
    }

    #[test]
    fn reserve_prevents_rehashes() {
        let mut m = map();
        m.reserve(10_000);
        let buckets = m.bucket_count();
        assert!(buckets >= 10_000);
        for i in 0..10_000u32 {
            m.insert(format!("{i:08}"), i);
        }
        assert_eq!(m.bucket_count(), buckets, "no rehash after reserve");
        assert_eq!(m.len(), 10_000);
    }

    fn guarded_ssn_map(
        family: sepe_core::Family,
    ) -> UnorderedMap<String, u32, GuardedHash<sepe_core::SynthesizedHash, StlHash>> {
        let pattern = sepe_core::regex::Regex::compile(r"\d{3}-\d{2}-\d{4}").expect("compiles");
        UnorderedMap::with_hasher(GuardedHash::from_pattern(&pattern, family, StlHash::new()))
    }

    #[test]
    fn drift_threshold_flips_the_table_to_the_fallback() {
        let mut m = guarded_ssn_map(sepe_core::Family::Pext);
        let policy = DriftPolicy {
            threshold: 0.10,
            min_samples: 16,
            ..DriftPolicy::default()
        };
        for i in 0..64u32 {
            m.insert(format!("{:03}-{:02}-{:04}", i, i % 100, i * 7 % 10_000), i);
        }
        assert!(!m.maybe_degrade(&policy), "no drift yet");
        assert_eq!(m.guard_mode(), GuardMode::Guarded);
        // 20% of subsequent traffic is off-format.
        for i in 0..40u32 {
            m.insert(format!("off-format key {i}"), i);
        }
        assert!(m.drift_stats().off_rate() > policy.threshold);
        assert!(m.maybe_degrade(&policy), "transition happens exactly once");
        assert_eq!(m.guard_mode(), GuardMode::Degraded);
        assert!(!m.maybe_degrade(&policy), "idempotent once degraded");
        // Every key is still found after the wholesale rehash: the cached
        // hashes were rebuilt under the fallback hasher.
        for i in 0..64u32 {
            let key = format!("{:03}-{:02}-{:04}", i, i % 100, i * 7 % 10_000);
            assert_eq!(m.get(key.as_str()), Some(&i), "{key}");
        }
        for i in 0..40u32 {
            assert_eq!(m.get(format!("off-format key {i}").as_str()), Some(&i));
        }
    }

    #[test]
    fn degraded_map_keeps_working_through_growth() {
        let mut m = guarded_ssn_map(sepe_core::Family::OffXor);
        for i in 0..100u32 {
            m.insert(format!("{i:03}-00-0000"), i);
        }
        m.degrade_now();
        // Inserts after the flip use the fallback hash; growth rehashes mix
        // cached pre-flip and post-flip hashes only if rebuild missed one.
        for i in 0..5_000u32 {
            m.insert(format!("post-{i:06}"), i);
        }
        for i in 0..100u32 {
            assert_eq!(m.get(format!("{i:03}-00-0000").as_str()), Some(&i));
        }
        for i in 0..5_000u32 {
            assert_eq!(m.get(format!("post-{i:06}").as_str()), Some(&i));
        }
    }

    #[test]
    fn resynthesis_rearms_the_guard_and_preserves_contents() {
        let mut m = guarded_ssn_map(sepe_core::Family::OffXor);
        for i in 0..50u32 {
            m.insert(format!("{i:03}-11-2222"), i);
        }
        // Drifted keys share the SSN shape except for a trailing letter.
        for i in 0..50u32 {
            m.insert(format!("{i:03}-11-222x"), i);
        }
        assert!(m.resynthesize().is_applied());
        assert_eq!(m.guard_mode(), GuardMode::Guarded);
        assert_eq!(m.drift_stats().total(), 0, "counters reset");
        // The widened guard accepts the previously drifted shape...
        assert!(m.hasher().guard().matches(b"123-11-222x"));
        // ...and every pair survived the rebuild.
        for i in 0..50u32 {
            assert_eq!(m.get(format!("{i:03}-11-2222").as_str()), Some(&i));
            assert_eq!(m.get(format!("{i:03}-11-222x").as_str()), Some(&i));
        }
    }

    #[test]
    fn resynthesis_without_drift_reports_no_drift() {
        let mut m = guarded_ssn_map(sepe_core::Family::OffXor);
        m.insert("123-45-6789".to_owned(), 1);
        assert_eq!(m.resynthesize(), sepe_core::guard::Resynth::NoDrift);
        assert!(m.resynth_request(0).is_none(), "nothing to enqueue either");
    }

    #[test]
    fn supervised_request_and_apply_round_trip() {
        use sepe_core::supervisor::{
            Enqueue, ExecMode, MockClock, ResynthSupervisor, SupervisorConfig,
        };
        use std::sync::Arc;
        let mut m = guarded_ssn_map(sepe_core::Family::OffXor);
        for i in 0..50u32 {
            m.insert(format!("{i:03}-11-2222"), i);
        }
        for i in 0..50u32 {
            m.insert(format!("{i:03}-11-222x"), i);
        }
        m.degrade_now();
        let request = m.resynth_request(7).expect("drift was sampled");
        assert_eq!(request.tag, 7);
        let clock = Arc::new(MockClock::new());
        let mut sup = ResynthSupervisor::with_runner(
            SupervisorConfig::default(),
            clock,
            sepe_core::supervisor::default_runner(),
            ExecMode::Inline,
        );
        assert_eq!(sup.enqueue(request), Enqueue::Accepted);
        sup.pump();
        let ready = sup.take_ready();
        assert_eq!(ready.len(), 1);
        assert!(m.apply_resynthesized(&ready[0]), "fresh result applies");
        assert_eq!(m.guard_mode(), GuardMode::Guarded);
        assert!(m.hasher().guard().matches(b"123-11-222x"));
        for i in 0..50u32 {
            assert_eq!(m.get(format!("{i:03}-11-2222").as_str()), Some(&i));
            assert_eq!(m.get(format!("{i:03}-11-222x").as_str()), Some(&i));
        }
        // Replaying the same (now stale) result is discarded harmlessly.
        assert!(!m.apply_resynthesized(&ready[0]), "stale result discarded");
    }

    #[test]
    fn cached_plan_resynthesizes_without_a_supervisor_round_trip() {
        let cache = sepe_core::PlanCache::new(8);
        let mut m = guarded_ssn_map(sepe_core::Family::OffXor);
        for i in 0..50u32 {
            m.insert(format!("{i:03}-11-2222"), i);
            m.insert(format!("{i:03}-11-222x"), i);
        }
        // Cold cache: the miss changes nothing and the caller would fall
        // back to the supervisor path.
        assert!(!m.resynth_from_cache(3, &cache), "cold cache misses");
        assert_eq!(cache.misses(), 1);
        // Prime the cache as a completed search would (same format drifted
        // elsewhere), then the same drift resolves synchronously.
        let request = m.resynth_request(3).expect("drift was sampled");
        cache.insert(
            &request.widened,
            request.family,
            sepe_core::synthesize(&request.widened, request.family),
        );
        assert!(m.resynth_from_cache(3, &cache), "warm cache applies");
        assert_eq!(cache.hits(), 1);
        assert_eq!(m.guard_mode(), GuardMode::Guarded);
        assert!(m.hasher().guard().matches(b"123-11-222x"));
        for i in 0..50u32 {
            assert_eq!(m.get(format!("{i:03}-11-2222").as_str()), Some(&i));
            assert_eq!(m.get(format!("{i:03}-11-222x").as_str()), Some(&i));
        }
        // Guard re-armed: no drift sampled, so nothing to serve.
        assert!(!m.resynth_from_cache(3, &cache), "no drift after re-arm");
    }

    #[test]
    fn get_batch_agrees_with_scalar_get() {
        let mut m = guarded_ssn_map(sepe_core::Family::Pext);
        for i in 0..500u32 {
            m.insert(format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i), i);
        }
        let queries: Vec<String> = (0..137u32)
            .map(|i| {
                if i % 4 == 1 {
                    format!("missing query {i}")
                } else {
                    format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i)
                }
            })
            .collect();
        let refs: Vec<&[u8]> = queries.iter().map(String::as_bytes).collect();
        let batched = m.get_batch(&refs);
        assert_eq!(batched.len(), queries.len());
        for (q, got) in queries.iter().zip(batched) {
            assert_eq!(got, m.get(q.as_str()), "{q}");
        }
    }

    #[test]
    fn insert_batch_agrees_with_scalar_insert() {
        let mut batched = guarded_ssn_map(sepe_core::Family::OffXor);
        let mut scalar = guarded_ssn_map(sepe_core::Family::OffXor);
        // Duplicates inside the batch (i % 150) exercise the replace path;
        // off-format keys exercise the guard inside the batch hasher.
        let pairs: Vec<(String, u32)> = (0..300u32)
            .map(|i| {
                let key = if i % 7 == 3 {
                    format!("off format {}", i % 150)
                } else {
                    format!("{:03}-{:02}-{:04}", i % 150, i % 100, i % 150)
                };
                (key, i)
            })
            .collect();
        let scalar_results: Vec<Option<u32>> = pairs
            .iter()
            .map(|(k, v)| scalar.insert(k.clone(), *v))
            .collect();
        let batch_results = batched.insert_batch(pairs.clone());
        assert_eq!(batch_results, scalar_results);
        assert_eq!(batched.len(), scalar.len());
        for (k, _) in &pairs {
            assert_eq!(batched.get(k.as_str()), scalar.get(k.as_str()), "{k}");
        }
    }

    #[test]
    fn batch_ops_work_through_growth_and_plain_hashers() {
        let mut m = map();
        let pairs: Vec<(String, u32)> = (0..10_000u32).map(|i| (format!("{i:08}"), i)).collect();
        let prev = m.insert_batch(pairs);
        assert!(prev.iter().all(Option::is_none));
        assert_eq!(m.len(), 10_000);
        let queries: Vec<String> = (0..10_000u32)
            .step_by(97)
            .map(|i| format!("{i:08}"))
            .collect();
        let refs: Vec<&[u8]> = queries.iter().map(String::as_bytes).collect();
        for (q, got) in queries.iter().zip(m.get_batch(&refs)) {
            assert_eq!(got.copied(), q.parse::<u32>().ok(), "{q}");
        }
    }

    #[test]
    fn degradation_migrates_incrementally_not_stop_the_world() {
        let mut m = guarded_ssn_map(sepe_core::Family::OffXor);
        for i in 0..500u32 {
            m.insert(format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i), i);
        }
        assert!((m.migration_progress() - 1.0).abs() < 1e-12);
        m.degrade_now();
        assert!(m.migration_in_flight(), "degrade opens an epoch");
        assert!(m.migration_progress() < 1.0);
        // Every key is visible mid-migration, from either epoch.
        for i in 0..500u32 {
            let key = format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i);
            assert_eq!(m.get(key.as_str()), Some(&i), "{key} mid-migration");
        }
        // Mutating traffic drains the epoch a bounded stride at a time.
        let mut last = m.migration_progress();
        let mut i = 0u32;
        while m.migration_in_flight() {
            m.insert(format!("new-{i:05}"), i);
            let now = m.migration_progress();
            assert!(now >= last, "progress is monotone");
            last = now;
            i += 1;
        }
        assert!(i > 1, "the drain took more than one operation");
        for i in 0..500u32 {
            let key = format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i);
            assert_eq!(m.get(key.as_str()), Some(&i), "{key} after drain");
        }
    }

    #[test]
    fn removals_reach_entries_still_in_the_old_epoch() {
        let mut m = guarded_ssn_map(sepe_core::Family::Pext);
        for i in 0..300u32 {
            m.insert(format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i), i);
        }
        m.degrade_now();
        assert!(m.migration_in_flight());
        // Remove from the tail of the key space so some targets are still
        // in the old epoch when their removal arrives.
        for i in (0..300u32).rev() {
            let key = format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i);
            assert_eq!(m.remove(key.as_str()), Some(i), "{key}");
        }
        assert!(m.is_empty());
        assert!(!m.migration_in_flight(), "empty old epoch is dropped");
    }

    #[test]
    fn finish_migration_drains_explicitly() {
        let mut m = guarded_ssn_map(sepe_core::Family::Naive);
        for i in 0..200u32 {
            m.insert(format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i), i);
        }
        m.degrade_now();
        m.migrate(7);
        assert!(m.migration_in_flight());
        m.finish_migration();
        assert!(!m.migration_in_flight());
        assert!((m.migration_progress() - 1.0).abs() < 1e-12);
        let total: usize = (0..m.bucket_count()).map(|b| m.bucket_len(b)).sum();
        assert_eq!(total, m.len(), "all entries re-filed in the live epoch");
    }

    #[test]
    fn growth_mid_migration_keeps_both_epochs_consistent() {
        let mut m = guarded_ssn_map(sepe_core::Family::OffXor);
        for i in 0..100u32 {
            m.insert(format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i), i);
        }
        m.degrade_now();
        // Force a live-epoch resize while most entries still sit in the old
        // epoch; old-epoch chains must survive untouched.
        m.rehash(4099);
        for i in 0..100u32 {
            let key = format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i);
            assert_eq!(
                m.get(key.as_str()),
                Some(&i),
                "{key} after mid-migration rehash"
            );
        }
        m.finish_migration();
        for i in 0..100u32 {
            let key = format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i);
            assert_eq!(m.get(key.as_str()), Some(&i), "{key} after drain");
        }
    }

    #[test]
    fn sliding_window_catches_drift_after_a_long_clean_prefix() {
        // Regression: with lifetime counters, 10 000 clean observations
        // pinned the off-rate so low that sustained 100% off-format traffic
        // could never push it over a 10% threshold until the table had
        // absorbed over a thousand bad keys. The windowed policy reacts
        // within ~one window regardless of history length.
        let mut m = guarded_ssn_map(sepe_core::Family::OffXor);
        let policy = DriftPolicy {
            threshold: 0.10,
            min_samples: 64,
            window: 512,
        };
        for i in 0..5_000u32 {
            m.insert(format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i), i);
            assert!(!m.maybe_degrade(&policy), "clean traffic never degrades");
        }
        let clean_total = m.drift_stats().total();
        let mut flipped_after = None;
        for i in 0..2_000u32 {
            m.insert(format!("drifted key {i}"), i);
            if m.maybe_degrade(&policy) {
                flipped_after = Some(i + 1);
                break;
            }
        }
        let flipped_after = flipped_after.expect("windowed policy must degrade");
        // Lifetime rate at the flip stays under the threshold — the old
        // lifetime-counter policy would still be waiting.
        let stats = m.drift_stats();
        assert!(
            stats.off_rate() < policy.threshold,
            "lifetime rate {} should still be below the threshold (clean prefix {clean_total})",
            stats.off_rate()
        );
        assert!(
            u64::from(flipped_after) * 2 <= policy.window * 2,
            "flip came within ~one window of off-format traffic, got {flipped_after}"
        );
        assert_eq!(m.guard_mode(), GuardMode::Degraded);
    }

    #[test]
    fn read_only_lookups_drain_a_starving_migration() {
        // Regression: `RawTable::migrate` used to run only from mutating
        // ops, so a read-heavy table kept its old epoch (and paid the
        // dual-epoch probe) forever. Lookup-shaped calls with mutable
        // access now drain a small stride each.
        let mut m = guarded_ssn_map(sepe_core::Family::OffXor);
        for i in 0..300u32 {
            m.insert(format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i), i);
        }
        m.degrade_now();
        assert!(m.migration_in_flight());
        let mut last = m.migration_progress();
        let mut lookups = 0u32;
        while m.migration_in_flight() && lookups < 100_000 {
            let key = format!(
                "{:03}-{:02}-{:04}",
                lookups % 1000,
                lookups % 100,
                lookups % 300
            );
            let _ = m.get_mut(key.as_str());
            let now = m.migration_progress();
            assert!(now >= last, "progress is monotone under lookups");
            last = now;
            lookups += 1;
        }
        assert!(
            !m.migration_in_flight(),
            "read-only traffic drained the epoch"
        );
        for i in 0..300u32 {
            let key = format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i);
            assert_eq!(m.get(key.as_str()), Some(&i), "{key} after read drain");
        }
    }

    #[test]
    fn stale_reads_trigger_a_full_drain() {
        // Pure `&self` gets cannot drain, but they record starvation; once
        // the staleness threshold is crossed, the next drain opportunity
        // finishes the epoch outright instead of amortizing.
        let mut m = guarded_ssn_map(sepe_core::Family::Pext);
        for i in 0..200u32 {
            m.insert(format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i), i);
        }
        m.degrade_now();
        assert!(m.migration_in_flight());
        assert_eq!(m.stale_reads(), 0);
        for round in 0..6u32 {
            for i in 0..200u32 {
                let key = format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i);
                assert_eq!(m.get(key.as_str()), Some(&i), "round {round} {key}");
            }
        }
        assert!(
            m.migration_in_flight(),
            "immutable gets alone cannot relink chains"
        );
        assert!(m.stale_reads() >= 1024, "starvation was recorded");
        m.drain_on_read();
        assert!(
            !m.migration_in_flight(),
            "a stale epoch is drained outright, not stride by stride"
        );
        assert_eq!(m.stale_reads(), 0, "counter resets with the epoch");
    }

    #[test]
    fn matches_std_hashmap_under_random_ops() {
        // Model-based check against std::collections::HashMap.
        let mut ours = map();
        let mut model: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        for step in 0..20_000u32 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = format!("{:04}", (state >> 33) % 3000);
            match state % 3 {
                0 => {
                    assert_eq!(ours.insert(key.clone(), step), model.insert(key, step));
                }
                1 => {
                    assert_eq!(ours.get(&key), model.get(&key));
                }
                _ => {
                    assert_eq!(ours.remove(&key), model.remove(&key));
                }
            }
            assert_eq!(ours.len(), model.len());
        }
        let mut ours_sorted: Vec<(String, u32)> =
            ours.iter().map(|(k, v)| (k.clone(), *v)).collect();
        ours_sorted.sort();
        let mut model_sorted: Vec<(String, u32)> =
            model.iter().map(|(k, v)| (k.clone(), *v)).collect();
        model_sorted.sort();
        assert_eq!(ours_sorted, model_sorted);
    }

    #[test]
    fn escalation_ladder_climbs_rung_by_rung() {
        let mut m = guarded_ssn_map(sepe_core::Family::OffXor);
        let seeds = sepe_core::hash::keyed::FixedSeedSource::new(0x5E9E);
        for i in 0..200u32 {
            m.insert(format!("{:03}-{:02}-{:04}", i % 900, i % 90, i), i);
        }
        assert_eq!(m.guard_mode(), GuardMode::Guarded);
        m.escalate_now(&seeds);
        assert_eq!(m.guard_mode(), GuardMode::Degraded);
        m.escalate_now(&seeds);
        assert_eq!(m.guard_mode(), GuardMode::Keyed);
        let seed_before = m.hasher().current_seed();
        m.escalate_now(&seeds);
        assert_eq!(m.guard_mode(), GuardMode::Keyed);
        assert_ne!(m.hasher().current_seed(), seed_before, "rotation rung");
        if sepe_obs::enabled() {
            assert_eq!(m.escalations(), 3);
            assert_eq!(m.seed_rotations(), 1);
        }
        // Contents survive every rung; lookups probe both epochs.
        for i in 0..200u32 {
            let key = format!("{:03}-{:02}-{:04}", i % 900, i % 90, i);
            assert_eq!(m.get(&key), Some(&i), "{key} lost during escalation");
        }
        m.finish_migration();
        assert_eq!(m.len(), 200);
    }

    #[test]
    fn storm_trips_the_detector_and_quiet_rearms_it() {
        let mut m = guarded_ssn_map(sepe_core::Family::Pext);
        let seeds = sepe_core::hash::keyed::FixedSeedSource::new(7);
        let policy = AttackPolicy {
            min_len: 32,
            trip_streak: 2,
            quiet_streak: 2,
            ..AttackPolicy::default()
        };
        // Benign fill: detector stays quiet on every tick.
        for i in 0..200u32 {
            m.insert(format!("{:03}-{:02}-{:04}", i % 900, i % 90, i), i);
            assert!(!m.maybe_escalate(&policy, &seeds));
        }
        assert_eq!(m.guard_mode(), GuardMode::Guarded);
        // Flood one bucket, brute-forcing collisions against the live
        // (adversary-computable) hash — family-agnostic forgery.
        let target = m.hash_of(b"000-00-0000!") % m.bucket_count() as u64;
        let mut attack_keys = Vec::new();
        let mut i = 0u64;
        while attack_keys.len() < 48 {
            let key = format!("atk-{i:016x}");
            if m.hash_of(key.as_bytes()) % m.bucket_count() as u64 == target {
                m.insert(key.clone(), 0);
                attack_keys.push(key);
            }
            i += 1;
        }
        // First stormy tick arms the streak, second trips it.
        assert!(!m.maybe_escalate(&policy, &seeds));
        assert!(m.maybe_escalate(&policy, &seeds));
        assert_eq!(m.guard_mode(), GuardMode::Degraded);
        // The storm subsides: the crafted keys age out of the table and
        // the escalation migration drains. Quiet ticks then de-escalate.
        for key in &attack_keys {
            m.remove(key);
        }
        m.finish_migration();
        assert!(!m.maybe_deescalate(&policy));
        assert!(m.maybe_deescalate(&policy));
        assert_eq!(m.guard_mode(), GuardMode::Guarded);
        m.finish_migration();
        if sepe_obs::enabled() {
            assert_eq!(m.escalations(), 1);
            assert_eq!(m.deescalations(), 1);
        }
        // The drift counters were reset by the re-arm.
        assert_eq!(m.drift_stats().total(), 0);
    }
}
