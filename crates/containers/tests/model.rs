//! Model-based property tests: the bucketed containers must behave exactly
//! like `std::collections` reference models under arbitrary operation
//! sequences, for both index policies.

use proptest::collection::vec;
use proptest::prelude::*;
use sepe_baselines::StlHash;
use sepe_containers::{BucketPolicy, UnorderedMap, UnorderedMultiMap, UnorderedSet};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Get(u16),
    Remove(u16),
    Clear,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 500, v)),
        4 => any::<u16>().prop_map(|k| Op::Get(k % 500)),
        4 => any::<u16>().prop_map(|k| Op::Remove(k % 500)),
        1 => Just(Op::Clear),
    ]
}

fn key_of(k: u16) -> String {
    format!("key-{k:05}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn map_matches_std_model(ops in vec(arb_op(), 1..400), low_mixing in any::<bool>()) {
        let policy = if low_mixing {
            BucketPolicy::HighBits { discard_low: 32 }
        } else {
            BucketPolicy::Modulo
        };
        let mut ours: UnorderedMap<String, u32, StlHash> =
            UnorderedMap::with_hasher_and_policy(StlHash::new(), policy);
        let mut model: HashMap<String, u32> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(ours.insert(key_of(k), v), model.insert(key_of(k), v));
                }
                Op::Get(k) => {
                    prop_assert_eq!(ours.get(&key_of(k)), model.get(&key_of(k)));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(ours.remove(&key_of(k)), model.remove(&key_of(k)));
                }
                Op::Clear => {
                    ours.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(ours.len(), model.len());
        }
        // Bucket invariants hold at the end.
        let total: usize = (0..ours.bucket_count()).map(|b| ours.bucket_len(b)).sum();
        prop_assert_eq!(total, ours.len());
        prop_assert!(ours.load_factor() <= ours.max_load_factor() + f64::EPSILON);
    }

    #[test]
    fn multimap_matches_count_model(ops in vec(arb_op(), 1..300)) {
        let mut ours: UnorderedMultiMap<String, u32, StlHash> =
            UnorderedMultiMap::with_hasher(StlHash::new());
        let mut model: HashMap<String, Vec<u32>> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    ours.insert(key_of(k), v);
                    model.entry(key_of(k)).or_default().push(v);
                }
                Op::Get(k) => {
                    let key = key_of(k);
                    prop_assert_eq!(
                        ours.count(&key),
                        model.get(&key).map_or(0, Vec::len)
                    );
                }
                Op::Remove(k) => {
                    let key = key_of(k);
                    let expected = model.remove(&key).map_or(0, |v| v.len());
                    prop_assert_eq!(ours.remove_all(&key), expected);
                }
                Op::Clear => {
                    ours.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(ours.len(), model.values().map(Vec::len).sum::<usize>());
        }
    }

    #[test]
    fn set_matches_std_model(keys in vec(any::<u16>(), 1..300)) {
        let mut ours: UnorderedSet<String, StlHash> = UnorderedSet::with_hasher(StlHash::new());
        let mut model: std::collections::HashSet<String> = std::collections::HashSet::new();
        for k in keys {
            let key = key_of(k % 100);
            prop_assert_eq!(ours.insert(key.clone()), model.insert(key));
        }
        prop_assert_eq!(ours.len(), model.len());
        for k in 0..100u16 {
            prop_assert_eq!(ours.contains(&key_of(k)), model.contains(&key_of(k)));
        }
    }
}
