//! Property tests: a [`ShardedMap`] must be observably equivalent to a
//! single guarded [`UnorderedMap`] fed the identical operation sequence —
//! same contents, same lookup answers, same drift counters (the shard
//! router is counter-silent), and a sane aggregate migration progress —
//! for any shard count and for batches that straddle shard boundaries.

use proptest::collection::vec;
use proptest::prelude::*;
use sepe_baselines::StlHash;
use sepe_containers::{ShardedMap, UnorderedMap};
use sepe_core::guard::GuardedHash;
use sepe_core::hash::SynthesizedHash;
use sepe_core::regex::Regex;
use sepe_core::synth::Family;
use std::collections::BTreeMap;

type Guarded = GuardedHash<SynthesizedHash, StlHash>;
type Sharded = ShardedMap<String, u32, SynthesizedHash, StlHash>;
type Single = UnorderedMap<String, u32, Guarded>;

const PATTERN: &str = r"\d{3}-\d{2}-\d{4}";

fn guarded() -> Guarded {
    let pattern = Regex::compile(PATTERN).expect("pattern compiles");
    let hash = SynthesizedHash::from_pattern(&pattern, Family::Pext);
    GuardedHash::new(&pattern, hash, StlHash::new())
}

fn pair() -> (Sharded, Single) {
    (
        ShardedMap::with_hasher(guarded(), 8),
        UnorderedMap::with_hasher(guarded()),
    )
}

/// Mostly in-format keys with a deterministic off-format minority, so the
/// guard sees both routes.
fn key_of(k: u16) -> String {
    let k = k % 600;
    if k.is_multiple_of(7) {
        format!("off-format-{k}")
    } else {
        format!("{:03}-{:02}-{:04}", k % 1000, k % 100, k)
    }
}

fn contents(m: &Sharded) -> BTreeMap<String, u32> {
    let mut out = BTreeMap::new();
    m.for_each(|k, v| {
        out.insert(k.clone(), *v);
    });
    out
}

fn single_contents(m: &Single) -> BTreeMap<String, u32> {
    m.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Get(u16),
    Remove(u16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        3 => any::<u16>().prop_map(Op::Get),
        3 => any::<u16>().prop_map(Op::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_matches_unsharded_twin(ops in vec(arb_op(), 1..300)) {
        let (sharded, mut single) = pair();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(
                        sharded.insert(key_of(k), v),
                        single.insert(key_of(k), v)
                    );
                }
                Op::Get(k) => {
                    let key = key_of(k);
                    prop_assert_eq!(
                        sharded.get(key.as_str()),
                        single.get(key.as_str()).copied()
                    );
                    // Mirror the sharded read-path drain so migration-drain
                    // hashing stays identical on both sides (both are
                    // silent rehashers, but entry counts must track).
                    single.drain_on_read();
                }
                Op::Remove(k) => {
                    let key = key_of(k);
                    prop_assert_eq!(sharded.remove(key.as_str()), single.remove(key.as_str()));
                }
            }
            prop_assert_eq!(sharded.len(), single.len());
        }
        prop_assert_eq!(contents(&sharded), single_contents(&single));
        // The router hashes silently, so shard-summed drift counters equal
        // the single map's for the same operation sequence.
        let (in_f, off_f) = sharded.drift_counts();
        prop_assert_eq!(in_f, single.drift_stats().in_format());
        prop_assert_eq!(off_f, single.drift_stats().off_format());
    }

    #[test]
    fn batches_straddling_shards_agree(
        inserts in vec((any::<u16>(), any::<u32>()), 1..200),
        queries in vec(any::<u16>(), 1..200),
    ) {
        let (sharded, mut single) = pair();
        let pairs: Vec<(String, u32)> =
            inserts.iter().map(|&(k, v)| (key_of(k), v)).collect();
        // Batch against batch: both sides hash each key once per batch op.
        let ours = sharded.insert_batch(pairs.clone());
        let theirs = single.insert_batch(pairs);
        prop_assert_eq!(ours, theirs);

        let keys: Vec<String> = queries.iter().map(|&k| key_of(k)).collect();
        let refs: Vec<&[u8]> = keys.iter().map(String::as_bytes).collect();
        let ours = sharded.get_batch(&refs);
        let theirs: Vec<Option<u32>> =
            single.get_batch(&refs).into_iter().map(|v| v.copied()).collect();
        prop_assert_eq!(ours, theirs);

        prop_assert_eq!(contents(&sharded), single_contents(&single));
        let (in_f, off_f) = sharded.drift_counts();
        prop_assert_eq!(in_f, single.drift_stats().in_format());
        prop_assert_eq!(off_f, single.drift_stats().off_format());
    }

    #[test]
    fn contents_agree_across_shard_degradations(
        ops in vec(arb_op(), 1..250),
        degrade_at in vec(any::<u16>(), 1..4),
    ) {
        // Degrading arbitrary shards mid-stream (and the twin alongside)
        // must never change what lookups observe. Counters are *not*
        // compared here: a degraded hasher stops counting, and which keys
        // land in a degraded shard is exactly what sharding changes.
        let (sharded, mut single) = pair();
        let marks: Vec<usize> = degrade_at.iter().map(|&d| d as usize % ops.len()).collect();
        for (step, op) in ops.into_iter().enumerate() {
            if let Some(pos) = marks.iter().position(|&m| m == step) {
                sharded.degrade_shard(pos * 2 % sharded.shard_count());
                single.degrade_now();
            }
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(
                        sharded.insert(key_of(k), v),
                        single.insert(key_of(k), v)
                    );
                }
                Op::Get(k) => {
                    let key = key_of(k);
                    prop_assert_eq!(
                        sharded.get(key.as_str()),
                        single.get(key.as_str()).copied()
                    );
                }
                Op::Remove(k) => {
                    let key = key_of(k);
                    prop_assert_eq!(sharded.remove(key.as_str()), single.remove(key.as_str()));
                }
            }
        }
        prop_assert!(sharded.migration_progress() >= 0.0);
        prop_assert!(sharded.migration_progress() <= 1.0);
        sharded.finish_migrations();
        single.finish_migration();
        prop_assert_eq!(sharded.migrations_in_flight(), 0);
        prop_assert!((sharded.migration_progress() - 1.0).abs() < f64::EPSILON);
        prop_assert_eq!(contents(&sharded), single_contents(&single));
    }

    #[test]
    fn migration_progress_aggregates_monotonically(
        seed_keys in vec(any::<u16>(), 50..200),
        budget in 1usize..40,
    ) {
        let sharded = ShardedMap::with_hasher(guarded(), 4);
        for (i, &k) in seed_keys.iter().enumerate() {
            sharded.insert(key_of(k), i as u32);
        }
        sharded.degrade_all();
        let mut last = sharded.migration_progress();
        prop_assert!(last >= 0.0);
        let mut spins = 0u32;
        while sharded.migrations_in_flight() > 0 && spins < 100_000 {
            sharded.migrate(budget);
            let now = sharded.migration_progress();
            prop_assert!(now >= last, "aggregate progress is monotone");
            last = now;
            spins += 1;
        }
        prop_assert_eq!(sharded.migrations_in_flight(), 0);
        prop_assert!((sharded.migration_progress() - 1.0).abs() < f64::EPSILON);
        // Nothing was lost in the drain.
        for (i, &k) in seed_keys.iter().enumerate() {
            let last_value = seed_keys
                .iter()
                .rposition(|&other| key_of(other) == key_of(k))
                .unwrap_or(i) as u32;
            prop_assert_eq!(sharded.get(key_of(k).as_str()), Some(last_value));
        }
    }
}
