//! Deterministic stress runs: large mixed workloads against the reference
//! model, exercising growth, slot reuse and rehash interplay at scale.

use sepe_baselines::StlHash;
use sepe_containers::{BucketPolicy, UnorderedMap, UnorderedMultiMap};
use std::collections::HashMap;

/// Simple LCG so the workload is deterministic without pulling in a crate.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

#[test]
fn hundred_thousand_mixed_ops_match_the_model() {
    let mut ours: UnorderedMap<String, u64, StlHash> = UnorderedMap::with_hasher(StlHash::new());
    let mut model: HashMap<String, u64> = HashMap::new();
    let mut rng = Lcg(42);
    for step in 0..100_000u64 {
        let key = format!("stress-{:05}", rng.next() % 20_000);
        match rng.next() % 10 {
            0..=4 => {
                assert_eq!(ours.insert(key.clone(), step), model.insert(key, step));
            }
            5..=7 => {
                assert_eq!(ours.get(&key), model.get(&key), "step {step}");
            }
            8 => {
                assert_eq!(ours.remove(&key), model.remove(&key));
            }
            _ => {
                assert_eq!(ours.contains_key(&key), model.contains_key(&key));
            }
        }
    }
    assert_eq!(ours.len(), model.len());
    // Invariants after the storm.
    let total: usize = (0..ours.bucket_count()).map(|b| ours.bucket_len(b)).sum();
    assert_eq!(total, ours.len());
    assert!(ours.load_factor() <= ours.max_load_factor() + f64::EPSILON);
}

#[test]
fn explicit_rehash_preserves_content_mid_workload() {
    let mut ours: UnorderedMap<String, u64, StlHash> = UnorderedMap::with_hasher(StlHash::new());
    let mut model: HashMap<String, u64> = HashMap::new();
    let mut rng = Lcg(7);
    for step in 0..20_000u64 {
        let key = format!("{:06}", rng.next() % 5000);
        if rng.next().is_multiple_of(3) {
            ours.remove(&key);
            model.remove(&key);
        } else {
            ours.insert(key.clone(), step);
            model.insert(key, step);
        }
        if step.is_multiple_of(2_500) {
            // Force rehashes both up and down in the middle of the run.
            let target = if step.is_multiple_of(5_000) {
                17
            } else {
                50_021
            };
            ours.rehash(target);
            assert!(ours.bucket_count() >= target.min(17));
        }
    }
    assert_eq!(ours.len(), model.len());
    for (k, v) in &model {
        assert_eq!(ours.get(k.as_str()), Some(v));
    }
}

#[test]
fn multimap_under_heavy_duplication() {
    let mut m: UnorderedMultiMap<String, u64, StlHash> =
        UnorderedMultiMap::with_hasher(StlHash::new());
    let mut expected: HashMap<String, u64> = HashMap::new();
    let mut rng = Lcg(99);
    for i in 0..50_000u64 {
        let key = format!("dup-{:02}", rng.next() % 50);
        m.insert(key.clone(), i);
        *expected.entry(key).or_insert(0) += 1;
    }
    assert_eq!(m.len(), 50_000);
    for (k, &count) in &expected {
        assert_eq!(m.count(k.as_str()), count as usize, "{k}");
    }
    // Drain half the keys entirely.
    let mut removed = 0;
    for k in expected.keys().take(25) {
        removed += m.remove_all(k.as_str());
    }
    assert_eq!(m.len(), 50_000 - removed);
}

#[test]
fn low_mixing_policy_survives_growth_cycles() {
    let mut m: UnorderedMap<String, u32, StlHash> = UnorderedMap::with_hasher_and_policy(
        StlHash::new(),
        BucketPolicy::HighBits { discard_low: 40 },
    );
    for round in 0..4u32 {
        for i in 0..10_000u32 {
            m.insert(format!("{round}-{i:06}"), i);
        }
    }
    assert_eq!(m.len(), 40_000);
    for round in 0..4u32 {
        for i in (0..10_000u32).step_by(97) {
            assert_eq!(m.get(&format!("{round}-{i:06}")), Some(&i));
        }
    }
}
