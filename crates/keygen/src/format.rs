//! The key formats of the evaluation (Section 4, "Keys").
//!
//! Each format maps an integer *index* within its key space to a key
//! string. Indices are what the distributions of [`crate::dist`] draw, so
//! "ascending", "uniform" and "normal" describe the index, exactly as the
//! paper's incremental distribution produces `000-00-0000`, `000-00-0001`,
//! … for SSNs.

/// The constant URL1 prefix (23 characters, as in the paper).
pub const URL1_PREFIX: &str = "https://www.example.us/";

/// The constant URL2 prefix (36 characters, as in the paper).
pub const URL2_PREFIX: &str = "https://www.longer-example-site.us/p";

/// Number of variable `[a-z0-9]` characters in the URL formats.
const URL_SUFFIX_VARIABLE: usize = 20;

/// A key format of the SEPE evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyFormat {
    /// US Social Security numbers: `\d{3}-\d{2}-\d{4}` (11 bytes).
    Ssn,
    /// Brazilian CPF numbers: `\d{3}\.\d{3}\.\d{3}-\d{2}` (14 bytes).
    Cpf,
    /// MAC addresses: `([0-9a-f]{2}-){5}[0-9a-f]{2}` (17 bytes).
    Mac,
    /// Dotted digit triples: `(([0-9]{3})\.){3}[0-9]{3}` (15 bytes). As in
    /// the paper's regex, each group ranges over 000–999, not 0–255 — which
    /// is what trips the octet-parsing Gpt baseline (Section 4.2).
    Ipv4,
    /// IPv6 addresses: `([0-9a-f]{4}:){7}[0-9a-f]{4}` (39 bytes).
    Ipv6,
    /// 100-digit integers: `[0-9]{100}`.
    Ints,
    /// Constant 23-character URL plus `[a-z0-9]{20}\.html` (48 bytes).
    Url1,
    /// Constant 36-character URL plus `[a-z0-9]{20}\.html` (61 bytes).
    Url2,
    /// Four-digit integers (`\d{4}`): the RQ7 worst-case key type.
    FourDigits,
    /// Hyphenated lowercase-hex UUIDs (`8-4-4-4-12`, 36 bytes). Not part
    /// of the paper's grid — an extension format showcasing a wide,
    /// separator-rich key.
    Uuid,
    /// `n` digits with no constant subsequences: the synthesis-complexity
    /// workload of RQ6 (Figure 16).
    Digits(
        /// Number of digit characters.
        usize,
    ),
}

impl KeyFormat {
    /// The eight key formats of the main evaluation grid, in the paper's
    /// order.
    pub const EVALUATED: [KeyFormat; 8] = [
        KeyFormat::Ssn,
        KeyFormat::Cpf,
        KeyFormat::Mac,
        KeyFormat::Ipv4,
        KeyFormat::Ipv6,
        KeyFormat::Ints,
        KeyFormat::Url1,
        KeyFormat::Url2,
    ];

    /// The format name as used in the paper's tables and figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KeyFormat::Ssn => "SSN",
            KeyFormat::Cpf => "CPF",
            KeyFormat::Mac => "MAC",
            KeyFormat::Ipv4 => "IPv4",
            KeyFormat::Ipv6 => "IPv6",
            KeyFormat::Ints => "INTS",
            KeyFormat::Url1 => "URL1",
            KeyFormat::Url2 => "URL2",
            KeyFormat::FourDigits => "INT4",
            KeyFormat::Uuid => "UUID",
            KeyFormat::Digits(_) => "DIGITS",
        }
    }

    /// The key length in bytes (all formats are fixed-length).
    #[must_use]
    pub fn len(self) -> usize {
        match self {
            KeyFormat::Ssn => 11,
            KeyFormat::Cpf => 14,
            KeyFormat::Mac => 17,
            KeyFormat::Ipv4 => 15,
            KeyFormat::Ipv6 => 39,
            KeyFormat::Ints => 100,
            KeyFormat::Url1 => URL1_PREFIX.len() + URL_SUFFIX_VARIABLE + 5,
            KeyFormat::Url2 => URL2_PREFIX.len() + URL_SUFFIX_VARIABLE + 5,
            KeyFormat::FourDigits => 4,
            KeyFormat::Uuid => 36,
            KeyFormat::Digits(n) => n,
        }
    }

    /// Always false: formats describe non-empty keys. Present for
    /// `len`/`is_empty` API symmetry.
    #[must_use]
    pub fn is_empty(self) -> bool {
        false
    }

    /// The number of distinct keys, saturating at `u128::MAX` for spaces
    /// (IPv6, INTS, long digit strings) wider than 128 bits.
    #[must_use]
    pub fn space(self) -> u128 {
        match self {
            KeyFormat::Ssn => 1_000_000_000,
            KeyFormat::Cpf => 100_000_000_000,
            KeyFormat::Mac => 1 << 48,
            KeyFormat::Ipv4 => 1_000_000_000_000,
            KeyFormat::Ipv6 => u128::MAX,
            KeyFormat::Ints => u128::MAX,
            KeyFormat::Url1 | KeyFormat::Url2 => 36u128.pow(URL_SUFFIX_VARIABLE as u32),
            KeyFormat::FourDigits => 10_000,
            KeyFormat::Uuid => u128::MAX,
            KeyFormat::Digits(n) => 10u128.checked_pow(n.min(38) as u32).unwrap_or(u128::MAX),
        }
    }

    /// The regular expression of the format, as listed in the paper.
    #[must_use]
    pub fn regex(self) -> String {
        match self {
            KeyFormat::Ssn => r"\d{3}-\d{2}-\d{4}".to_owned(),
            KeyFormat::Cpf => r"\d{3}\.\d{3}\.\d{3}-\d{2}".to_owned(),
            KeyFormat::Mac => r"([0-9a-f]{2}-){5}[0-9a-f]{2}".to_owned(),
            KeyFormat::Ipv4 => r"(([0-9]{3})\.){3}[0-9]{3}".to_owned(),
            KeyFormat::Ipv6 => r"([0-9a-f]{4}:){7}[0-9a-f]{4}".to_owned(),
            KeyFormat::Ints => r"[0-9]{100}".to_owned(),
            KeyFormat::Url1 => format!("{}[a-z0-9]{{20}}\\.html", escape(URL1_PREFIX)),
            KeyFormat::Url2 => format!("{}[a-z0-9]{{20}}\\.html", escape(URL2_PREFIX)),
            KeyFormat::FourDigits => r"\d{4}".to_owned(),
            KeyFormat::Uuid => {
                r"[0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12}".to_owned()
            }
            KeyFormat::Digits(n) => format!("[0-9]{{{n}}}"),
        }
    }

    /// Materializes the key at `index` within the key space.
    ///
    /// Indices at or above [`KeyFormat::space`] wrap around.
    #[must_use]
    pub fn materialize(self, index: u128) -> String {
        let index = index % self.space().max(1);
        match self {
            KeyFormat::Ssn => {
                format!(
                    "{:03}-{:02}-{:04}",
                    index / 1_000_000,
                    (index / 10_000) % 100,
                    index % 10_000
                )
            }
            KeyFormat::Cpf => {
                format!(
                    "{:03}.{:03}.{:03}-{:02}",
                    index / 100_000_000,
                    (index / 100_000) % 1000,
                    (index / 100) % 1000,
                    index % 100
                )
            }
            KeyFormat::Mac => {
                let mut out = String::with_capacity(17);
                for group in (0..6).rev() {
                    let byte = ((index >> (group * 8)) & 0xFF) as u8;
                    out.push_str(&format!("{byte:02x}"));
                    if group > 0 {
                        out.push('-');
                    }
                }
                out
            }
            KeyFormat::Ipv4 => {
                format!(
                    "{:03}.{:03}.{:03}.{:03}",
                    index / 1_000_000_000,
                    (index / 1_000_000) % 1000,
                    (index / 1000) % 1000,
                    index % 1000
                )
            }
            KeyFormat::Ipv6 => {
                let mut out = String::with_capacity(39);
                for group in (0..8).rev() {
                    let hextet = ((index >> (group * 16)) & 0xFFFF) as u16;
                    out.push_str(&format!("{hextet:04x}"));
                    if group > 0 {
                        out.push(':');
                    }
                }
                out
            }
            KeyFormat::Ints => format!("{index:0100}"),
            KeyFormat::Url1 => url_key(URL1_PREFIX, index),
            KeyFormat::Url2 => url_key(URL2_PREFIX, index),
            KeyFormat::FourDigits => format!("{index:04}"),
            KeyFormat::Uuid => {
                let hex = format!("{index:032x}");
                format!(
                    "{}-{}-{}-{}-{}",
                    &hex[0..8],
                    &hex[8..12],
                    &hex[12..16],
                    &hex[16..20],
                    &hex[20..32]
                )
            }
            KeyFormat::Digits(n) => {
                let digits = format!("{index}");
                let mut out = String::with_capacity(n);
                for _ in 0..n.saturating_sub(digits.len()) {
                    out.push('0');
                }
                out.push_str(&digits[digits.len().saturating_sub(n)..]);
                out
            }
        }
    }

    /// Two "good" example keys (Example 3.6): together they exercise every
    /// quad that can vary at each position, so inference from these
    /// examples matches inference from the format's regular expression.
    #[must_use]
    pub fn good_examples(self) -> Vec<String> {
        match self {
            KeyFormat::Mac | KeyFormat::Ipv6 | KeyFormat::Uuid => {
                // Hex spans two leading-quad classes; exercise 0, 5, a, f.
                let zero = self.materialize(0);
                let five = self.key_of_repeated(b'5');
                let aa = self.key_of_repeated(b'a');
                let ff = self.key_of_repeated(b'f');
                vec![zero, five, aa, ff]
            }
            KeyFormat::Url1 | KeyFormat::Url2 => {
                // The suffix alphabet [a-z0-9] spans two leading-quad
                // classes; exercise 0, 5, a and z.
                vec![
                    self.materialize(0),
                    self.materialize(self.space() - 1), // all-'z' suffix
                    self.key_of_url_suffix(b'5'),
                    self.key_of_url_suffix(b'a'),
                ]
            }
            _ => {
                // Digit formats: all-0s and all-5s (Example 3.6).
                let zeros = self.materialize(0);
                let fives: String = zeros
                    .chars()
                    .map(|c| if c.is_ascii_digit() { '5' } else { c })
                    .collect();
                vec![zeros, fives]
            }
        }
    }

    fn key_of_repeated(self, ch: u8) -> String {
        self.materialize(0)
            .bytes()
            .map(|b| {
                if b.is_ascii_hexdigit() {
                    ch as char
                } else {
                    b as char
                }
            })
            .collect()
    }

    fn key_of_url_suffix(self, ch: u8) -> String {
        let prefix = match self {
            KeyFormat::Url1 => URL1_PREFIX,
            KeyFormat::Url2 => URL2_PREFIX,
            _ => unreachable!("only URL formats have suffixes"),
        };
        let mut out = String::from(prefix);
        for _ in 0..URL_SUFFIX_VARIABLE {
            out.push(ch as char);
        }
        out.push_str(".html");
        out
    }
}

/// Escapes regex metacharacters in a literal prefix.
fn escape(literal: &str) -> String {
    let mut out = String::with_capacity(literal.len() * 2);
    for c in literal.chars() {
        if "\\.(){}[]*+?|^$".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

fn url_key(prefix: &str, index: u128) -> String {
    let mut out = String::with_capacity(prefix.len() + URL_SUFFIX_VARIABLE + 5);
    out.push_str(prefix);
    // Base-36 digits, most significant first, zero-padded to 20 chars.
    let mut digits = [0u8; URL_SUFFIX_VARIABLE];
    let mut v = index;
    for slot in digits.iter_mut().rev() {
        *slot = (v % 36) as u8;
        v /= 36;
    }
    for d in digits {
        out.push(if d < 10 {
            (b'0' + d) as char
        } else {
            (b'a' + d - 10) as char
        });
    }
    out.push_str(".html");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepe_core::regex::Regex;

    #[test]
    fn prefixes_have_the_paper_lengths() {
        assert_eq!(URL1_PREFIX.len(), 23);
        assert_eq!(URL2_PREFIX.len(), 36);
    }

    #[test]
    fn materialized_keys_have_the_declared_length() {
        for f in KeyFormat::EVALUATED {
            for idx in [0u128, 1, 12345, 99999999] {
                let k = f.materialize(idx);
                assert_eq!(k.len(), f.len(), "{f:?} index {idx}: {k:?}");
            }
        }
    }

    #[test]
    fn materialized_keys_match_their_regex() {
        for f in KeyFormat::EVALUATED {
            let pattern = Regex::compile(&f.regex()).expect("format regex compiles");
            for idx in [0u128, 7, 1_000_000, u64::MAX as u128] {
                let k = f.materialize(idx);
                assert!(pattern.matches(k.as_bytes()), "{f:?}: {k:?}");
            }
        }
    }

    #[test]
    fn materialization_is_injective_within_the_space() {
        for f in [
            KeyFormat::Ssn,
            KeyFormat::FourDigits,
            KeyFormat::Ipv4,
            KeyFormat::Mac,
        ] {
            let mut keys: Vec<String> = (0..2000u128).map(|i| f.materialize(i * 7)).collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), 2000, "{f:?}");
        }
    }

    #[test]
    fn indices_wrap_at_the_space() {
        assert_eq!(
            KeyFormat::FourDigits.materialize(10_000),
            KeyFormat::FourDigits.materialize(0)
        );
    }

    #[test]
    fn incremental_keys_ascend_lexicographically() {
        for f in KeyFormat::EVALUATED {
            let a = f.materialize(100);
            let b = f.materialize(101);
            assert!(a < b, "{f:?}: {a:?} !< {b:?}");
        }
    }

    #[test]
    fn ssn_examples_from_rq3() {
        assert_eq!(KeyFormat::Ssn.materialize(0), "000-00-0000");
        assert_eq!(KeyFormat::Ssn.materialize(1), "000-00-0001");
        assert_eq!(KeyFormat::Ssn.materialize(2), "000-00-0002");
        assert_eq!(KeyFormat::Ssn.materialize(999_999_999), "999-99-9999");
    }

    #[test]
    fn good_examples_infer_the_same_pattern_as_the_regex() {
        for f in KeyFormat::EVALUATED {
            let from_regex = Regex::compile(&f.regex()).expect("format regex compiles");
            let examples = f.good_examples();
            let refs: Vec<&[u8]> = examples.iter().map(|k| k.as_bytes()).collect();
            let inferred =
                sepe_core::infer::infer_pattern(refs.iter().copied()).expect("examples exist");
            assert_eq!(
                inferred.max_len(),
                from_regex.max_len(),
                "{f:?} lengths disagree"
            );
            // Inference can only be at least as general as the regex on
            // every position the examples exercise.
            for (i, (a, b)) in inferred.bytes().iter().zip(from_regex.bytes()).enumerate() {
                assert_eq!(
                    a.join(*b),
                    *a,
                    "{f:?} byte {i}: inferred {a} is narrower than regex {b}"
                );
            }
        }
    }

    #[test]
    fn url_keys_decode_base36() {
        let k = KeyFormat::Url1.materialize(35);
        assert!(k.ends_with("0000000000000000000z.html"), "{k}");
        let k = KeyFormat::Url1.materialize(36);
        assert!(k.ends_with("00000000000000000010.html"), "{k}");
    }

    #[test]
    fn uuid_extension_format_round_trips() {
        let f = KeyFormat::Uuid;
        let k = f.materialize(0x1234_5678_9ABC_DEF0_1122_3344_5566_7788u128);
        assert_eq!(k, "12345678-9abc-def0-1122-334455667788");
        assert_eq!(k.len(), f.len());
        let pattern = Regex::compile(&f.regex()).expect("uuid regex compiles");
        assert!(pattern.matches(k.as_bytes()));
        let examples = f.good_examples();
        let refs: Vec<&[u8]> = examples.iter().map(|e| e.as_bytes()).collect();
        let inferred = sepe_core::infer::infer_pattern(refs.iter().copied()).expect("examples");
        assert_eq!(inferred.max_len(), 36);
        assert!(inferred.bytes()[8].is_const(), "dash at 8 is constant");
    }

    #[test]
    fn digits_format_supports_large_sizes() {
        let f = KeyFormat::Digits(1 << 14);
        let k = f.materialize(12345);
        assert_eq!(k.len(), 1 << 14);
        assert!(k.ends_with("12345"));
        assert!(k.starts_with("000"));
    }
}
