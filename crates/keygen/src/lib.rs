//! # sepe-keygen
//!
//! Workload generation for the SEPE evaluation: the eight key formats of
//! Section 4 ("Keys") and the three key distributions (ascending /
//! incremental, uniform, normal). Key spaces are modeled as integer ranges;
//! a distribution draws an index, and the format materializes it into a key
//! string — so "ascending SSNs" really are `000-00-0000`, `000-00-0001`, …
//! as RQ3 prescribes.
//!
//! ## Examples
//!
//! ```
//! use sepe_keygen::{Distribution, KeyFormat, KeySampler};
//!
//! let mut s = KeySampler::new(KeyFormat::Ssn, Distribution::Incremental, 42);
//! assert_eq!(s.next_key(), "000-00-0000");
//! assert_eq!(s.next_key(), "000-00-0001");
//!
//! let mut u = KeySampler::new(KeyFormat::Ipv4, Distribution::Uniform, 42);
//! assert_eq!(u.next_key().len(), 15);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod dist;
pub mod format;
pub mod rng;

pub use dist::{Distribution, KeySampler};
pub use format::KeyFormat;
pub use rng::SplitMix64;
