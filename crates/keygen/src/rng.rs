//! A small deterministic PRNG.
//!
//! Experiments must be reproducible across runs and platforms, so the
//! driver uses its own seeded generator rather than ambient randomness.
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) is the standard choice for
//! a 64-bit state: equidistributed output, one multiply-shift-xor chain per
//! draw.

/// SplitMix64: a tiny, fast, seedable PRNG.
///
/// # Examples
///
/// ```
/// use sepe_keygen::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 128 uniformly distributed bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// A uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift reduction (Lemire); the modulo bias of 2^128 to a
        // bound well below it is negligible for workload generation.

        self.next_u128() % bound
    }

    /// A uniform draw in `[0.0, 1.0)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A standard normal draw (Box–Muller).
    pub fn next_standard_normal(&mut self) -> f64 {
        // Reject u == 0 so the logarithm stays finite.
        let mut u = self.next_f64();
        while u <= f64::MIN_POSITIVE {
            u = self.next_f64();
        }
        let v = self.next_f64();
        (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 0 (e.g. from the Vigna reference code).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for bound in [1u128, 2, 10, 1_000_000, u128::from(u64::MAX) + 5] {
            for _ in 0..200 {
                assert!(r.below_u128(bound) < bound);
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut r = SplitMix64::new(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
