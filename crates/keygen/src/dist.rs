//! Key distributions: incremental (ascending), uniform, and normal.
//!
//! A distribution draws indices from a format's key space; the format
//! materializes them ([`KeyFormat::materialize`]). The incremental
//! distribution counts upward (the paper's "ascending order"); uniform
//! draws are equiprobable across the whole space; normal draws cluster
//! around the middle of the space (mean `space/2`, deviation `space/16`).

use crate::format::KeyFormat;
use crate::rng::SplitMix64;

/// A key distribution of the evaluation grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Keys in ascending order: `000-00-0000`, `000-00-0001`, … (RQ3).
    Incremental,
    /// Uniform draws over the key space.
    Uniform,
    /// Normal draws centered on the middle of the key space.
    Normal,
}

impl Distribution {
    /// The three distributions, in the paper's table order.
    pub const ALL: [Distribution; 3] = [
        Distribution::Incremental,
        Distribution::Uniform,
        Distribution::Normal,
    ];

    /// The distribution name as used in the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Distribution::Incremental => "Inc",
            Distribution::Uniform => "Uniform",
            Distribution::Normal => "Normal",
        }
    }
}

impl std::fmt::Display for Distribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Draws keys of one format under one distribution, deterministically from
/// a seed.
///
/// # Examples
///
/// ```
/// use sepe_keygen::{Distribution, KeyFormat, KeySampler};
///
/// let mut s = KeySampler::new(KeyFormat::Cpf, Distribution::Normal, 7);
/// let k = s.next_key();
/// assert_eq!(k.len(), 14);
/// ```
#[derive(Debug, Clone)]
pub struct KeySampler {
    format: KeyFormat,
    dist: Distribution,
    rng: SplitMix64,
    counter: u128,
}

impl KeySampler {
    /// Creates a sampler.
    #[must_use]
    pub fn new(format: KeyFormat, dist: Distribution, seed: u64) -> Self {
        KeySampler {
            format,
            dist,
            rng: SplitMix64::new(seed),
            counter: 0,
        }
    }

    /// The format being sampled.
    #[must_use]
    pub fn format(&self) -> KeyFormat {
        self.format
    }

    /// The distribution in effect.
    #[must_use]
    pub fn distribution(&self) -> Distribution {
        self.dist
    }

    /// Draws the next index.
    pub fn next_index(&mut self) -> u128 {
        let space = self.format.space().max(1);
        match self.dist {
            Distribution::Incremental => {
                let idx = self.counter % space;
                self.counter += 1;
                idx
            }
            Distribution::Uniform => self.rng.below_u128(space),
            Distribution::Normal => self.normal_index(space),
        }
    }

    /// Draws the next key.
    pub fn next_key(&mut self) -> String {
        let idx = self.next_index();
        self.format.materialize(idx)
    }

    /// Draws a pool of `n` keys (duplicates possible under uniform/normal
    /// draws, exactly as when the paper's driver generates keys).
    pub fn pool(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.next_key()).collect()
    }

    /// Draws until `n` *distinct* keys have been collected (used for
    /// collision counting over a fixed number of distinct keys).
    ///
    /// # Panics
    ///
    /// Panics if the key space holds fewer than `n` keys.
    pub fn distinct_pool(&mut self, n: usize) -> Vec<String> {
        assert!(
            u128::try_from(n).is_ok_and(|n| n <= self.format.space()),
            "key space too small for {n} distinct keys"
        );
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let k = self.next_key();
            if seen.insert(k.clone()) {
                out.push(k);
            }
        }
        out
    }

    /// A normal draw over `[0, space)`: mean `space/2`, deviation
    /// `space/16`, computed in fixed point so wide key spaces (IPv6's
    /// 2¹²⁸) keep full low-bit granularity, with a uniform 32-bit jitter
    /// so materialized keys do not share frozen low digits.
    fn normal_index(&mut self, space: u128) -> u128 {
        let z = self.rng.next_standard_normal().clamp(-7.9, 7.9);
        let z_fp = (z * f64::from(1u32 << 24)) as i128; // Q24 fixed point
        let sd = (space / 16).max(1);
        let offset = mul_q24(sd, z_fp);
        let mean = (space / 2) as i128 as u128;
        // The fixed-point offset moves in steps of sd / 2^24; a uniform
        // jitter one order finer than sd fills the low bits without
        // distorting the distribution.
        let jitter = self.rng.below_u128((sd >> 20).max(1));
        let idx = if offset >= 0 {
            mean.wrapping_add(offset as u128)
        } else {
            mean.wrapping_sub(offset.unsigned_abs())
        };
        idx.wrapping_add(jitter) % space
    }
}

/// `(a * b) >> 24` with `b` a signed Q24 fixed-point factor, computed
/// without overflowing 128 bits.
fn mul_q24(a: u128, b: i128) -> i128 {
    let neg = b < 0;
    let b = b.unsigned_abs();
    let hi = (a >> 24).wrapping_mul(b);
    let lo = (a & 0xFF_FFFF).wrapping_mul(b) >> 24;
    let m = hi.wrapping_add(lo);
    let m = i128::try_from(m.min(i128::MAX as u128)).expect("clamped to i128 range");
    if neg {
        -m
    } else {
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_counts_upward() {
        let mut s = KeySampler::new(KeyFormat::Ssn, Distribution::Incremental, 0);
        assert_eq!(s.next_key(), "000-00-0000");
        assert_eq!(s.next_key(), "000-00-0001");
        assert_eq!(s.next_key(), "000-00-0002");
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let mut a = KeySampler::new(KeyFormat::Mac, Distribution::Uniform, 9);
        let mut b = KeySampler::new(KeyFormat::Mac, Distribution::Uniform, 9);
        for _ in 0..50 {
            assert_eq!(a.next_key(), b.next_key());
        }
        let mut c = KeySampler::new(KeyFormat::Mac, Distribution::Uniform, 10);
        let same = (0..50).filter(|_| a.next_key() == c.next_key()).count();
        assert!(same < 5, "different seeds should diverge");
    }

    #[test]
    fn normal_clusters_around_the_middle() {
        let mut s = KeySampler::new(KeyFormat::Ssn, Distribution::Normal, 3);
        let n = 10_000;
        let space = KeyFormat::Ssn.space() as f64;
        let indices: Vec<f64> = (0..n).map(|_| s.next_index() as f64 / space).collect();
        let mean = indices.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean fraction {mean}");
        let within_2sd = indices
            .iter()
            .filter(|&&x| (x - 0.5).abs() < 2.0 / 16.0)
            .count() as f64
            / n as f64;
        assert!(within_2sd > 0.90, "only {within_2sd} within 2 sd");
    }

    #[test]
    fn normal_fills_low_bits_of_wide_spaces() {
        let mut s = KeySampler::new(KeyFormat::Ipv6, Distribution::Normal, 4);
        let keys = s.pool(1000);
        let distinct: std::collections::BTreeSet<_> = keys.iter().collect();
        assert_eq!(
            distinct.len(),
            1000,
            "wide-space normal draws must not collide"
        );
    }

    #[test]
    fn distinct_pool_is_distinct() {
        let mut s = KeySampler::new(KeyFormat::FourDigits, Distribution::Uniform, 5);
        let pool = s.distinct_pool(5000);
        let distinct: std::collections::BTreeSet<_> = pool.iter().collect();
        assert_eq!(distinct.len(), 5000);
    }

    #[test]
    #[should_panic(expected = "key space too small")]
    fn distinct_pool_panics_when_space_is_too_small() {
        let mut s = KeySampler::new(KeyFormat::FourDigits, Distribution::Uniform, 5);
        let _ = s.distinct_pool(10_001);
    }

    #[test]
    fn all_indices_stay_in_space() {
        for dist in Distribution::ALL {
            for format in [KeyFormat::FourDigits, KeyFormat::Ssn, KeyFormat::Ipv6] {
                let mut s = KeySampler::new(format, dist, 11);
                for _ in 0..500 {
                    assert!(s.next_index() < format.space());
                }
            }
        }
    }

    #[test]
    fn mul_q24_matches_f64_on_small_values() {
        for (a, z) in [(1_000_000u128, 1.5f64), (16u128, -0.5), (1 << 40, 3.25)] {
            let b = (z * f64::from(1u32 << 24)) as i128;
            let got = mul_q24(a, b);
            let want = (a as f64 * z) as i128;
            let tol = (want.abs() / 1000).max(2);
            assert!(
                (got - want).abs() <= tol,
                "a={a} z={z} got={got} want={want}"
            );
        }
    }
}
