//! Concurrency audits: no lost updates in a shared [`Registry`], and
//! exact drop accounting in the [`EventTrace`] ring under contended,
//! seed-matrix-scheduled interleavings.

use sepe_obs::{EventTrace, Registry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The chaos seed matrix used across the repo's concurrency suites.
const SEEDS: [u64; 3] = [0x5E9E, 0xC4A05, 0xD1F7];

/// SplitMix64, inlined to keep this crate dependency-light.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn registry_totals_equal_per_thread_sums() {
    let threads = 8usize;
    let ops = 5_000usize;
    for seed in SEEDS {
        let reg = Arc::new(Registry::new());
        let per_thread: Vec<(u64, u64, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let reg = reg.clone();
                    s.spawn(move || {
                        // Each thread re-resolves its handles mid-run to
                        // exercise the get-or-create path under
                        // contention, not just the bump path.
                        let counter = reg.counter("hits", &[("kind", "all")]).expect("counter");
                        let hist = reg.histogram("sizes", &[]).expect("histogram");
                        let mut rng = seed ^ (t as u64) << 16;
                        let mut counted = 0u64;
                        let mut observed = 0u64;
                        let mut summed = 0u64;
                        for i in 0..ops {
                            let r = splitmix(&mut rng);
                            let n = r % 7;
                            counter.add(n);
                            counted += n;
                            let v = r >> 32;
                            hist.observe(v);
                            observed += 1;
                            summed += v;
                            if i % 512 == 0 {
                                let again =
                                    reg.counter("hits", &[("kind", "all")]).expect("counter");
                                again.inc();
                                counted += 1;
                            }
                        }
                        (counted, observed, summed)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let counted: u64 = per_thread.iter().map(|t| t.0).sum();
        let observed: u64 = per_thread.iter().map(|t| t.1).sum();
        let summed: u64 = per_thread.iter().map(|t| t.2).sum();
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("hits{kind=\"all\"}"),
            Some(counted),
            "seed {seed:#x}: lost counter updates"
        );
        let hist = &snap.histograms["sizes"];
        assert_eq!(hist.count, observed, "seed {seed:#x}: lost observations");
        assert_eq!(hist.sum, summed, "seed {seed:#x}: lost sums");
        let bucket_total: u64 = hist.buckets.values().sum();
        assert_eq!(bucket_total, observed, "seed {seed:#x}: bucket drift");
    }
}

#[test]
fn event_trace_drop_accounting_is_exact_under_interleaving() {
    let threads = 6usize;
    let ops = 2_000usize;
    let capacity = 512usize;
    for seed in SEEDS {
        let trace = Arc::new(EventTrace::new(capacity));
        let go = Arc::new(AtomicBool::new(false));
        let accepted: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let trace = trace.clone();
                    let go = go.clone();
                    s.spawn(move || {
                        while !go.load(Ordering::Relaxed) {
                            std::hint::spin_loop();
                        }
                        let mut rng = seed.wrapping_mul(t as u64 + 1);
                        let mut accepted = 0u64;
                        for _ in 0..ops {
                            // Seeded jitter shifts the interleaving per
                            // seed without changing the invariants.
                            if splitmix(&mut rng).is_multiple_of(64) {
                                std::thread::yield_now();
                            }
                            if trace.push((t as u64) << 32) {
                                accepted += 1;
                            }
                        }
                        accepted
                    })
                })
                .collect();
            go.store(true, Ordering::Relaxed);
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let accepted_total: u64 = accepted.iter().sum();
        let attempted = (threads * ops) as u64;
        assert_eq!(trace.pushed(), attempted, "seed {seed:#x}");
        assert_eq!(
            trace.dropped(),
            attempted - accepted_total,
            "seed {seed:#x}: drop counter disagrees with rejected pushes"
        );
        assert_eq!(
            trace.len() as u64,
            accepted_total,
            "seed {seed:#x}: retained events disagree with accepted pushes"
        );
        assert!(trace.len() <= capacity, "seed {seed:#x}: ring overfilled");
        assert_eq!(trace.len(), capacity, "seed {seed:#x}: ring should fill");
    }
}
