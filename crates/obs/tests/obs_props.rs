//! Property tests for the observability primitives.
//!
//! The pinned contracts: counters are monotone and saturate exactly like
//! the historical `GuardStats` atomics; histograms never lose an
//! observation (bucket counts sum to the observation count and every
//! value lands in the bucket whose bounds contain it); snapshots of the
//! same op sequence render byte-identically and round-trip through the
//! strict parser.

use proptest::prelude::*;
use sepe_obs::histogram::{bucket_bounds, bucket_index};
use sepe_obs::{Counter, Histogram, Registry, Snapshot, BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};

/// The verbatim pre-migration `GuardStats::bump_many` semantics, kept
/// here as the reference the shared [`Counter`] must match bump for bump.
fn reference_bump(counter: &AtomicU64, n: u64) {
    let prev = counter.fetch_add(n, Ordering::Relaxed);
    if prev > u64::MAX - n {
        counter.store(u64::MAX, Ordering::Relaxed);
    }
}

proptest! {
    #[test]
    fn counters_are_monotone(increments in prop::collection::vec(0u64..1 << 40, 0..64)) {
        let counter = Counter::new();
        let mut last = 0u64;
        let mut expected = 0u64;
        for n in increments {
            counter.add(n);
            expected = expected.saturating_add(n);
            let now = counter.get();
            prop_assert!(now >= last, "counter moved backwards: {last} -> {now}");
            prop_assert_eq!(now, expected);
            last = now;
        }
    }

    #[test]
    fn counter_saturation_matches_pinned_guardstats_semantics(
        start in prop_oneof![Just(0u64), Just(u64::MAX - 16), Just(u64::MAX)],
        increments in prop::collection::vec(any::<u64>(), 1..32),
    ) {
        let counter = Counter::new();
        counter.add(start);
        let reference = AtomicU64::new(0);
        reference_bump(&reference, start);
        for n in increments {
            counter.add(n);
            reference_bump(&reference, n);
            prop_assert_eq!(counter.get(), reference.load(Ordering::Relaxed));
        }
    }

    #[test]
    fn histogram_bucket_sums_equal_observation_counts(
        values in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let counts = h.bucket_counts();
        let total: u64 = counts.iter().sum();
        prop_assert_eq!(total, values.len() as u64);
        prop_assert_eq!(h.count(), values.len() as u64);
        let expected_sum = values.iter().fold(0u64, |a, &v| a.saturating_add(v));
        prop_assert_eq!(h.sum(), expected_sum);
        for &v in &values {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} [{lo}, {hi}]");
            prop_assert!(counts[i] > 0);
        }
    }

    #[test]
    fn snapshots_are_deterministic_for_a_fixed_op_sequence(
        ops in prop::collection::vec((0u8..3, 0u64..4, any::<u64>()), 0..128),
    ) {
        // Replay the same typed op sequence into two independent
        // registries; the rendered exports must be byte-identical, and
        // the strict parser must round-trip them losslessly.
        let render = |reg: &Registry| -> String {
            for (kind, slot, value) in &ops {
                let label = slot.to_string();
                let labels = [("slot", label.as_str())];
                match kind {
                    0 => reg.counter("ops", &labels).expect("counter").add(*value),
                    1 => reg.gauge("depth", &labels).expect("gauge").set(*value),
                    _ => reg.histogram("sizes", &labels).expect("histogram").observe(*value),
                }
            }
            reg.snapshot().render()
        };
        let first = render(&Registry::new());
        let second = render(&Registry::new());
        prop_assert_eq!(&first, &second);
        let parsed = Snapshot::parse(&first).expect("canonical render parses");
        prop_assert_eq!(parsed.render(), first);
    }

    #[test]
    fn parsed_histograms_validate_their_bucket_sums(
        values in prop::collection::vec(0u64..1 << 20, 1..64),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[]).expect("histogram");
        for &v in &values {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let parsed = Snapshot::parse(&snap.render()).expect("parses");
        let hist = &parsed.histograms["lat"];
        prop_assert_eq!(hist.count, values.len() as u64);
        prop_assert!(hist.buckets.len() <= BUCKETS);
        let total: u64 = hist.buckets.values().sum();
        prop_assert_eq!(total, hist.count);
    }
}
