//! Labeled metric families with canonical identifiers.
//!
//! A metric id is `name{key="value",...}` with labels sorted by key (or
//! bare `name` when unlabeled), so ids — and therefore snapshots — have
//! one canonical spelling. The registry plays two roles:
//!
//! * **Owner**: [`Registry::counter`] / [`gauge`](Registry::gauge) /
//!   [`histogram`](Registry::histogram) get-or-create a shared handle
//!   (`Arc`) that hot paths bump directly, without going back through
//!   the registry.
//! * **Exporter**: load-bearing state that lives elsewhere — a guard's
//!   drift counters, a table's epoch counters — is exposed through
//!   [`Registry::export_counter`]-style closures (or by registering the
//!   existing shared handle), so a snapshot reads live values without
//!   the hot path paying any extra indirection.
//!
//! The registry's own mutex is touched only on registration and
//! snapshot, never per-operation.

use crate::histogram::Histogram;
use crate::metrics::{Counter, Gauge};
use crate::snapshot::{HistogramSnapshot, Snapshot};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Typed registration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The id is already registered (for registrations that demand a
    /// fresh slot).
    Duplicate {
        /// The canonical metric id.
        id: String,
    },
    /// The id exists as an exported read-only source, so no shared
    /// handle can be produced for it.
    External {
        /// The canonical metric id.
        id: String,
    },
    /// The name or a label contains a character that would corrupt the
    /// canonical id syntax.
    InvalidName {
        /// The offending name or label fragment.
        fragment: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Duplicate { id } => write!(f, "metric {id} is already registered"),
            RegistryError::External { id } => {
                write!(
                    f,
                    "metric {id} is an exported source; no shared handle exists"
                )
            }
            RegistryError::InvalidName { fragment } => {
                write!(f, "invalid metric name fragment {fragment:?}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Builds the canonical id for `name` with `labels` (sorted by key).
///
/// # Errors
///
/// Returns [`RegistryError::InvalidName`] when the name is empty or any
/// fragment contains `{`, `}`, `"`, `=`, `,`, `\` or control characters.
pub fn metric_id(name: &str, labels: &[(&str, &str)]) -> Result<String, RegistryError> {
    check_fragment(name)?;
    if name.is_empty() {
        return Err(RegistryError::InvalidName {
            fragment: String::new(),
        });
    }
    if labels.is_empty() {
        return Ok(name.to_owned());
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut id = String::with_capacity(name.len() + 16 * sorted.len());
    id.push_str(name);
    id.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        check_fragment(k)?;
        check_fragment(v)?;
        if k.is_empty() {
            return Err(RegistryError::InvalidName {
                fragment: String::new(),
            });
        }
        if i > 0 {
            id.push(',');
        }
        id.push_str(k);
        id.push_str("=\"");
        id.push_str(v);
        id.push('"');
    }
    id.push('}');
    Ok(id)
}

fn check_fragment(s: &str) -> Result<(), RegistryError> {
    if s.chars()
        .any(|c| matches!(c, '{' | '}' | '"' | '=' | ',' | '\\') || c.is_control())
    {
        return Err(RegistryError::InvalidName {
            fragment: s.to_owned(),
        });
    }
    Ok(())
}

enum CounterSource {
    Shared(Arc<Counter>),
    External(Box<dyn Fn() -> u64 + Send + Sync>),
}

impl CounterSource {
    fn read(&self) -> u64 {
        match self {
            CounterSource::Shared(c) => c.get(),
            CounterSource::External(f) => f(),
        }
    }
}

enum GaugeSource {
    Shared(Arc<Gauge>),
    External(Box<dyn Fn() -> u64 + Send + Sync>),
}

impl GaugeSource {
    fn read(&self) -> u64 {
        match self {
            GaugeSource::Shared(g) => g.get(),
            GaugeSource::External(f) => f(),
        }
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, CounterSource>,
    gauges: BTreeMap<String, GaugeSource>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A set of labeled metric families with deterministic snapshot export.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.lock();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Gets or creates an owned counter for `name{labels}`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::External`] when the id is an exported source;
    /// [`RegistryError::InvalidName`] on malformed fragments.
    pub fn counter(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Result<Arc<Counter>, RegistryError> {
        let id = metric_id(name, labels)?;
        let mut inner = self.lock();
        match inner
            .counters
            .entry(id.clone())
            .or_insert_with(|| CounterSource::Shared(Arc::new(Counter::new())))
        {
            CounterSource::Shared(c) => Ok(c.clone()),
            CounterSource::External(_) => Err(RegistryError::External { id }),
        }
    }

    /// Gets or creates an owned gauge for `name{labels}`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Registry::counter`].
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Result<Arc<Gauge>, RegistryError> {
        let id = metric_id(name, labels)?;
        let mut inner = self.lock();
        match inner
            .gauges
            .entry(id.clone())
            .or_insert_with(|| GaugeSource::Shared(Arc::new(Gauge::new())))
        {
            GaugeSource::Shared(g) => Ok(g.clone()),
            GaugeSource::External(_) => Err(RegistryError::External { id }),
        }
    }

    /// Gets or creates an owned histogram for `name{labels}`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::InvalidName`] on malformed fragments.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Result<Arc<Histogram>, RegistryError> {
        let id = metric_id(name, labels)?;
        let mut inner = self.lock();
        Ok(inner
            .histograms
            .entry(id)
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone())
    }

    /// Registers an existing shared counter under `name{labels}`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Duplicate`] when the id already exists.
    pub fn register_counter(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        counter: Arc<Counter>,
    ) -> Result<(), RegistryError> {
        let id = metric_id(name, labels)?;
        let mut inner = self.lock();
        if inner.counters.contains_key(&id) {
            return Err(RegistryError::Duplicate { id });
        }
        inner.counters.insert(id, CounterSource::Shared(counter));
        Ok(())
    }

    /// Registers an existing shared histogram under `name{labels}`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Duplicate`] when the id already exists.
    pub fn register_histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        histogram: Arc<Histogram>,
    ) -> Result<(), RegistryError> {
        let id = metric_id(name, labels)?;
        let mut inner = self.lock();
        if inner.histograms.contains_key(&id) {
            return Err(RegistryError::Duplicate { id });
        }
        inner.histograms.insert(id, histogram);
        Ok(())
    }

    /// Exports a counter whose value lives elsewhere; `read` is invoked
    /// at snapshot time.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Duplicate`] when the id already exists.
    pub fn export_counter(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        read: impl Fn() -> u64 + Send + Sync + 'static,
    ) -> Result<(), RegistryError> {
        let id = metric_id(name, labels)?;
        let mut inner = self.lock();
        if inner.counters.contains_key(&id) {
            return Err(RegistryError::Duplicate { id });
        }
        inner
            .counters
            .insert(id, CounterSource::External(Box::new(read)));
        Ok(())
    }

    /// Exports a gauge whose value lives elsewhere.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Duplicate`] when the id already exists.
    pub fn export_gauge(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        read: impl Fn() -> u64 + Send + Sync + 'static,
    ) -> Result<(), RegistryError> {
        let id = metric_id(name, labels)?;
        let mut inner = self.lock();
        if inner.gauges.contains_key(&id) {
            return Err(RegistryError::Duplicate { id });
        }
        inner
            .gauges
            .insert(id, GaugeSource::External(Box::new(read)));
        Ok(())
    }

    /// Number of registered metrics across all kinds.
    #[must_use]
    pub fn len(&self) -> usize {
        let inner = self.lock();
        inner.counters.len() + inner.gauges.len() + inner.histograms.len()
    }

    /// Whether no metrics are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads every metric into a deterministic [`Snapshot`]: ids in
    /// canonical (sorted) order, histograms reduced to occupied buckets.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        let counters = inner
            .counters
            .iter()
            .map(|(id, src)| (id.clone(), src.read()))
            .collect();
        let gauges = inner
            .gauges
            .iter()
            .map(|(id, src)| (id.clone(), src.read()))
            .collect();
        let histograms = inner
            .histograms
            .iter()
            .map(|(id, h)| {
                let mut buckets = BTreeMap::new();
                for (i, c) in h.bucket_counts().iter().enumerate() {
                    if *c > 0 {
                        buckets.insert(i as u8, *c);
                    }
                }
                (
                    id.clone(),
                    HistogramSnapshot {
                        count: h.count(),
                        sum: h.sum(),
                        buckets,
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_canonical_and_sorted() {
        assert_eq!(metric_id("ops", &[]).unwrap(), "ops");
        assert_eq!(
            metric_id("ops", &[("z", "1"), ("a", "2")]).unwrap(),
            "ops{a=\"2\",z=\"1\"}"
        );
        assert!(matches!(
            metric_id("bad{name", &[]),
            Err(RegistryError::InvalidName { .. })
        ));
        assert!(matches!(
            metric_id("ops", &[("k", "v\"quote")]),
            Err(RegistryError::InvalidName { .. })
        ));
        assert!(matches!(
            metric_id("", &[]),
            Err(RegistryError::InvalidName { .. })
        ));
    }

    #[test]
    fn owned_handles_are_shared_per_id() {
        let reg = Registry::new();
        let a = reg.counter("hits", &[("shard", "0")]).unwrap();
        let b = reg.counter("hits", &[("shard", "0")]).unwrap();
        let other = reg.counter("hits", &[("shard", "1")]).unwrap();
        a.add(3);
        b.inc();
        other.inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counters["hits{shard=\"0\"}"], 4);
        assert_eq!(snap.counters["hits{shard=\"1\"}"], 1);
    }

    #[test]
    fn exports_read_live_values_and_reject_duplicates() {
        let reg = Registry::new();
        let source = Arc::new(Counter::new());
        let reader = source.clone();
        reg.export_counter("drift", &[], move || reader.get())
            .unwrap();
        source.add(9);
        assert_eq!(reg.snapshot().counters["drift"], 9);
        assert!(matches!(
            reg.export_counter("drift", &[], || 0),
            Err(RegistryError::Duplicate { .. })
        ));
        assert!(matches!(
            reg.counter("drift", &[]),
            Err(RegistryError::External { .. })
        ));
    }

    #[test]
    fn registered_shared_handles_keep_counting() {
        let reg = Registry::new();
        let c = Arc::new(Counter::new());
        reg.register_counter("applied", &[], c.clone()).unwrap();
        c.add(2);
        assert_eq!(reg.snapshot().counters["applied"], 2);
        assert!(matches!(
            reg.register_counter("applied", &[], c),
            Err(RegistryError::Duplicate { .. })
        ));
        let h = Arc::new(crate::Histogram::new());
        reg.register_histogram("probe_len", &[], h.clone()).unwrap();
        h.observe(5);
        assert_eq!(reg.snapshot().histograms["probe_len"].count, 1);
    }

    #[test]
    fn gauges_export_and_own() {
        let reg = Registry::new();
        let g = reg.gauge("depth", &[]).unwrap();
        g.set(12);
        reg.export_gauge("base", &[], || 7).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.gauges["depth"], 12);
        assert_eq!(snap.gauges["base"], 7);
    }
}
