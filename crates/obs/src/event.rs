//! The typed event taxonomy recorded into [`EventTrace`](crate::EventTrace)s.
//!
//! Events carry only primitive fields so this crate stays at the bottom
//! of the dependency graph: the runtime crates map their richer types
//! (supervisor transitions, epoch handles) down to these.

/// The kind of a supervisor state-machine transition, mirroring the
/// variants of `sepe-core`'s `Transition` without its payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TransitionKind {
    /// A resynthesis request entered the queue.
    Enqueued,
    /// An attempt started running.
    Started,
    /// An attempt produced a validated plan.
    Succeeded,
    /// An attempt failed with a typed error.
    Failed,
    /// An attempt blew its deadline and was cancelled.
    TimedOut,
    /// An attempt panicked and was absorbed.
    Panicked,
    /// A retry was scheduled with backoff.
    BackoffScheduled,
    /// A tag's circuit breaker opened.
    BreakerOpened,
    /// A breaker moved to half-open for a probe attempt.
    BreakerHalfOpen,
    /// A breaker closed after a successful probe.
    BreakerClosed,
    /// A request was rejected (breaker open or queue discipline).
    Rejected,
}

impl TransitionKind {
    /// Every kind, in declaration order — the canonical label order for
    /// per-kind counter families.
    pub const ALL: [TransitionKind; 11] = [
        TransitionKind::Enqueued,
        TransitionKind::Started,
        TransitionKind::Succeeded,
        TransitionKind::Failed,
        TransitionKind::TimedOut,
        TransitionKind::Panicked,
        TransitionKind::BackoffScheduled,
        TransitionKind::BreakerOpened,
        TransitionKind::BreakerHalfOpen,
        TransitionKind::BreakerClosed,
        TransitionKind::Rejected,
    ];

    /// Number of kinds (the size of a per-kind counter array).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name, used as a metric label value.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TransitionKind::Enqueued => "enqueued",
            TransitionKind::Started => "started",
            TransitionKind::Succeeded => "succeeded",
            TransitionKind::Failed => "failed",
            TransitionKind::TimedOut => "timed_out",
            TransitionKind::Panicked => "panicked",
            TransitionKind::BackoffScheduled => "backoff_scheduled",
            TransitionKind::BreakerOpened => "breaker_opened",
            TransitionKind::BreakerHalfOpen => "breaker_half_open",
            TransitionKind::BreakerClosed => "breaker_closed",
            TransitionKind::Rejected => "rejected",
        }
    }

    /// Dense index into [`TransitionKind::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One observable runtime event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsEvent {
    /// A guard saw a burst of off-format keys.
    DriftBurst {
        /// Off-format observations in the burst.
        off_format: u64,
    },
    /// A migration epoch opened (degrade or resynthesis swap).
    EpochOpen,
    /// A mutating op drained entries from an old epoch.
    EpochDrain {
        /// Entries moved by this drain step.
        entries: u64,
    },
    /// A migration epoch fully drained and closed.
    EpochFinish,
    /// A shard fell back to its guarded fallback hash.
    ShardDegrade {
        /// Index of the degraded shard.
        shard: u64,
    },
    /// A shard's collision-storm detector took an upward rung on the
    /// HashDoS escalation ladder (degrade or keyed; seed rotations are
    /// recorded as [`ObsEvent::SeedRotation`]).
    ShardEscalate {
        /// Index of the escalated shard.
        shard: u64,
    },
    /// A shard de-escalated back to its specialized hash after a quiet
    /// window.
    ShardDeescalate {
        /// Index of the re-armed shard.
        shard: u64,
    },
    /// A shard rotated the secret seed of its keyed hash (the response to
    /// a storm persisting on the keyed rung).
    SeedRotation {
        /// Index of the rotating shard.
        shard: u64,
    },
    /// The resynthesis supervisor recorded a state transition.
    SupervisorTransition {
        /// Tag (shard id) the transition belongs to.
        tag: u64,
        /// Kind of transition.
        kind: TransitionKind,
    },
    /// A synthesis search completed, with its search statistics.
    SynthSearch {
        /// Candidate positions the target scan expanded.
        nodes_expanded: u64,
        /// Candidate targets rejected as already covered.
        candidates_rejected: u64,
        /// Total candidate covers scored by the search (identical for
        /// sequential and parallel runs of the same pattern).
        candidates_considered: u64,
        /// Wall-clock time to the final plan, in milliseconds.
        time_to_plan_ms: u64,
    },
}

impl ObsEvent {
    /// Stable snake_case name of the event variant.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ObsEvent::DriftBurst { .. } => "drift_burst",
            ObsEvent::EpochOpen => "epoch_open",
            ObsEvent::EpochDrain { .. } => "epoch_drain",
            ObsEvent::EpochFinish => "epoch_finish",
            ObsEvent::ShardDegrade { .. } => "shard_degrade",
            ObsEvent::ShardEscalate { .. } => "shard_escalate",
            ObsEvent::ShardDeescalate { .. } => "shard_deescalate",
            ObsEvent::SeedRotation { .. } => "seed_rotation",
            ObsEvent::SupervisorTransition { .. } => "supervisor_transition",
            ObsEvent::SynthSearch { .. } => "synth_search",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_are_dense_and_stable() {
        for (i, kind) in TransitionKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
        let mut names: Vec<_> = TransitionKind::ALL.iter().map(|k| k.name()).collect();
        names.dedup();
        assert_eq!(names.len(), TransitionKind::COUNT);
    }

    #[test]
    fn event_names_are_distinct() {
        let events = [
            ObsEvent::DriftBurst { off_format: 1 },
            ObsEvent::EpochOpen,
            ObsEvent::EpochDrain { entries: 2 },
            ObsEvent::EpochFinish,
            ObsEvent::ShardDegrade { shard: 0 },
            ObsEvent::ShardEscalate { shard: 0 },
            ObsEvent::ShardDeescalate { shard: 0 },
            ObsEvent::SeedRotation { shard: 0 },
            ObsEvent::SupervisorTransition {
                tag: 0,
                kind: TransitionKind::Enqueued,
            },
            ObsEvent::SynthSearch {
                nodes_expanded: 1,
                candidates_rejected: 0,
                candidates_considered: 2,
                time_to_plan_ms: 3,
            },
        ];
        let mut names: Vec<_> = events.iter().map(ObsEvent::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), events.len());
    }
}
