//! A bounded ring buffer of typed events.
//!
//! The trace favors the recording side: a push is one short mutex hold
//! (no allocation after the ring fills) and never blocks on a reader
//! longer than a `VecDeque` push. When the ring is full the *incoming*
//! event is dropped and counted, so the retained prefix stays a faithful,
//! gap-free transcript of the run's beginning — the property the
//! supervisor's replay audits rely on. Lock poisoning is recovered: a
//! panicking reader must not take the transcript down with it.

use crate::metrics::Counter;
use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// A bounded, thread-safe event ring with drop accounting.
#[derive(Debug)]
pub struct EventTrace<T> {
    ring: Mutex<VecDeque<T>>,
    capacity: usize,
    pushed: Counter,
    dropped: Counter,
}

impl<T> EventTrace<T> {
    /// An empty trace holding at most `capacity` events (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity,
            pushed: Counter::new(),
            dropped: Counter::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<T>> {
        self.ring.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records an event. Returns `false` (and counts the drop) when the
    /// ring is already full.
    pub fn push(&self, event: T) -> bool {
        self.pushed.inc();
        let mut ring = self.lock();
        if ring.len() >= self.capacity {
            drop(ring);
            self.dropped.inc();
            return false;
        }
        ring.push_back(event);
        true
    }

    /// Events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Maximum retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total push attempts, including dropped ones.
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.pushed.get()
    }

    /// Events rejected because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Discards all retained events (the counters keep their totals).
    pub fn clear(&self) {
        self.lock().clear();
    }
}

impl<T: Clone> EventTrace<T> {
    /// A copy of the retained events, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<T> {
        self.lock().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_the_oldest_events_when_full() {
        let trace = EventTrace::new(3);
        for i in 0..5u32 {
            trace.push(i);
        }
        assert_eq!(trace.snapshot(), vec![0, 1, 2]);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.pushed(), 5);
        assert_eq!(trace.dropped(), 2);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let trace = EventTrace::new(0);
        assert_eq!(trace.capacity(), 1);
        assert!(trace.push('a'));
        assert!(!trace.push('b'));
        assert_eq!(trace.snapshot(), vec!['a']);
    }

    #[test]
    fn clear_keeps_the_accounting() {
        let trace = EventTrace::new(2);
        trace.push(1u8);
        trace.push(2);
        trace.push(3);
        trace.clear();
        assert!(trace.is_empty());
        assert_eq!(trace.pushed(), 3);
        assert_eq!(trace.dropped(), 1);
        assert!(trace.push(4));
    }

    #[test]
    fn survives_a_poisoned_lock() {
        let trace = std::sync::Arc::new(EventTrace::new(4));
        let t2 = trace.clone();
        let _ = std::thread::spawn(move || {
            let _guard = t2.lock();
            panic!("poison the ring");
        })
        .join();
        assert!(trace.push(7u64));
        assert_eq!(trace.snapshot(), vec![7]);
    }
}
