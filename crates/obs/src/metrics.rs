//! Relaxed-atomic metric primitives.
//!
//! Both primitives are a single `AtomicU64` and are wait-free on the
//! write path. [`Counter`] pins the saturating-overflow contract the
//! guard drift counters have always had: a bump that would wrap stores
//! `u64::MAX` instead, and every later bump re-pins it, so a saturated
//! counter can never be observed small again. The transient where another
//! thread reads the wrapped value before the pinning store lands is
//! accepted — drift policy treats any huge count identically.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone (except for explicit [`reset`](Counter::reset)) event
/// counter with relaxed ordering and saturating overflow.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` observations, saturating at `u64::MAX` instead of
    /// wrapping — the pinned `GuardStats` semantics.
    #[inline]
    pub fn add(&self, n: u64) {
        let prev = self.value.fetch_add(n, Ordering::Relaxed);
        if prev > u64::MAX - n {
            self.value.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero. Racing bumps may survive the reset;
    /// callers that need exact windows should record bases instead (see
    /// the guard's windowed drift counters).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins instantaneous value (window bases, queue depths).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge starting at zero.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Stores a new value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn zero_sized_bumps_are_noops() {
        let c = Counter::new();
        c.add(0);
        assert_eq!(c.get(), 0);
        c.add(u64::MAX);
        c.add(0);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauges_take_the_last_write() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }
}
