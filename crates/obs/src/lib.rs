//! Unified observability for the SEPE runtime.
//!
//! The synthesize → guard → degrade → resynthesize pipeline spans several
//! subsystems — format guards, migration epochs, lock-striped shards, a
//! background resynthesis supervisor — and each of them grew its own ad-hoc
//! telemetry. This crate gives them one dependency-light surface:
//!
//! * [`Counter`] / [`Gauge`] — relaxed-atomic primitives with the pinned
//!   saturating-overflow semantics the drift counters have relied on since
//!   they became lock-free: a counter that would wrap is stored as
//!   `u64::MAX` and stays there.
//! * [`Histogram`] — a log-bucketed (powers of two, 65 buckets) value
//!   histogram for latencies and sizes, summarizable through
//!   [`sepe_stats`] boxplots.
//! * [`Registry`] — labeled metric families with canonical ids
//!   (`name{k="v",...}`, labels sorted), owning counters handed to hot
//!   paths and *exporting* read-only views of state that lives elsewhere
//!   (a guard's drift counters, a table's epoch counters) through
//!   closures.
//! * [`EventTrace`] — a bounded ring of typed events ([`ObsEvent`]) that
//!   never blocks the recording side beyond one short mutex hold, and
//!   counts what it had to drop.
//! * [`Snapshot`] — a deterministic export: canonical ordering, values as
//!   decimal strings (exact for the full `u64` range), schema
//!   [`SCHEMA`](snapshot::SCHEMA) = `sepe-metrics/v1`, and a strict parser
//!   that rejects corruption with typed [`SnapshotError`]s.
//!
//! # The `obs` façade
//!
//! The metric primitives are always compiled and always correct — guard
//! drift counters are load-bearing (degradation policy reads them), so
//! they cannot be compiled away. What *can* be compiled away is the pure
//! observability instrumentation layered on the hot paths: probe-length
//! histograms, lock-acquisition counters, batch chunk counters. Call
//! sites gate those bumps on [`enabled()`], a `const fn` on
//! `cfg!(feature = "obs")`, so an `obs`-off build folds the whole branch
//! to nothing.
//!
//! Locking discipline: counters, gauges, and histograms are wait-free on
//! the write path (one relaxed RMW). The registry and trace use a mutex,
//! but only on registration, snapshot, and event push — never inside a
//! per-key hot loop.

pub mod event;
pub mod histogram;
pub mod metrics;
pub mod registry;
pub mod snapshot;
pub mod trace;

pub use event::{ObsEvent, TransitionKind};
pub use histogram::{Histogram, BUCKETS};
pub use metrics::{Counter, Gauge};
pub use registry::{metric_id, Registry, RegistryError};
pub use snapshot::{HistogramSnapshot, Snapshot, SnapshotError, SCHEMA};
pub use trace::EventTrace;

/// Whether pure-observability instrumentation is compiled in.
///
/// This is `const`, so `if sepe_obs::enabled() { ... }` disappears
/// entirely from `obs`-off builds — the near-zero-cost façade the hot
/// paths are instrumented behind. Load-bearing counters (guard drift)
/// must *not* be gated on this.
#[inline(always)]
#[must_use]
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}
