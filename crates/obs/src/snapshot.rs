//! Deterministic snapshot export with a strict, typed parser.
//!
//! A [`Snapshot`] renders to one canonical JSON spelling: object keys in
//! sorted order (metric ids are already canonical, top-level sections
//! alphabetical), no whitespace, and every numeric value encoded as a
//! decimal *string* so the full `u64` range round-trips exactly (JSON
//! numbers are doubles; counters saturate at `u64::MAX`, far past 2^53).
//! Rendering the same registry state twice yields byte-identical output —
//! the property the reproduction pipeline pins with an end-to-end test.
//!
//! Parsing is the trust boundary for snapshots read back from disk, so
//! it is strict: unknown schema strings, malformed JSON, duplicate keys,
//! non-decimal values, out-of-range bucket indices, and histograms whose
//! bucket counts do not sum to their `count` are all rejected with a
//! typed [`SnapshotError`] — never a panic, never a silently patched
//! value.

use crate::histogram::BUCKETS;
use std::collections::BTreeMap;
use std::fmt;

/// Schema identifier pinned into every rendered snapshot.
pub const SCHEMA: &str = "sepe-metrics/v1";

/// A histogram reduced to its occupied buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Saturating sum of observed values.
    pub sum: u64,
    /// Occupied bucket index → observation count.
    pub buckets: BTreeMap<u8, u64>,
}

/// A point-in-time reading of a [`Registry`](crate::Registry).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter id → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge id → value.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram id → bucketed summary.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Typed failure of [`Snapshot::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input is not the expected JSON shape.
    Malformed {
        /// Byte offset of the failure.
        at: usize,
        /// What went wrong.
        message: String,
    },
    /// The schema field does not match [`SCHEMA`].
    SchemaMismatch {
        /// The schema string found in the input.
        found: String,
    },
    /// A required top-level section is missing.
    MissingField {
        /// Name of the missing field.
        field: String,
    },
    /// A metric value is not a decimal `u64` string.
    BadValue {
        /// Metric id (or `id.field` path) the value belongs to.
        id: String,
        /// What went wrong.
        message: String,
    },
    /// A histogram's bucket counts do not sum to its `count`.
    BucketSumMismatch {
        /// Histogram id.
        id: String,
        /// Sum of the bucket counts.
        buckets: u64,
        /// The claimed total count.
        count: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Malformed { at, message } => {
                write!(f, "malformed snapshot at byte {at}: {message}")
            }
            SnapshotError::SchemaMismatch { found } => {
                write!(f, "snapshot schema {found:?} is not {SCHEMA:?}")
            }
            SnapshotError::MissingField { field } => {
                write!(f, "snapshot is missing the {field:?} section")
            }
            SnapshotError::BadValue { id, message } => {
                write!(f, "snapshot value for {id}: {message}")
            }
            SnapshotError::BucketSumMismatch { id, buckets, count } => write!(
                f,
                "histogram {id}: bucket counts sum to {buckets} but count claims {count}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_u64_map(out: &mut String, map: &BTreeMap<String, u64>) {
    out.push('{');
    for (i, (id, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, id);
        out.push(':');
        push_json_string(out, &v.to_string());
    }
    out.push('}');
}

impl Snapshot {
    /// Renders the canonical JSON spelling of this snapshot.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64 + 48 * self.counters.len());
        out.push_str("{\"counters\":");
        push_u64_map(&mut out, &self.counters);
        out.push_str(",\"gauges\":");
        push_u64_map(&mut out, &self.gauges);
        out.push_str(",\"histograms\":{");
        for (i, (id, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, id);
            out.push_str(":{\"buckets\":{");
            for (j, (bucket, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_string(&mut out, &bucket.to_string());
                out.push(':');
                push_json_string(&mut out, &c.to_string());
            }
            out.push_str("},\"count\":");
            push_json_string(&mut out, &h.count.to_string());
            out.push_str(",\"sum\":");
            push_json_string(&mut out, &h.sum.to_string());
            out.push('}');
        }
        out.push_str("},\"schema\":");
        push_json_string(&mut out, SCHEMA);
        out.push('}');
        out
    }

    /// Parses and validates a rendered snapshot.
    ///
    /// # Errors
    ///
    /// Every corruption mode maps to a typed [`SnapshotError`]; see the
    /// module docs.
    pub fn parse(input: &str) -> Result<Self, SnapshotError> {
        let value = Parser::new(input).document()?;
        let mut top = match value {
            Node::Obj(map) => map,
            Node::Str(_) => {
                return Err(SnapshotError::Malformed {
                    at: 0,
                    message: "top level is not an object".to_owned(),
                })
            }
        };
        let schema = match top.remove("schema") {
            Some(Node::Str(s)) => s,
            Some(Node::Obj(_)) => {
                return Err(SnapshotError::BadValue {
                    id: "schema".to_owned(),
                    message: "expected a string".to_owned(),
                })
            }
            None => {
                return Err(SnapshotError::MissingField {
                    field: "schema".to_owned(),
                })
            }
        };
        if schema != SCHEMA {
            return Err(SnapshotError::SchemaMismatch { found: schema });
        }
        let counters = take_u64_map(&mut top, "counters")?;
        let gauges = take_u64_map(&mut top, "gauges")?;
        let histograms = take_histograms(&mut top)?;
        if let Some(extra) = top.keys().next() {
            return Err(SnapshotError::Malformed {
                at: 0,
                message: format!("unexpected top-level key {extra:?}"),
            });
        }
        Ok(Snapshot {
            counters,
            gauges,
            histograms,
        })
    }

    /// Convenience lookup of a counter by canonical id.
    #[must_use]
    pub fn counter(&self, id: &str) -> Option<u64> {
        self.counters.get(id).copied()
    }

    /// Convenience lookup of a gauge by canonical id.
    #[must_use]
    pub fn gauge(&self, id: &str) -> Option<u64> {
        self.gauges.get(id).copied()
    }

    /// Sum of every counter whose id starts with `name` followed by `{`
    /// or an exact match — i.e. all label combinations of one family.
    #[must_use]
    pub fn counter_family_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(id, _)| {
                id.as_str() == name
                    || (id.starts_with(name) && id.as_bytes().get(name.len()) == Some(&b'{'))
            })
            .fold(0u64, |a, (_, v)| a.saturating_add(*v))
    }
}

fn parse_u64(id: &str, s: &str) -> Result<u64, SnapshotError> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return Err(SnapshotError::BadValue {
            id: id.to_owned(),
            message: format!("{s:?} is not a decimal u64"),
        });
    }
    // Reject redundant leading zeros so every value has one spelling.
    if s.len() > 1 && s.starts_with('0') {
        return Err(SnapshotError::BadValue {
            id: id.to_owned(),
            message: format!("{s:?} has leading zeros"),
        });
    }
    s.parse::<u64>().map_err(|_| SnapshotError::BadValue {
        id: id.to_owned(),
        message: format!("{s:?} overflows u64"),
    })
}

fn take_u64_map(
    top: &mut BTreeMap<String, Node>,
    field: &str,
) -> Result<BTreeMap<String, u64>, SnapshotError> {
    let node = top
        .remove(field)
        .ok_or_else(|| SnapshotError::MissingField {
            field: field.to_owned(),
        })?;
    let map = match node {
        Node::Obj(map) => map,
        Node::Str(_) => {
            return Err(SnapshotError::BadValue {
                id: field.to_owned(),
                message: "expected an object".to_owned(),
            })
        }
    };
    let mut out = BTreeMap::new();
    for (id, v) in map {
        let raw = match v {
            Node::Str(s) => s,
            Node::Obj(_) => {
                return Err(SnapshotError::BadValue {
                    id,
                    message: "expected a string value".to_owned(),
                })
            }
        };
        let value = parse_u64(&id, &raw)?;
        out.insert(id, value);
    }
    Ok(out)
}

fn take_histograms(
    top: &mut BTreeMap<String, Node>,
) -> Result<BTreeMap<String, HistogramSnapshot>, SnapshotError> {
    let node = top
        .remove("histograms")
        .ok_or_else(|| SnapshotError::MissingField {
            field: "histograms".to_owned(),
        })?;
    let map = match node {
        Node::Obj(map) => map,
        Node::Str(_) => {
            return Err(SnapshotError::BadValue {
                id: "histograms".to_owned(),
                message: "expected an object".to_owned(),
            })
        }
    };
    let mut out = BTreeMap::new();
    for (id, v) in map {
        let mut fields = match v {
            Node::Obj(fields) => fields,
            Node::Str(_) => {
                return Err(SnapshotError::BadValue {
                    id,
                    message: "expected a histogram object".to_owned(),
                })
            }
        };
        let count = match fields.remove("count") {
            Some(Node::Str(s)) => parse_u64(&format!("{id}.count"), &s)?,
            _ => {
                return Err(SnapshotError::BadValue {
                    id,
                    message: "missing or non-string count".to_owned(),
                })
            }
        };
        let sum = match fields.remove("sum") {
            Some(Node::Str(s)) => parse_u64(&format!("{id}.sum"), &s)?,
            _ => {
                return Err(SnapshotError::BadValue {
                    id,
                    message: "missing or non-string sum".to_owned(),
                })
            }
        };
        let bucket_map = match fields.remove("buckets") {
            Some(Node::Obj(b)) => b,
            _ => {
                return Err(SnapshotError::BadValue {
                    id,
                    message: "missing buckets object".to_owned(),
                })
            }
        };
        if let Some(extra) = fields.keys().next() {
            return Err(SnapshotError::BadValue {
                id,
                message: format!("unexpected histogram field {extra:?}"),
            });
        }
        let mut buckets = BTreeMap::new();
        let mut bucket_total = 0u64;
        for (bucket, c) in bucket_map {
            let index = parse_u64(&format!("{id}.buckets"), &bucket)?;
            if index as usize >= BUCKETS {
                return Err(SnapshotError::BadValue {
                    id,
                    message: format!("bucket index {index} out of range"),
                });
            }
            let raw = match c {
                Node::Str(s) => s,
                Node::Obj(_) => {
                    return Err(SnapshotError::BadValue {
                        id,
                        message: "bucket count is not a string".to_owned(),
                    })
                }
            };
            let value = parse_u64(&format!("{id}.buckets[{index}]"), &raw)?;
            if value == 0 {
                return Err(SnapshotError::BadValue {
                    id,
                    message: format!("bucket {index} records an empty count"),
                });
            }
            bucket_total = bucket_total.saturating_add(value);
            buckets.insert(index as u8, value);
        }
        if bucket_total != count {
            return Err(SnapshotError::BucketSumMismatch {
                id,
                buckets: bucket_total,
                count,
            });
        }
        out.insert(
            id,
            HistogramSnapshot {
                count,
                sum,
                buckets,
            },
        );
    }
    Ok(out)
}

/// The only JSON shapes a snapshot contains: strings and string-keyed
/// objects. Anything else is malformed by construction.
enum Node {
    Str(String),
    Obj(BTreeMap<String, Node>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> SnapshotError {
        SnapshotError::Malformed {
            at: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), SnapshotError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn document(&mut self) -> Result<Node, SnapshotError> {
        let value = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing content after the snapshot"));
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Node, SnapshotError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'"') => Ok(Node::Str(self.string()?)),
            Some(_) => Err(self.err("expected a string or an object")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Node, SnapshotError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Node::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(self.err(format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Node::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected a string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    // The input is a &str, so the slice is valid UTF-8.
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("guard_off_format".to_owned(), 3);
        snap.counters
            .insert("hits{shard=\"0\"}".to_owned(), u64::MAX);
        snap.gauges.insert("win_base".to_owned(), 17);
        snap.histograms.insert(
            "probe_len".to_owned(),
            HistogramSnapshot {
                count: 4,
                sum: 10,
                buckets: [(1u8, 3u64), (2, 1)].into_iter().collect(),
            },
        );
        snap
    }

    #[test]
    fn render_parse_round_trips_byte_identically() {
        let snap = sample();
        let rendered = snap.render();
        let parsed = Snapshot::parse(&rendered).expect("parses");
        assert_eq!(parsed, snap);
        assert_eq!(parsed.render(), rendered);
        assert!(rendered.contains("\"schema\":\"sepe-metrics/v1\""));
        assert_eq!(parsed.counter("guard_off_format"), Some(3));
        assert_eq!(parsed.counter("hits{shard=\"0\"}"), Some(u64::MAX));
    }

    #[test]
    fn family_totals_sum_label_combinations() {
        let mut snap = Snapshot::default();
        snap.counters.insert("hits{shard=\"0\"}".to_owned(), 2);
        snap.counters.insert("hits{shard=\"1\"}".to_owned(), 5);
        snap.counters.insert("hits_total".to_owned(), 100);
        assert_eq!(snap.counter_family_total("hits"), 7);
        assert_eq!(snap.counter_family_total("hits_total"), 100);
        assert_eq!(snap.counter_family_total("missing"), 0);
    }

    #[test]
    fn schema_mismatch_is_typed() {
        let doc = sample()
            .render()
            .replace("sepe-metrics/v1", "sepe-metrics/v0");
        match Snapshot::parse(&doc) {
            Err(SnapshotError::SchemaMismatch { found }) => {
                assert_eq!(found, "sepe-metrics/v0");
            }
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
    }

    #[test]
    fn bucket_sum_mismatch_is_typed() {
        let doc = sample()
            .render()
            .replace("\"count\":\"4\"", "\"count\":\"5\"");
        match Snapshot::parse(&doc) {
            Err(SnapshotError::BucketSumMismatch { buckets, count, .. }) => {
                assert_eq!((buckets, count), (4, 5));
            }
            other => panic!("expected BucketSumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn corruption_modes_map_to_typed_errors() {
        assert!(matches!(
            Snapshot::parse("not json"),
            Err(SnapshotError::Malformed { .. })
        ));
        let truncated = &sample().render()[..40];
        assert!(matches!(
            Snapshot::parse(truncated),
            Err(SnapshotError::Malformed { .. })
        ));
        assert!(matches!(
            Snapshot::parse(r#"{"counters":{},"gauges":{},"histograms":{}}"#),
            Err(SnapshotError::MissingField { .. })
        ));
        let bad_value = sample().render().replace("\"17\"", "\"-17\"");
        assert!(matches!(
            Snapshot::parse(&bad_value),
            Err(SnapshotError::BadValue { .. })
        ));
        let overflow = sample()
            .render()
            .replace("\"17\"", "\"99999999999999999999999\"");
        assert!(matches!(
            Snapshot::parse(&overflow),
            Err(SnapshotError::BadValue { .. })
        ));
        let dup = r#"{"counters":{"a":"1","a":"2"},"gauges":{},"histograms":{},"schema":"sepe-metrics/v1"}"#;
        assert!(matches!(
            Snapshot::parse(dup),
            Err(SnapshotError::Malformed { .. })
        ));
        let extra = sample()
            .render()
            .replacen("{\"counters\"", "{\"zextra\":{},\"counters\"", 1);
        assert!(matches!(
            Snapshot::parse(&extra),
            Err(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn escaped_ids_round_trip() {
        let mut snap = Snapshot::default();
        snap.counters.insert("weird\n\"id\"\\x".to_owned(), 1);
        let rendered = snap.render();
        let parsed = Snapshot::parse(&rendered).expect("parses");
        assert_eq!(parsed, snap);
    }
}
