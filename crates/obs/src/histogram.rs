//! A log-bucketed value histogram for latencies and sizes.
//!
//! Values are binned by bit length: bucket 0 holds exactly the value 0,
//! and bucket `i` (1 ≤ i ≤ 64) holds `2^(i-1) ≤ v < 2^i`. 65 fixed
//! buckets cover the whole `u64` range, so recording is a constant-time
//! relaxed bump with no allocation and no lock — cheap enough for probe
//! chains and per-op latencies on the hot path.

use crate::metrics::Counter;
use sepe_stats::BoxplotSummary;

/// Number of log buckets: one for zero plus one per bit length.
pub const BUCKETS: usize = 65;

/// Cap on the reconstructed sample count fed to [`Histogram::boxplot`].
const BOXPLOT_SAMPLE_CAP: u64 = 4096;

/// Bucket index of a value: 0 for 0, else the value's bit length.
#[inline]
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `(lo, hi)` value range of bucket `i`.
///
/// # Panics
///
/// Panics when `i >= BUCKETS`.
#[must_use]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

/// A fixed-shape log histogram with saturating counters throughout.
#[derive(Debug)]
pub struct Histogram {
    buckets: [Counter; BUCKETS],
    count: Counter,
    sum: Counter,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| Counter::new()),
            count: Counter::new(),
            sum: Counter::new(),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].inc();
        self.count.inc();
        self.sum.add(v);
    }

    /// Total observations recorded.
    #[inline]
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Saturating sum of all observed values.
    #[inline]
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.get()
    }

    /// Per-bucket observation counts.
    #[must_use]
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].get())
    }

    /// An upper bound on the `q`-quantile (0 ≤ q ≤ 1): the inclusive top
    /// of the first bucket whose cumulative count reaches `q · count`.
    /// `None` when the histogram is empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().fold(0, |a, &c| a.saturating_add(c));
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(bucket_bounds(i).1);
            }
        }
        Some(u64::MAX)
    }

    /// A five-number summary via [`sepe_stats`], reconstructed from
    /// bucket midpoints. At most [`BOXPLOT_SAMPLE_CAP`] representative
    /// samples are materialized (proportionally thinned, at least one per
    /// occupied bucket), so the cost is bounded no matter how many
    /// observations were recorded. `None` when empty.
    #[must_use]
    pub fn boxplot(&self) -> Option<BoxplotSummary> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().fold(0, |a, &c| a.saturating_add(c));
        if total == 0 {
            return None;
        }
        let mut samples = Vec::new();
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, hi) = bucket_bounds(i);
            let mid = (lo + (hi - lo) / 2) as f64;
            let reps = if total <= BOXPLOT_SAMPLE_CAP {
                c
            } else {
                ((u128::from(c) * u128::from(BOXPLOT_SAMPLE_CAP) / u128::from(total)) as u64).max(1)
            };
            samples.extend(std::iter::repeat_n(mid, reps as usize));
        }
        BoxplotSummary::of(&samples)
    }

    /// Clears every bucket. Racing observes may survive; snapshot-minded
    /// callers should diff instead.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.reset();
        }
        self.count.reset();
        self.sum.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_covers_the_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
        }
    }

    #[test]
    fn observations_land_in_their_buckets() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 7, 9, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1042);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 2);
        assert_eq!(counts[3], 1); // 7
        assert_eq!(counts[4], 1); // 9
        assert_eq!(counts[11], 1); // 1024
    }

    #[test]
    fn quantiles_walk_the_cumulative_buckets() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..90 {
            h.observe(3);
        }
        for _ in 0..10 {
            h.observe(1000);
        }
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(0.99), Some(1023));
        assert_eq!(h.quantile(0.0), Some(3));
    }

    #[test]
    fn boxplot_summarizes_without_unbounded_memory() {
        let h = Histogram::new();
        assert!(h.boxplot().is_none());
        for _ in 0..100_000 {
            h.observe(8);
        }
        let s = h.boxplot().expect("non-empty");
        assert_eq!(s.median, 11.0); // midpoint of [8, 15]
        assert_eq!(s.min, s.max);
    }
}
