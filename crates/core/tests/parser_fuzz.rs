//! Robustness fuzzing for the regex front end: the parser and expander must
//! be total (return `Ok` or a structured error, never panic) on arbitrary
//! input, and everything they accept must go through synthesis and hashing
//! without trouble.

use proptest::prelude::*;
use sepe_core::hash::{ByteHash, SynthesizedHash};
use sepe_core::regex::{parse, Regex};
use sepe_core::synth::Family;

/// Strings biased toward regex metacharacters so the parser's corners get
/// hit far more often than uniform ASCII would manage.
fn regexish() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        4 => prop::char::range('a', 'z').prop_map(|c| c.to_string()),
        4 => prop::char::range('0', '9').prop_map(|c| c.to_string()),
        1 => Just(r"\d".to_owned()),
        1 => Just(r"\.".to_owned()),
        1 => Just(r"\x4a".to_owned()),
        2 => Just("[0-9]".to_owned()),
        2 => Just("[a-f0-9]".to_owned()),
        1 => Just("[^,]".to_owned()),
        1 => Just(".".to_owned()),
        1 => Just("(".to_owned()),
        1 => Just(")".to_owned()),
        1 => Just("{2}".to_owned()),
        1 => Just("{1,3}".to_owned()),
        1 => Just("?".to_owned()),
        1 => Just("[".to_owned()),
        1 => Just("]".to_owned()),
        1 => Just("-".to_owned()),
        1 => Just("^".to_owned()),
        1 => Just("\\".to_owned()),
        1 => Just("|".to_owned()),
        1 => Just("*".to_owned()),
    ];
    prop::collection::vec(atom, 0..24).prop_map(|parts| parts.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_is_total_on_metacharacter_soup(src in regexish()) {
        // Must not panic; errors are fine.
        let _ = parse(&src);
    }

    #[test]
    fn parser_is_total_on_arbitrary_ascii(src in "[ -~]{0,40}") {
        let _ = parse(&src);
    }

    #[test]
    fn accepted_expressions_synthesize_and_hash(src in regexish()) {
        let Ok(pattern) = Regex::compile(&src) else {
            return Ok(());
        };
        prop_assume!(pattern.max_len() <= 512);
        for family in Family::ALL {
            let hash = SynthesizedHash::from_pattern(&pattern, family);
            // Hash a key of minimum and maximum plausible length.
            let short = vec![b'0'; pattern.min_len().max(1)];
            let long = vec![b'z'; pattern.max_len().max(1)];
            prop_assert_eq!(hash.hash_bytes(&short), hash.hash_bytes(&short));
            prop_assert_eq!(hash.hash_bytes(&long), hash.hash_bytes(&long));
        }
    }

    #[test]
    fn expansion_respects_declared_length_bounds(src in regexish()) {
        let Ok(regex) = parse(&src) else {
            return Ok(());
        };
        let Ok(expansion) = regex.expand() else {
            return Ok(());
        };
        prop_assert!(expansion.min_len <= expansion.classes.len());
        // Every class an accepted expression produced is non-empty.
        for c in &expansion.classes {
            prop_assert!(!c.is_empty());
        }
    }
}
