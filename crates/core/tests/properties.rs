//! Property-based tests for the SEPE core: lattice laws, inference
//! soundness, regex round-trips, bit-extraction correctness and the Pext
//! bijection guarantee.

use proptest::collection::vec;
use proptest::prelude::*;
use sepe_core::bits::{pdep_reference, pdep_soft, pext_reference, pext_soft, pext_u64, Isa};
use sepe_core::hash::{ByteHash, SynthesizedHash};
use sepe_core::infer::infer_pattern;
use sepe_core::lattice::{quads_of_byte, Quad};
use sepe_core::pattern::{BytePattern, KeyPattern};
use sepe_core::regex::render::render;
use sepe_core::regex::Regex;
use sepe_core::synth::Family;

fn arb_quad() -> impl Strategy<Value = Quad> {
    prop_oneof![(0u8..4).prop_map(Quad::new), Just(Quad::Top),]
}

proptest! {
    #[test]
    fn quad_join_is_a_semilattice(a in arb_quad(), b in arb_quad(), c in arb_quad()) {
        prop_assert_eq!(a.join(a), a);
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
        prop_assert_eq!(a.join(Quad::Top), Quad::Top);
    }

    #[test]
    fn quads_of_byte_are_consistent_with_byte_pattern(byte in any::<u8>()) {
        let p = BytePattern::literal(byte);
        prop_assert_eq!(p.quads(), quads_of_byte(byte));
        prop_assert!(p.matches(byte));
        prop_assert_eq!(p.cardinality(), 1);
    }

    #[test]
    fn byte_pattern_join_is_upper_bound(a in any::<u8>(), b in any::<u8>()) {
        let j = BytePattern::literal(a).join_byte(b);
        prop_assert!(j.matches(a));
        prop_assert!(j.matches(b));
        // Join never invents constants: cardinality is a power of 4 of the
        // number of top pairs.
        prop_assert!(j.cardinality().is_power_of_two());
    }

    #[test]
    fn inferred_pattern_accepts_every_example(
        keys in vec(vec(any::<u8>(), 0..24), 1..12)
    ) {
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let p = infer_pattern(refs.iter().copied()).expect("non-empty key set");
        for k in &refs {
            prop_assert!(p.matches(k), "pattern {p} must accept example {k:?}");
        }
    }

    #[test]
    fn render_round_trips_through_the_parser(
        keys in vec(vec(any::<u8>(), 1..24), 1..8)
    ) {
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let p = infer_pattern(refs.iter().copied()).expect("non-empty key set");
        let rendered = render(&p);
        let reparsed = Regex::compile(&rendered)
            .unwrap_or_else(|e| panic!("unparseable render {rendered:?}: {e}"));
        prop_assert_eq!(reparsed, p);
    }

    #[test]
    fn soft_pext_matches_the_figure_11_reference(src in any::<u64>(), mask in any::<u64>()) {
        prop_assert_eq!(pext_soft(src, mask), pext_reference(src, mask));
    }

    #[test]
    fn soft_pdep_matches_the_reference(src in any::<u64>(), mask in any::<u64>()) {
        prop_assert_eq!(pdep_soft(src, mask), pdep_reference(src, mask));
    }

    #[test]
    fn dispatched_pext_is_isa_independent(src in any::<u64>(), mask in any::<u64>()) {
        prop_assert_eq!(pext_u64(src, mask, Isa::Native), pext_u64(src, mask, Isa::Portable));
    }

    #[test]
    fn pext_pdep_are_inverse_on_masked_values(src in any::<u64>(), mask in any::<u64>()) {
        let extracted = pext_soft(src, mask);
        prop_assert_eq!(pdep_soft(extracted, mask), src & mask);
    }

    #[test]
    fn pext_preserves_popcount_of_masked_bits(src in any::<u64>(), mask in any::<u64>()) {
        prop_assert_eq!(pext_soft(src, mask).count_ones(), (src & mask).count_ones());
    }

    #[test]
    fn pext_family_is_injective_when_bits_fit(
        digits in vec(0u8..10, 16..=16),
        other in vec(0u8..10, 16..=16)
    ) {
        // 16 digits = 64 variable bits: Section 4.2 promises a bijection.
        let to_key = |ds: &[u8]| -> Vec<u8> { ds.iter().map(|d| b'0' + d).collect() };
        let h = SynthesizedHash::from_regex(r"[0-9]{16}", Family::Pext)
            .expect("regex compiles");
        let (a, b) = (to_key(&digits), to_key(&other));
        if a != b {
            prop_assert_ne!(h.hash_bytes(&a), h.hash_bytes(&b));
        } else {
            prop_assert_eq!(h.hash_bytes(&a), h.hash_bytes(&b));
        }
    }

    #[test]
    fn families_are_deterministic_and_isa_independent(
        digits in vec(0u8..10, 11..=11)
    ) {
        let key: Vec<u8> = format!(
            "{}{}{}-{}{}-{}{}{}{}",
            digits[0], digits[1], digits[2], digits[3], digits[4],
            digits[5], digits[6], digits[7], digits[8]
        ).into_bytes();
        for family in Family::ALL {
            let native = SynthesizedHash::from_regex(r"\d{3}-\d{2}-\d{4}", family)
                .expect("regex compiles");
            let portable = native.clone().with_isa(Isa::Portable);
            prop_assert_eq!(native.hash_bytes(&key), portable.hash_bytes(&key));
        }
    }

    #[test]
    fn matching_is_stable_under_join(
        keys in vec(vec(any::<u8>(), 1..16), 2..6),
        extra in vec(any::<u8>(), 1..16)
    ) {
        // Joining one more key never makes previously matching keys fail.
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let mut p = infer_pattern(refs.iter().copied()).expect("non-empty");
        let before: Vec<bool> = refs.iter().map(|k| p.matches(k)).collect();
        prop_assert!(before.iter().all(|&m| m));
        p.join_key(&extra);
        for k in &refs {
            prop_assert!(p.matches(k));
        }
        prop_assert!(p.matches(&extra));
    }

    #[test]
    fn key_pattern_of_key_matches_only_that_length(key in vec(any::<u8>(), 1..32)) {
        let p = KeyPattern::of_key(&key);
        prop_assert!(p.matches(&key));
        prop_assert!(p.is_fixed_len());
        let mut longer = key.clone();
        longer.push(0);
        prop_assert!(!p.matches(&longer));
    }
}
