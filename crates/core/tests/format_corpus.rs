//! A corpus of real-world key formats, each pushed through the full
//! pipeline: examples → inference → rendering → re-parsing → synthesis →
//! hashing. Broad coverage that the machinery holds up beyond the paper's
//! eight formats.

use sepe_core::hash::{ByteHash, SynthesizedHash};
use sepe_core::infer::infer_pattern;
use sepe_core::regex::render::render;
use sepe_core::regex::Regex;
use sepe_core::synth::Family;

struct FormatCase {
    name: &'static str,
    /// Example keys that exercise every varying quad.
    examples: &'static [&'static [u8]],
    /// Additional keys that must match the inferred format.
    members: &'static [&'static [u8]],
    /// Keys that must NOT match (wrong shape/length).
    non_members: &'static [&'static [u8]],
}

const CORPUS: &[FormatCase] = &[
    FormatCase {
        name: "iso8601-date",
        // All-0s / all-5s / all-9s digits: every digit quad exercised
        // (b"2000-01-01"-style examples leave the day's low pair constant
        // and reject dates like -06 — the trap `keybuilder --report` flags).
        examples: &[b"2000-00-00", b"2555-55-55", b"2999-99-99"],
        members: &[b"2026-07-06", b"2199-11-30"],
        non_members: &[b"2026/07/06", b"26-07-06"],
    },
    FormatCase {
        name: "license-plate-eu",
        examples: &[b"AA-000-AA", b"ZZ-555-ZZ", b"MK-999-QX"],
        members: &[b"AB-123-CD"],
        non_members: &[b"AB-123-C", b"AB1-23-CD"],
    },
    FormatCase {
        name: "isbn13",
        examples: &[
            b"978-0-000-00000-0",
            b"979-5-555-55555-5",
            b"978-9-999-99999-9",
        ],
        members: &[b"978-0-306-40615-7"],
        non_members: &[b"978 0 306 40615 7", b"9780306406157"],
    },
    FormatCase {
        name: "credit-card-grouped",
        examples: &[
            b"0000 0000 0000 0000",
            b"5555 5555 5555 5555",
            b"9999 9999 9999 9999",
        ],
        members: &[b"4242 4242 4242 4242"],
        non_members: &[b"4242-4242-4242-4242", b"4242424242424242"],
    },
    FormatCase {
        name: "hex-color",
        examples: &[b"#000000", b"#555555", b"#aaaaaa", b"#ffffff", b"#999999"],
        members: &[b"#1a2b3c"],
        non_members: &[b"1a2b3c!", b"#1a2b3"],
    },
    FormatCase {
        name: "semver-padded",
        examples: &[b"v00.00.00", b"v55.55.55", b"v99.19.28"],
        members: &[b"v01.12.33"],
        non_members: &[b"v1.12.33", b"01.12.33x"],
    },
    FormatCase {
        name: "flight-number",
        examples: &[b"AA0000", b"ZU5555", b"QM1984"],
        members: &[b"BA0284"],
        non_members: &[b"B0284a", b"BA028"],
    },
    FormatCase {
        name: "iban-de",
        examples: &[
            b"DE00 0000 0000 0000 0000 00",
            b"DE55 5555 5555 5555 5555 55",
            b"DE99 1928 3746 5091 8273 64",
        ],
        members: &[b"DE44 5001 0517 5407 3249 31"],
        non_members: &[b"FR44 5001 0517 5407 3249 31", b"DE44500105175407324931"],
    },
];

#[test]
fn corpus_round_trips_and_hashes() {
    for case in CORPUS {
        let pattern = infer_pattern(case.examples.iter().copied())
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));

        // Membership as declared.
        for m in case.examples.iter().chain(case.members) {
            assert!(pattern.matches(m), "{}: should accept {:?}", case.name, m);
        }
        for n in case.non_members {
            assert!(!pattern.matches(n), "{}: should reject {:?}", case.name, n);
        }

        // Render → parse round-trip preserves the lattice pattern.
        let rendered = render(&pattern);
        let reparsed = Regex::compile(&rendered)
            .unwrap_or_else(|e| panic!("{}: unparseable {rendered:?}: {e}", case.name));
        assert_eq!(reparsed, pattern, "{}: {rendered:?}", case.name);

        // Every family hashes members deterministically and separates the
        // sample (no trivial collisions on these tiny sets).
        for family in Family::ALL {
            let hash = SynthesizedHash::from_pattern(&pattern, family);
            let mut hashes: Vec<u64> = case
                .examples
                .iter()
                .chain(case.members)
                .map(|k| hash.hash_bytes(k))
                .collect();
            let n = hashes.len();
            hashes.sort_unstable();
            hashes.dedup();
            assert_eq!(hashes.len(), n, "{} {family}: sample collided", case.name);
        }
    }
}

#[test]
fn corpus_pext_bijections_where_bits_allow() {
    // Formats with <= 64 variable bits get the bijection guarantee.
    for case in CORPUS {
        let pattern = infer_pattern(case.examples.iter().copied()).expect("non-empty");
        let plan = sepe_core::synth::synthesize(&pattern, Family::Pext);
        if pattern.is_fixed_len() && pattern.max_len() >= 8 && pattern.variable_bits() <= 64 {
            assert!(
                plan.bijection_bits().is_some(),
                "{}: {} variable bits should admit a bijection",
                case.name,
                pattern.variable_bits()
            );
        }
    }
}

#[test]
fn corpus_constant_separators_are_skipped_by_offxor() {
    // Every corpus format has constant separators the OffXor plan must not
    // waste loads on: total loaded bytes stay within len (no more loads
    // than ceil(len/8)).
    for case in CORPUS {
        let pattern = infer_pattern(case.examples.iter().copied()).expect("non-empty");
        if !pattern.is_fixed_len() || pattern.max_len() < 8 {
            continue;
        }
        let plan = sepe_core::synth::synthesize(&pattern, Family::OffXor);
        let sepe_core::synth::Plan::FixedWords { ops, len } = plan else {
            panic!("{}: expected fixed plan", case.name);
        };
        assert!(
            ops.len() <= len.div_ceil(8),
            "{}: {} loads for {len} bytes",
            case.name,
            ops.len()
        );
    }
}
