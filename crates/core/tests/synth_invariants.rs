//! Property tests over the synthesis pipeline itself: whatever pattern
//! goes in, the produced plan respects the structural invariants the
//! evaluator and the code generators rely on.

use proptest::collection::vec;
use proptest::prelude::*;
use sepe_core::hash::{ByteHash, SynthesizedHash};
use sepe_core::infer::infer_pattern;
use sepe_core::pattern::KeyPattern;
use sepe_core::synth::{synthesize, synthesize_unchecked, Family, Plan};
use sepe_core::Isa;

fn pattern_from_keys(keys: &[Vec<u8>]) -> KeyPattern {
    let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
    infer_pattern(refs.iter().copied()).expect("non-empty key set")
}

/// Structural invariants every plan must satisfy for its pattern.
fn check_plan(plan: &Plan, pattern: &KeyPattern, family: Family) {
    match plan {
        Plan::StlFallback => {
            assert!(pattern.max_len() < 8, "fallback only for sub-word formats");
        }
        Plan::FixedWords { len, ops } => {
            assert_eq!(*len, pattern.max_len());
            assert!(pattern.is_fixed_len());
            for op in ops {
                // Loads stay within the key (or clamp to zero for forced
                // short keys).
                assert!(
                    (op.offset as usize) + 8 <= *len || *len < 8,
                    "load at {} exceeds len {len}",
                    op.offset
                );
                assert!(op.shift < 64);
                if family != Family::Pext {
                    assert_eq!(op.mask, u64::MAX);
                }
            }
            if family != Family::Pext {
                // The shift of a xor-family load is the anti-cancellation
                // rotation: present exactly on loads that re-read bytes an
                // earlier load covered (only ever the clamped final one).
                let mut covered_until = 0usize;
                for op in ops {
                    let offset = op.offset as usize;
                    let expected = if offset < covered_until {
                        sepe_core::synth::OVERLAP_ROTATION
                    } else {
                        0
                    };
                    assert_eq!(op.shift, expected, "rotation on load at {offset}");
                    covered_until = covered_until.max(offset + 8);
                }
            }
            if family == Family::Pext {
                // Masks cover every variable bit of the key exactly once.
                let total: u32 = ops.iter().map(|o| o.mask.count_ones()).sum();
                assert_eq!(total as usize, pattern.variable_bits());
            }
            if family == Family::OffXor || family == Family::Pext {
                // Every variable byte is covered by some load.
                for (i, b) in pattern.bytes().iter().enumerate() {
                    if !b.is_const() {
                        assert!(
                            ops.iter().any(|o| {
                                let o = o.offset as usize;
                                i >= o && i < o + 8
                            }),
                            "variable byte {i} uncovered"
                        );
                    }
                }
            }
        }
        Plan::VarWords {
            min_len,
            ops,
            tail_start,
        } => {
            assert!(!pattern.is_fixed_len());
            assert_eq!(*min_len, pattern.min_len());
            assert!(*tail_start <= pattern.min_len());
            for op in ops {
                assert!((op.offset as usize) + 8 <= *min_len);
            }
        }
        Plan::FixedBlocks { len, offsets } => {
            assert_eq!(family, Family::Aes);
            if offsets.is_empty() {
                // Replication is for sub-block keys; a fully constant
                // format also yields no loads (nothing varies).
                assert!(
                    *len < 16 || pattern.variable_bits() == 0,
                    "no block loads despite variable bytes"
                );
            }
            for off in offsets {
                assert!((*off as usize) + 16 <= *len);
            }
        }
        Plan::VarBlocks {
            min_len, offsets, ..
        } => {
            assert_eq!(family, Family::Aes);
            for off in offsets {
                assert!((*off as usize) + 16 <= *min_len);
            }
        }
    }
}

proptest! {
    #[test]
    fn plans_satisfy_invariants_for_random_example_sets(
        keys in vec(vec(any::<u8>(), 0..40), 1..10)
    ) {
        let pattern = pattern_from_keys(&keys);
        for family in Family::ALL {
            let plan = synthesize(&pattern, family);
            check_plan(&plan, &pattern, family);
        }
    }

    #[test]
    fn evaluation_never_panics_on_arbitrary_input(
        keys in vec(vec(any::<u8>(), 1..40), 1..6),
        probe in vec(any::<u8>(), 0..80)
    ) {
        // Even keys that do NOT match the pattern hash safely.
        let pattern = pattern_from_keys(&keys);
        for family in Family::ALL {
            let hash = SynthesizedHash::from_pattern(&pattern, family);
            let _ = hash.hash_bytes(&probe);
            let portable = hash.clone().with_isa(Isa::Portable);
            prop_assert_eq!(hash.hash_bytes(&probe), portable.hash_bytes(&probe));
        }
    }

    #[test]
    fn forced_synthesis_handles_any_fixed_length(key in vec(any::<u8>(), 1..40)) {
        let pattern = KeyPattern::of_key(&key);
        for family in Family::ALL {
            let plan = synthesize_unchecked(&pattern, family);
            let hash = SynthesizedHash::new(plan, family, Isa::Native);
            // A fully constant pattern maps its only key deterministically.
            prop_assert_eq!(hash.hash_bytes(&key), hash.hash_bytes(&key));
        }
    }

    #[test]
    fn matching_keys_hash_equal_iff_equal_under_pext_when_bits_fit(
        a in vec(0u8..10, 12..=12),
        b in vec(0u8..10, 12..=12)
    ) {
        // 12 digits = 48 variable bits <= 64: bijection guaranteed.
        let to_key = |ds: &[u8]| -> Vec<u8> { ds.iter().map(|d| b'0' + d).collect() };
        let pattern = sepe_core::regex::Regex::compile("[0-9]{12}").expect("regex compiles");
        let plan = synthesize(&pattern, Family::Pext);
        prop_assert!(plan.bijection_bits().is_some());
        let hash = SynthesizedHash::new(plan, Family::Pext, Isa::Native);
        let (ka, kb) = (to_key(&a), to_key(&b));
        prop_assert_eq!(ka == kb, hash.hash_bytes(&ka) == hash.hash_bytes(&kb));
    }

    #[test]
    fn bijection_bits_never_exceed_64_and_match_masks(
        keys in vec(vec(any::<u8>(), 8..24), 1..6)
    ) {
        let pattern = pattern_from_keys(&keys);
        let plan = synthesize(&pattern, Family::Pext);
        if let Some(bits) = plan.bijection_bits() {
            prop_assert!(bits <= 64);
            if let Plan::FixedWords { ops, .. } = &plan {
                let total: u32 = ops.iter().map(|o| o.mask.count_ones()).sum();
                prop_assert_eq!(bits, total);
            }
        }
    }
}
